//! Dependency-free JSON helpers: string escaping for the exporters and
//! a strict recursive-descent validator used by the CI trace-export
//! smoke step (the container has no serde and no guaranteed python, so
//! the tool validates its own output).

/// Escape a string into a quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validate that `input` is one complete, well-formed JSON value
/// (RFC 8259 grammar; rejects trailing garbage, unescaped control
/// characters, leading zeros, and bare NaN/Infinity). Returns the byte
/// offset and a message on the first error.
pub fn validate_json(input: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(())
}

/// A JSON syntax error: byte offset of the failure plus a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let r = self.object();
                self.depth -= 1;
                r
            }
            Some(b'[') => {
                self.depth += 1;
                let r = self.array();
                self.depth -= 1;
                r
            }
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(self.err("leading zero"));
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

/// A minimal cursor over a document that [`validate_json`] already
/// accepted, shared by the flat-report parsers in [`regress`] and
/// [`observatory`]: errors here mean the document is valid JSON of the
/// wrong *shape*, never a syntax error.
///
/// [`regress`]: crate::regress
/// [`observatory`]: crate::observatory
pub struct Lex<'a> {
    pub(crate) s: &'a [u8],
    pub(crate) i: usize,
}

impl<'a> Lex<'a> {
    /// A cursor at the start of `s` (validate it first).
    pub fn new(s: &'a str) -> Lex<'a> {
        Lex {
            s: s.as_bytes(),
            i: 0,
        }
    }

    fn ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    /// The next non-whitespace byte, without consuming it.
    pub fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.s.get(self.i).copied()
    }

    /// Consume exactly the byte `b` (after whitespace) or error.
    pub fn expect(&mut self, b: u8) -> Result<(), String> {
        self.ws();
        if self.s.get(self.i) == Some(&b) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.i))
        }
    }

    /// Consume `,` (returning true) or the given closer (false).
    pub fn comma_or(&mut self, close: u8) -> Result<bool, String> {
        self.ws();
        match self.s.get(self.i) {
            Some(b',') => {
                self.i += 1;
                Ok(true)
            }
            Some(&b) if b == close => {
                self.i += 1;
                Ok(false)
            }
            _ => Err(format!(
                "expected ',' or {:?} at byte {}",
                close as char, self.i
            )),
        }
    }

    /// A quoted JSON string literal, unescaped.
    pub fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&b) = self.s.get(self.i) {
            self.i += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self.s.get(self.i).ok_or("truncated escape")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => out.push(b as char),
            }
        }
        Err("unterminated string".to_owned())
    }

    /// A JSON number, parsed as `f64`.
    pub fn number(&mut self) -> Result<f64, String> {
        self.ws();
        let start = self.i;
        while let Some(&b) = self.s.get(self.i) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("expected a number at byte {start}"))
    }

    /// A `true`/`false` literal.
    pub fn boolean(&mut self) -> Result<bool, String> {
        self.ws();
        for (lit, v) in [("true", true), ("false", false)] {
            if self.s[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                return Ok(v);
            }
        }
        Err(format!("expected a boolean at byte {}", self.i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "[]",
            "{}",
            r#"{"a": [1, 2.5, -3e4], "b": {"c": "d\né"}}"#,
            " { \"traceEvents\" : [ ] } ",
            "0.5",
            "-0",
        ] {
            validate_json(doc).unwrap_or_else(|e| panic!("{doc:?}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{'a': 1}",
            "{\"a\" 1}",
            "01",
            "1.",
            "NaN",
            "[1] tail",
            "\"unterminated",
            "\"bad \u{1}\"",
        ] {
            assert!(validate_json(doc).is_err(), "{doc:?} should be rejected");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let s = escape("quote \" backslash \\ newline \n ctrl \u{1} é");
        validate_json(&s).unwrap();
    }
}
