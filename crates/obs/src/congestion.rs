//! Time-binned congestion telemetry: per-link utilization, queueing,
//! and per-router occupancy, built from a recorded flight-event stream.
//!
//! Each torus link direction gets a row of time bins holding (a) busy
//! time — how long reserved traversals overlapped the bin, (b) queue
//! time — how long packets that were *ready* for the link waited in the
//! bin, and (c) the traversal count. Routers get an occupancy row: how
//! long packet heads were inside the node (hop-enter until the packet
//! moved on or delivered). The map exports as CSV, as Chrome-trace
//! counter tracks (congestion heatmap over time in Perfetto), and as a
//! quick ASCII heatmap for terminals.
//!
//! Busy time is conserved: summed over bins it equals the recorded
//! reservation spans exactly, which the tests cross-check against the
//! DES tracer's independent per-direction busy accounting.

use crate::chrome_trace::ChromeTraceBuilder;
use crate::recorder::FlightEvent;
use anton_des::{SimDuration, SimTime};
use anton_topo::{LinkDir, NodeId};
use std::collections::{BTreeMap, HashMap};

/// Load telemetry for one outgoing link direction of one node.
#[derive(Debug, Clone, Default)]
pub struct LinkLoad {
    /// Busy picoseconds per time bin (reservation overlap).
    pub busy_ps: Vec<u64>,
    /// Queue-wait picoseconds per time bin (ready-to-start overlap,
    /// summed over waiting packets).
    pub queue_ps: Vec<u64>,
    /// Traversals starting in each bin.
    pub traversals: Vec<u32>,
    /// Peak number of packets simultaneously waiting for or holding
    /// the link.
    pub max_queue: u32,
}

impl LinkLoad {
    /// Total busy time across all bins.
    pub fn busy_total(&self) -> SimDuration {
        SimDuration::from_ps(self.busy_ps.iter().sum())
    }

    /// Total queue-wait time across all bins.
    pub fn queue_total(&self) -> SimDuration {
        SimDuration::from_ps(self.queue_ps.iter().sum())
    }
}

/// Occupancy telemetry for one router (torus node).
#[derive(Debug, Clone, Default)]
pub struct RouterLoad {
    /// Packet-head-resident picoseconds per time bin.
    pub occupancy_ps: Vec<u64>,
    /// Packet heads that entered the router.
    pub enters: u32,
}

/// A time-binned congestion map over all links and routers that saw
/// traffic. Built once from an event stream; see the
/// [module docs](self).
#[derive(Debug)]
pub struct CongestionMap {
    bin: SimDuration,
    nbins: usize,
    links: BTreeMap<(u32, u8), LinkLoad>,
    routers: BTreeMap<u32, RouterLoad>,
}

/// Spread the span `[start, end)` over `bins` of width `bin_ps`.
fn deposit(bins: &mut [u64], bin_ps: u64, start: u64, end: u64) {
    if end <= start {
        return;
    }
    let first = (start / bin_ps) as usize;
    let last = ((end - 1) / bin_ps) as usize;
    for (b, slot) in bins.iter_mut().enumerate().take(last + 1).skip(first) {
        let lo = (b as u64 * bin_ps).max(start);
        let hi = ((b as u64 + 1) * bin_ps).min(end);
        *slot += hi - lo;
    }
}

impl CongestionMap {
    /// Bin a flight-event stream. `bin` is the bin width; the number of
    /// bins covers the latest recorded link-reservation end or router
    /// exit.
    pub fn build<'a, I>(events: I, bin: SimDuration) -> CongestionMap
    where
        I: IntoIterator<Item = &'a FlightEvent>,
    {
        assert!(bin > SimDuration::ZERO, "bin width must be positive");
        // Pass 1: collect the raw intervals (cheap, one tuple per
        // event) and the time horizon.
        let mut reserves: Vec<(u32, u8, u64, u64, u64)> = Vec::new(); // node, link, ready, start, end
        let mut hop_open: HashMap<(u64, u32), (u64, u64)> = HashMap::new(); // (pkt,node) -> (enter, latest exit)
        let mut horizon = 0u64;
        for ev in events {
            match *ev {
                FlightEvent::LinkReserve {
                    pkt,
                    node,
                    link,
                    ready,
                    start,
                    end,
                } => {
                    reserves.push((
                        node.0,
                        link.index() as u8,
                        ready.as_ps(),
                        start.as_ps(),
                        end.as_ps(),
                    ));
                    horizon = horizon.max(end.as_ps());
                    if let Some(open) = hop_open.get_mut(&(pkt.0, node.0)) {
                        open.1 = open.1.max(start.as_ps());
                    }
                }
                FlightEvent::HopEnter { pkt, node, at } => {
                    hop_open.insert((pkt.0, node.0), (at.as_ps(), at.as_ps()));
                }
                FlightEvent::HopExit { pkt, node, at }
                | FlightEvent::Deliver { pkt, node, at, .. } => {
                    if let Some(open) = hop_open.get_mut(&(pkt.0, node.0)) {
                        open.1 = open.1.max(at.as_ps());
                        horizon = horizon.max(at.as_ps());
                    }
                }
                _ => {}
            }
        }
        let bin_ps = bin.as_ps();
        let nbins = (horizon / bin_ps + 1) as usize;

        // Pass 2: deposit into bins.
        let mut links: BTreeMap<(u32, u8), LinkLoad> = BTreeMap::new();
        let mut sweeps: HashMap<(u32, u8), Vec<(u64, i32)>> = HashMap::new();
        for &(node, link, ready, start, end) in &reserves {
            let load = links.entry((node, link)).or_default();
            if load.busy_ps.is_empty() {
                load.busy_ps = vec![0; nbins];
                load.queue_ps = vec![0; nbins];
                load.traversals = vec![0; nbins];
            }
            deposit(&mut load.busy_ps, bin_ps, start, end);
            deposit(&mut load.queue_ps, bin_ps, ready, start);
            load.traversals[(start / bin_ps) as usize] += 1;
            let sweep = sweeps.entry((node, link)).or_default();
            sweep.push((ready, 1));
            sweep.push((end, -1));
        }
        for (key, mut sweep) in sweeps {
            // +1 sorts before -1 at equal times: a packet becoming
            // ready the instant another frees still overlaps it.
            sweep.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
            let (mut depth, mut peak) = (0i32, 0i32);
            for (_, d) in sweep {
                depth += d;
                peak = peak.max(depth);
            }
            links.get_mut(&key).unwrap().max_queue = peak.max(0) as u32;
        }

        let mut routers: BTreeMap<u32, RouterLoad> = BTreeMap::new();
        for ((_, node), (enter, exit)) in hop_open {
            let load = routers.entry(node).or_default();
            if load.occupancy_ps.is_empty() {
                load.occupancy_ps = vec![0; nbins];
            }
            load.enters += 1;
            deposit(&mut load.occupancy_ps, bin_ps, enter, exit);
        }

        CongestionMap {
            bin,
            nbins,
            links,
            routers,
        }
    }

    /// The bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// Number of time bins.
    pub fn bins(&self) -> usize {
        self.nbins
    }

    /// Per-link loads, keyed by (node, link), deterministic order.
    pub fn links(&self) -> impl Iterator<Item = ((NodeId, LinkDir), &LinkLoad)> {
        self.links
            .iter()
            .map(|(&(n, l), load)| ((NodeId(n), LinkDir::from_index(l as usize)), load))
    }

    /// Per-router loads, deterministic order.
    pub fn routers(&self) -> impl Iterator<Item = (NodeId, &RouterLoad)> {
        self.routers.iter().map(|(&n, load)| (NodeId(n), load))
    }

    /// Total busy time of one direction summed over the whole machine
    /// — comparable with the DES tracer's per-direction busy tracks.
    pub fn busy_for_direction(&self, dir: LinkDir) -> SimDuration {
        SimDuration::from_ps(
            self.links
                .iter()
                .filter(|((_, l), _)| *l == dir.index() as u8)
                .map(|(_, load)| load.busy_total().as_ps())
                .sum(),
        )
    }

    /// The `n` links with the most total busy time, busiest first
    /// (ties: lower node/link first).
    pub fn hottest_links(&self, n: usize) -> Vec<((NodeId, LinkDir), SimDuration)> {
        let mut all: Vec<((NodeId, LinkDir), SimDuration)> = self
            .links()
            .map(|(key, load)| (key, load.busy_total()))
            .collect();
        all.sort_by(|a, b| {
            b.1.cmp(&a.1)
                .then(a.0 .0 .0.cmp(&b.0 .0 .0))
                .then(a.0 .1.cmp(&b.0 .1))
        });
        all.truncate(n);
        all
    }

    /// Peak queue depth over all links.
    pub fn max_queue_depth(&self) -> u32 {
        self.links.values().map(|l| l.max_queue).max().unwrap_or(0)
    }

    /// CSV export: one row per (link, bin) and per (router, bin) that
    /// saw load.
    pub fn to_csv(&self) -> String {
        let bin_ns = self.bin.as_ns_f64();
        let mut out =
            String::from("kind,node,link,bin_start_ns,busy_frac,queue_ns,traversals,max_queue\n");
        for ((node, link), load) in self.links() {
            for b in 0..self.nbins {
                if load.busy_ps[b] == 0 && load.queue_ps[b] == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "link,{},{},{:.1},{:.4},{:.3},{},{}\n",
                    node.0,
                    link,
                    b as f64 * bin_ns,
                    load.busy_ps[b] as f64 / self.bin.as_ps() as f64,
                    load.queue_ps[b] as f64 / 1000.0,
                    load.traversals[b],
                    load.max_queue,
                ));
            }
        }
        for (node, load) in self.routers() {
            for b in 0..self.nbins {
                if load.occupancy_ps[b] == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "router,{},,{:.1},{:.4},,{},\n",
                    node.0,
                    b as f64 * bin_ns,
                    load.occupancy_ps[b] as f64 / self.bin.as_ps() as f64,
                    load.enters,
                ));
            }
        }
        out
    }

    /// Emit Chrome-trace counter tracks under `pid`: one aggregate
    /// utilization track per torus direction plus individual tracks for
    /// the `top` hottest links (bounding the track count on big runs).
    pub fn counter_tracks(&self, trace: &mut ChromeTraceBuilder, pid: u64, top: usize) {
        trace.name_process(pid, "congestion");
        let bin_ps = self.bin.as_ps();
        for dir in LinkDir::ALL {
            let mut per_bin = vec![0u64; self.nbins];
            let mut active = 0u64;
            for ((_, l), load) in self.links() {
                if l != dir {
                    continue;
                }
                active += 1;
                for (b, &v) in load.busy_ps.iter().enumerate() {
                    per_bin[b] += v;
                }
            }
            if active == 0 {
                continue;
            }
            let name = format!("util.{}", dir);
            for (b, &v) in per_bin.iter().enumerate() {
                let frac = v as f64 / (bin_ps * active) as f64;
                trace.add_counter(pid, &name, SimTime::from_ps(b as u64 * bin_ps), frac);
            }
        }
        for ((node, link), _) in self.hottest_links(top) {
            let load = &self.links[&(node.0, link.index() as u8)];
            let name = format!("link.n{}.{}", node.0, link);
            for b in 0..self.nbins {
                let frac = load.busy_ps[b] as f64 / bin_ps as f64;
                trace.add_counter(pid, &name, SimTime::from_ps(b as u64 * bin_ps), frac);
            }
        }
    }

    /// A terminal heatmap: one row per hot link (up to `top`), one
    /// column per time bin, shaded by busy fraction.
    pub fn ascii_heatmap(&self, top: usize) -> String {
        const SHADES: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let mut out = String::new();
        out.push_str(&format!(
            "congestion heatmap — {} bins x {:.0} ns, busiest {} links (shade = busy fraction)\n",
            self.nbins,
            self.bin.as_ns_f64(),
            top.min(self.links.len()),
        ));
        for ((node, link), _) in self.hottest_links(top) {
            let load = &self.links[&(node.0, link.index() as u8)];
            let mut row = format!("n{:<4}{:<3} |", node.0, link);
            for b in 0..self.nbins {
                let frac = load.busy_ps[b] as f64 / self.bin.as_ps() as f64;
                let shade = ((frac * 9.0).round() as usize).min(9);
                row.push(SHADES[shade]);
            }
            row.push_str(&format!(
                "| {:.1} ns busy, peak queue {}\n",
                load.busy_total().as_ns_f64(),
                load.max_queue
            ));
            out.push_str(&row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, PacketId, Recorder};

    fn ns(v: u64) -> SimTime {
        SimTime::from_ns(v)
    }

    /// Two traversals of the same link, the second queued behind the
    /// first; busy time is conserved across bins.
    #[test]
    fn busy_and_queue_are_conserved() {
        let mut r = FlightRecorder::new();
        r.on_link_reserve(
            PacketId(0),
            NodeId(0),
            LinkDir::from_index(0),
            ns(0),
            ns(0),
            ns(30),
        );
        r.on_link_reserve(
            PacketId(1),
            NodeId(0),
            LinkDir::from_index(0),
            ns(10),
            ns(30),
            ns(60),
        );
        let events = r.take_events();
        let map = CongestionMap::build(&events, SimDuration::from_ns(25));
        let (_, load) = map.links().next().expect("one link");
        assert_eq!(load.busy_total(), SimDuration::from_ns(60));
        assert_eq!(load.queue_total(), SimDuration::from_ns(20));
        assert_eq!(load.max_queue, 2);
        assert_eq!(
            map.busy_for_direction(LinkDir::from_index(0)),
            SimDuration::from_ns(60)
        );
        assert_eq!(
            map.busy_for_direction(LinkDir::from_index(2)),
            SimDuration::ZERO
        );
        // Bin 0 holds 25 ns of busy, bin 1 the next 25, bin 2 the rest.
        assert_eq!(load.busy_ps[0], 25_000);
        assert_eq!(load.busy_ps[1], 25_000);
        assert_eq!(load.busy_ps[2], 10_000);
    }

    #[test]
    fn router_occupancy_spans_enter_to_exit() {
        let mut r = FlightRecorder::new();
        r.on_hop_enter(PacketId(0), NodeId(5), ns(100));
        r.on_link_reserve(
            PacketId(0),
            NodeId(5),
            LinkDir::from_index(2),
            ns(114),
            ns(120),
            ns(150),
        );
        let events = r.take_events();
        let map = CongestionMap::build(&events, SimDuration::from_ns(1000));
        let (node, load) = map.routers().next().expect("one router");
        assert_eq!(node, NodeId(5));
        assert_eq!(load.enters, 1);
        // Head resident from hop-enter (100) until it left (120).
        assert_eq!(load.occupancy_ps.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn exports_are_well_formed() {
        let mut r = FlightRecorder::new();
        r.on_link_reserve(
            PacketId(0),
            NodeId(3),
            LinkDir::from_index(5),
            ns(5),
            ns(7),
            ns(9),
        );
        let events = r.take_events();
        let map = CongestionMap::build(&events, SimDuration::from_ns(2));
        let csv = map.to_csv();
        assert!(csv.starts_with("kind,node,link"));
        assert!(csv.contains("link,3,"));
        let heat = map.ascii_heatmap(4);
        assert!(heat.contains("n3"));
        let mut trace = ChromeTraceBuilder::new();
        map.counter_tracks(&mut trace, 9, 4);
        assert!(!trace.is_empty());
        crate::json::validate_json(&trace.finish()).expect("counter tracks are valid JSON");
        assert_eq!(map.hottest_links(8).len(), 1);
        assert_eq!(map.max_queue_depth(), 1);
    }
}
