//! Latency-breakdown attribution: folds recorded packet lifecycles into
//! the paper's Figure 6 stages.
//!
//! Figure 6 decomposes the 162 ns one-hop end-to-end latency into sender
//! overhead (36 ns), injection/send-side ring (19 ns), router + wire
//! time (two 20 ns adapter crossings for one hop), delivery (receive
//! ring 25 ns + polling pickup 42 ns), and synchronization. The stages
//! here are *telescoping*: each is the interval between two adjacent
//! recorded anchors of the same packet, so for every delivered packet
//! the five stage durations sum **exactly** to its measured end-to-end
//! latency — the property the proptest in `net/tests` pins down.
//!
//! Anchor mapping (all timestamps from [`crate::FlightEvent`]):
//!
//! | Stage             | from → to                                   |
//! |-------------------|---------------------------------------------|
//! | `SenderOverhead`  | send issue → packet assembled (`inj_ready`)  |
//! | `Injection`       | `inj_ready` → first link ready (`wire_ready`), includes injection-port contention |
//! | `RouterWire`      | `wire_ready` → head at destination (last `HopEnter`), includes link contention and retransmits |
//! | `Delivery`        | head at destination → tail applied (`Deliver`) |
//! | `Sync`            | delivery → armed counter-watch visible (`fire_at`), 0 if none fired |
//!
//! Same-node writes never touch the torus: the recorder reports
//! `inj_ready = wire_ready = issue time` for them, so the whole local
//! trip lands in `Delivery` and the telescoping invariant still holds.

use crate::recorder::{FlightEvent, PacketId};
use anton_des::{SimDuration, SimTime};
use anton_topo::NodeId;
use std::collections::BTreeMap;

/// The Figure 6 latency stages, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Software send setup until the packet is assembled.
    SenderOverhead,
    /// Injection-port wait plus the send-side on-chip ring.
    Injection,
    /// All torus link and router-adapter crossings (plus any link
    /// contention and retransmission delay).
    RouterWire,
    /// Receive-side ring crossing and payload application/pickup.
    Delivery,
    /// Synchronization-counter visibility after delivery.
    Sync,
}

impl Stage {
    /// All stages, pipeline order.
    pub const ALL: [Stage; 5] = [
        Stage::SenderOverhead,
        Stage::Injection,
        Stage::RouterWire,
        Stage::Delivery,
        Stage::Sync,
    ];

    /// Human-readable name matching the Figure 6 labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::SenderOverhead => "sender overhead",
            Stage::Injection => "injection",
            Stage::RouterWire => "router + wire",
            Stage::Delivery => "delivery",
            Stage::Sync => "synchronization",
        }
    }
}

/// One packet's reconstructed lifecycle: the anchors needed for stage
/// attribution, folded out of the raw event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketLifecycle {
    /// The packet.
    pub pkt: PacketId,
    /// Sending node.
    pub src: NodeId,
    /// Delivery node.
    pub dst: NodeId,
    /// Send issue time.
    pub issued: SimTime,
    /// Packet assembled.
    pub inj_ready: SimTime,
    /// First link ready (send ring crossed).
    pub wire_ready: SimTime,
    /// Head-arrival time at each node along the route (empty for
    /// same-node writes).
    pub hop_enters: Vec<SimTime>,
    /// Tail applied at the destination client.
    pub delivered: SimTime,
    /// Counter-watch visibility, if this delivery fired one.
    pub fired: Option<SimTime>,
    /// Link-layer retransmissions suffered en route.
    pub retransmits: u32,
    /// Modeled wire payload size.
    pub payload_bytes: u32,
}

impl PacketLifecycle {
    /// Duration of one stage. Stages telescope: adjacent anchors bound
    /// each stage, so summing [`Stage::ALL`] reproduces
    /// [`PacketLifecycle::end_to_end`] exactly.
    pub fn stage(&self, stage: Stage) -> SimDuration {
        let head_at_dst = self.hop_enters.last().copied().unwrap_or(self.wire_ready);
        match stage {
            Stage::SenderOverhead => self.inj_ready.since(self.issued),
            Stage::Injection => self.wire_ready.since(self.inj_ready),
            Stage::RouterWire => head_at_dst.since(self.wire_ready),
            Stage::Delivery => self.delivered.since(head_at_dst),
            Stage::Sync => match self.fired {
                Some(f) => f.since(self.delivered),
                None => SimDuration::ZERO,
            },
        }
    }

    /// Measured end-to-end latency: send issue until the counter watch
    /// fires (or until delivery when none fired).
    pub fn end_to_end(&self) -> SimDuration {
        self.fired.unwrap_or(self.delivered).since(self.issued)
    }

    /// Number of torus hops taken (0 for same-node writes).
    pub fn hops(&self) -> usize {
        self.hop_enters.len()
    }
}

/// What the fold saw besides complete unicast lifecycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FoldStats {
    /// Complete unicast lifecycles reconstructed.
    pub complete: u64,
    /// Packets injected but never delivered inside the recorded window
    /// (in flight at the horizon, or their tail fell out of a ring
    /// buffer).
    pub incomplete: u64,
    /// Multicast packets skipped (copies share an id, so per-copy stage
    /// attribution is ambiguous).
    pub multicast: u64,
}

#[derive(Debug, Default)]
struct Partial {
    inject: Option<(NodeId, Option<NodeId>, SimTime, SimTime, SimTime, u32)>,
    hop_enters: Vec<SimTime>,
    delivers: Vec<(NodeId, SimTime)>,
    fired: Option<SimTime>,
    retransmits: u32,
}

/// Fold a raw event stream into per-packet lifecycles. Returns complete
/// unicast lifecycles in packet-id order plus counts of what was
/// skipped; packets truncated by ring-buffer eviction or still in
/// flight are counted, not invented.
pub fn fold_lifecycles<'a, I>(events: I) -> (Vec<PacketLifecycle>, FoldStats)
where
    I: IntoIterator<Item = &'a FlightEvent>,
{
    let mut partials: BTreeMap<PacketId, Partial> = BTreeMap::new();
    for ev in events {
        let Some(pkt) = ev.packet() else { continue };
        let p = partials.entry(pkt).or_default();
        match ev {
            FlightEvent::Inject {
                node,
                dst,
                at,
                inj_ready,
                wire_ready,
                payload_bytes,
                ..
            } => {
                p.inject = Some((*node, *dst, *at, *inj_ready, *wire_ready, *payload_bytes));
            }
            FlightEvent::HopEnter { at, .. } => p.hop_enters.push(*at),
            FlightEvent::Retransmit { .. } => p.retransmits += 1,
            FlightEvent::Deliver { node, at, .. } => p.delivers.push((*node, *at)),
            FlightEvent::CounterUpdate { fire_at, .. } => {
                if let Some(f) = fire_at {
                    // Keep the earliest fire: that is when the sender-visible
                    // synchronization completed.
                    p.fired = Some(p.fired.map_or(*f, |old: SimTime| old.min(*f)));
                }
            }
            FlightEvent::LinkReserve { .. }
            | FlightEvent::HopExit { .. }
            | FlightEvent::Phase { .. }
            | FlightEvent::LinkDown { .. }
            | FlightEvent::NodeDown { .. }
            | FlightEvent::Reinject { .. }
            | FlightEvent::DuplicateSuppressed { .. } => {}
        }
    }

    let mut out = Vec::new();
    let mut stats = FoldStats::default();
    for (pkt, p) in partials {
        let Some((src, dst, issued, inj_ready, wire_ready, payload_bytes)) = p.inject else {
            stats.incomplete += 1;
            continue;
        };
        if dst.is_none() || p.delivers.len() > 1 {
            stats.multicast += 1;
            continue;
        }
        let Some(&(dst_node, delivered)) = p.delivers.first() else {
            stats.incomplete += 1;
            continue;
        };
        stats.complete += 1;
        out.push(PacketLifecycle {
            pkt,
            src,
            dst: dst_node,
            issued,
            inj_ready,
            wire_ready,
            hop_enters: p.hop_enters,
            delivered,
            fired: p.fired,
            retransmits: p.retransmits,
            payload_bytes,
        });
    }
    (out, stats)
}

/// Aggregated per-stage totals over a set of lifecycles — the measured
/// Figure 6 bar chart.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownSummary {
    /// Lifecycles aggregated.
    pub packets: u64,
    /// Total duration per stage, pipeline order ([`Stage::ALL`]).
    pub totals: [SimDuration; 5],
    /// Total end-to-end latency (equals the stage totals' sum).
    pub end_to_end: SimDuration,
}

impl BreakdownSummary {
    /// Aggregate stage durations over `lifecycles`.
    pub fn from_lifecycles(lifecycles: &[PacketLifecycle]) -> BreakdownSummary {
        let mut totals = [SimDuration::ZERO; 5];
        let mut end_to_end = SimDuration::ZERO;
        for lc in lifecycles {
            for (slot, stage) in totals.iter_mut().zip(Stage::ALL) {
                *slot += lc.stage(stage);
            }
            end_to_end += lc.end_to_end();
        }
        BreakdownSummary {
            packets: lifecycles.len() as u64,
            totals,
            end_to_end,
        }
    }

    /// Mean duration of one stage in nanoseconds (0 when empty).
    pub fn mean_ns(&self, stage: Stage) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        let idx = Stage::ALL.iter().position(|s| *s == stage).unwrap();
        self.totals[idx].as_ns_f64() / self.packets as f64
    }

    /// Mean end-to-end latency in nanoseconds (0 when empty).
    pub fn mean_end_to_end_ns(&self) -> f64 {
        if self.packets == 0 {
            return 0.0;
        }
        self.end_to_end.as_ns_f64() / self.packets as f64
    }

    /// Render the measured breakdown as an aligned text table.
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for stage in Stage::ALL {
            let _ = writeln!(
                out,
                "  {:<16} {:>8.2} ns",
                stage.name(),
                self.mean_ns(stage)
            );
        }
        let _ = writeln!(
            out,
            "  {:<16} {:>8.2} ns",
            "end-to-end",
            self.mean_end_to_end_ns()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, Recorder};

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    /// Replay the uncontended 1-X-hop ping from the paper's Figure 6 and
    /// check both the stage values and the telescoping invariant.
    #[test]
    fn one_hop_fig6_stages() {
        let mut r = FlightRecorder::new();
        let pkt = PacketId(0);
        // send issue 0, setup 36, ring 19 → wire at 55; head after 40 ns
        // link+adapter → 95; deliver 25+42 later → 162.
        r.on_inject(
            pkt,
            NodeId(0),
            0,
            Some(NodeId(1)),
            t(0),
            t(36),
            t(36),
            t(55),
            32,
        );
        let xp = anton_topo::LinkDir {
            dim: anton_topo::Dim::X,
            dir: anton_topo::Dir::Plus,
        };
        r.on_link_reserve(pkt, NodeId(0), xp, t(55), t(55), t(97));
        r.on_hop_enter(pkt, NodeId(1), t(95));
        r.on_deliver(pkt, NodeId(1), 0, t(162));
        r.on_counter_update(pkt, NodeId(1), 0, 63, t(162), Some(t(162)));

        let (lcs, stats) = fold_lifecycles(r.events());
        assert_eq!(
            stats,
            FoldStats {
                complete: 1,
                incomplete: 0,
                multicast: 0
            }
        );
        let lc = &lcs[0];
        assert_eq!(lc.stage(Stage::SenderOverhead), SimDuration::from_ns(36));
        assert_eq!(lc.stage(Stage::Injection), SimDuration::from_ns(19));
        assert_eq!(lc.stage(Stage::RouterWire), SimDuration::from_ns(40));
        assert_eq!(lc.stage(Stage::Delivery), SimDuration::from_ns(67));
        assert_eq!(lc.stage(Stage::Sync), SimDuration::ZERO);
        assert_eq!(lc.end_to_end(), SimDuration::from_ns(162));
        let sum: u64 = Stage::ALL.iter().map(|s| lc.stage(*s).as_ps()).sum();
        assert_eq!(sum, lc.end_to_end().as_ps());

        let summary = BreakdownSummary::from_lifecycles(&lcs);
        assert_eq!(summary.mean_end_to_end_ns(), 162.0);
        assert_eq!(summary.mean_ns(Stage::Delivery), 67.0);
    }

    /// Local (same-node) writes attribute everything to delivery and
    /// still telescope.
    #[test]
    fn local_write_attributes_to_delivery() {
        let mut r = FlightRecorder::new();
        let pkt = PacketId(1);
        r.on_inject(
            pkt,
            NodeId(3),
            0,
            Some(NodeId(3)),
            t(10),
            t(10),
            t(10),
            t(10),
            32,
        );
        r.on_deliver(pkt, NodeId(3), 1, t(116));
        let (lcs, _) = fold_lifecycles(r.events());
        let lc = &lcs[0];
        assert_eq!(lc.hops(), 0);
        assert_eq!(lc.stage(Stage::Delivery), SimDuration::from_ns(106));
        let sum: u64 = Stage::ALL.iter().map(|s| lc.stage(*s).as_ps()).sum();
        assert_eq!(sum, lc.end_to_end().as_ps());
    }

    /// Multicast and in-flight packets are counted, not mis-attributed.
    #[test]
    fn incomplete_and_multicast_are_skipped() {
        let mut r = FlightRecorder::new();
        // In flight: injected, never delivered.
        r.on_inject(
            PacketId(0),
            NodeId(0),
            0,
            Some(NodeId(1)),
            t(0),
            t(36),
            t(36),
            t(55),
            32,
        );
        // Multicast: dst unknown at inject, two delivers.
        r.on_inject(
            PacketId(1),
            NodeId(0),
            0,
            None,
            t(0),
            t(36),
            t(36),
            t(55),
            32,
        );
        r.on_deliver(PacketId(1), NodeId(1), 0, t(162));
        r.on_deliver(PacketId(1), NodeId(2), 0, t(238));
        let (lcs, stats) = fold_lifecycles(r.events());
        assert!(lcs.is_empty());
        assert_eq!(
            stats,
            FoldStats {
                complete: 0,
                incomplete: 1,
                multicast: 1
            }
        );
    }
}
