//! Causal event-graph reconstruction and critical-path extraction.
//!
//! The paper's thesis is that Anton wins by shortening the *critical
//! path* of each MD timestep (§IV, Table 3): every mechanism — counted
//! remote writes, single-round exchanges, hop minimisation — exists to
//! remove serialized latency. This module turns a recorded
//! [`FlightEvent`] stream into an explicit causal
//! DAG whose longest path *is* that critical path, measured rather than
//! derived analytically.
//!
//! # DAG construction rules
//!
//! Each packet contributes a chain of timed nodes mirroring the
//! recorder's anchors: [`NodeKind::Issue`] (software issued the send) →
//! [`NodeKind::Assembled`] (packet assembly done) →
//! [`NodeKind::PortWon`] (injection port won) →
//! [`NodeKind::WireReady`] (send-side ring crossed), then one
//! [`NodeKind::LinkStart`] + [`NodeKind::HopEnter`] pair per torus hop,
//! a [`NodeKind::Deliver`], and — when the delivery fires an armed
//! counter watch — a [`NodeKind::CounterFire`]. Edges carry the *lag*
//! the successor waits after the predecessor:
//!
//! - pipeline edges with exact recorded lags ([`EdgeKind::SendSetup`],
//!   [`EdgeKind::SendRing`], [`EdgeKind::TransitRing`],
//!   [`EdgeKind::Wire`], [`EdgeKind::Delivery`]);
//! - resource edges serializing shared hardware: the previous packet on
//!   the same injection port ([`EdgeKind::PortWait`], lag = the
//!   predecessor's injection occupancy) and on the same link direction
//!   ([`EdgeKind::LinkWait`], lag = the predecessor's link occupancy);
//! - synchronization edges: the firing arrival binds the counter fire
//!   ([`EdgeKind::SyncVisibility`], lag = core-busy + poll delays) and
//!   the earlier counted arrivals attach with zero lag
//!   ([`EdgeKind::SyncArrive`]) — a fire causally needs its N-th
//!   arrival, i.e. *all* N;
//! - program edges ([`EdgeKind::Program`]): a send issued at exactly a
//!   counter-fire time on the same node is attributed to that fire (the
//!   node program reacted to the visible counter).
//!
//! Every structural lag is either an exact recorded difference or a
//! clamped *underestimate* of the recorded node time, never an
//! overestimate. Where the model underestimates (unrecorded core-busy
//! waits, collapsed local-send anchors, fault retransmission penalties),
//! a [`EdgeKind::Residual`] (or [`EdgeKind::Retransmit`], when
//! retransmissions were recorded on that link) edge from the latest
//! binding predecessor absorbs the gap. The invariant that makes
//! everything downstream exact: **for every non-source node,
//! `max(pred_time + lag) == node_time` to the picosecond** — see
//! [`CausalGraph::check_consistency`]. Consequently the critical path
//! telescopes: its lags sum exactly to `terminal − source`, and blame
//! attribution ([`Blame`]) partitions the measured makespan with no
//! remainder.
//!
//! Event-stream order is a topological order (every edge points from an
//! earlier-recorded event to a later one), so forward/backward passes
//! are plain index loops and acyclicity is structural.

use crate::recorder::{FlightEvent, PacketId};
use anton_des::{SimDuration, SimTime};
use anton_topo::{NodeId, TorusDims};
use std::collections::HashMap;

/// Sentinel for "no edge" in the intrusive in-edge lists.
const NONE: u32 = u32::MAX;

/// What a [`CNode`] in the causal graph represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeKind {
    /// Software issued the send (`Inject.at`).
    Issue,
    /// Packet assembly finished (`Inject.inj_ready`).
    Assembled,
    /// The injection port was won (`Inject.inj_start`).
    PortWon,
    /// The send-side ring was crossed (`Inject.wire_ready`).
    WireReady,
    /// A link traversal started (`LinkReserve.start`); `aux` holds the
    /// `LinkDir` index.
    LinkStart,
    /// The packet head reached a node's receive adapter.
    HopEnter,
    /// The packet tail was applied to its target client.
    Deliver,
    /// An armed counter watch became visible to software.
    CounterFire,
}

impl NodeKind {
    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Issue => "issue",
            NodeKind::Assembled => "assembled",
            NodeKind::PortWon => "port-won",
            NodeKind::WireReady => "wire-ready",
            NodeKind::LinkStart => "link-start",
            NodeKind::HopEnter => "hop-enter",
            NodeKind::Deliver => "deliver",
            NodeKind::CounterFire => "counter-fire",
        }
    }
}

/// What a [`CEdge`]'s lag represents — the blame-attribution buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeKind {
    /// Send-side software/assembly pipeline (issue → assembled →
    /// port arbitration entry).
    SendSetup,
    /// Waiting for the previous packet to clear the injection port.
    PortWait,
    /// Crossing the sender's on-chip ring to the torus adapter.
    SendRing,
    /// Waiting for the previous traversal to clear the link direction.
    LinkWait,
    /// Crossing an intermediate router's ring between links.
    TransitRing,
    /// Link head latency (router + wire + receive adapter).
    Wire,
    /// Receive-side ring + delivery + payload tail.
    Delivery,
    /// Counter-fire visibility after the firing arrival (core-busy and
    /// accumulation-poll delays — the paper's synchronization stage).
    SyncVisibility,
    /// A counted (non-firing) arrival a fire causally depends on.
    SyncArrive,
    /// A node program reacting to a visible counter fire.
    Program,
    /// Residual delay on a link with recorded retransmissions.
    Retransmit,
    /// Unattributed residual (unrecorded core-busy waits, collapsed
    /// local-send anchors); keeps the graph exact to the picosecond.
    Residual,
}

impl EdgeKind {
    /// All edge kinds, in display order.
    pub const ALL: [EdgeKind; 12] = [
        EdgeKind::SendSetup,
        EdgeKind::PortWait,
        EdgeKind::SendRing,
        EdgeKind::LinkWait,
        EdgeKind::TransitRing,
        EdgeKind::Wire,
        EdgeKind::Delivery,
        EdgeKind::SyncVisibility,
        EdgeKind::SyncArrive,
        EdgeKind::Program,
        EdgeKind::Retransmit,
        EdgeKind::Residual,
    ];

    /// Number of edge kinds (array-index bound for per-kind tables).
    pub const COUNT: usize = EdgeKind::ALL.len();

    /// Dense index into per-kind tables.
    pub fn index(self) -> usize {
        match self {
            EdgeKind::SendSetup => 0,
            EdgeKind::PortWait => 1,
            EdgeKind::SendRing => 2,
            EdgeKind::LinkWait => 3,
            EdgeKind::TransitRing => 4,
            EdgeKind::Wire => 5,
            EdgeKind::Delivery => 6,
            EdgeKind::SyncVisibility => 7,
            EdgeKind::SyncArrive => 8,
            EdgeKind::Program => 9,
            EdgeKind::Retransmit => 10,
            EdgeKind::Residual => 11,
        }
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::SendSetup => "send-setup",
            EdgeKind::PortWait => "port-wait",
            EdgeKind::SendRing => "send-ring",
            EdgeKind::LinkWait => "link-wait",
            EdgeKind::TransitRing => "transit-ring",
            EdgeKind::Wire => "wire",
            EdgeKind::Delivery => "delivery",
            EdgeKind::SyncVisibility => "sync-visibility",
            EdgeKind::SyncArrive => "sync-arrive",
            EdgeKind::Program => "program",
            EdgeKind::Retransmit => "retransmit",
            EdgeKind::Residual => "residual",
        }
    }
}

/// One timed node of the causal graph.
#[derive(Debug, Clone, Copy)]
pub struct CNode {
    /// What this node represents.
    pub kind: NodeKind,
    /// The packet it belongs to.
    pub pkt: PacketId,
    /// The torus node it happened on.
    pub node: NodeId,
    /// Kind-dependent detail: client index for `Issue`/`Deliver`/
    /// `CounterFire`, `LinkDir` index for `LinkStart`, 0 otherwise.
    pub aux: u8,
    /// The recorded time of the node.
    pub time: SimTime,
}

/// One causal dependency: `dst` could not happen before
/// `src.time + lag`.
#[derive(Debug, Clone, Copy)]
pub struct CEdge {
    /// Predecessor node index.
    pub src: u32,
    /// Successor node index (`src < dst` always — stream order is
    /// topological).
    pub dst: u32,
    /// Blame bucket.
    pub kind: EdgeKind,
    /// Wait after the predecessor.
    pub lag: SimDuration,
    /// Next in-edge of `dst` (intrusive list; `u32::MAX` = end).
    next_in: u32,
}

/// The measured critical path: the unique (up to deterministic
/// tie-breaks) chain of binding edges from a source node to the
/// latest node in the graph.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Node indices, source first, terminal last.
    pub nodes: Vec<u32>,
    /// Edge indices; `edges[i]` connects `nodes[i] → nodes[i+1]`.
    pub edges: Vec<u32>,
    /// Time of the path's source node.
    pub start: SimTime,
    /// Time of the terminal node (the recorded makespan end).
    pub end: SimTime,
}

impl CriticalPath {
    /// The path's total duration. Equals the sum of its edge lags
    /// exactly (the telescoping invariant).
    pub fn span(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// Per-[`EdgeKind`] attribution of a critical path's span. The buckets
/// partition the span exactly: `total() == path.span()`.
#[derive(Debug, Clone, Default)]
pub struct Blame {
    per_kind: [SimDuration; EdgeKind::COUNT],
}

impl Blame {
    /// Sum the lags of `path`'s edges into per-kind buckets.
    pub fn from_path(graph: &CausalGraph, path: &CriticalPath) -> Blame {
        let mut blame = Blame::default();
        for &e in &path.edges {
            let edge = &graph.edges[e as usize];
            blame.per_kind[edge.kind.index()] += edge.lag;
        }
        blame
    }

    /// Time attributed to one kind.
    pub fn get(&self, kind: EdgeKind) -> SimDuration {
        self.per_kind[kind.index()]
    }

    /// Accumulate time into one kind's bucket (used by the perturbed
    /// re-timer to build the what-if blame).
    pub(crate) fn add(&mut self, kind: EdgeKind, d: SimDuration) {
        self.per_kind[kind.index()] += d;
    }

    /// Share of the total per kind, in percent, keyed by
    /// [`EdgeKind::label`] — the observatory's `blame_pct` section.
    /// Zero-time kinds are omitted; shares sum to 100 (modulo float
    /// rounding) whenever any time was attributed.
    pub fn shares_pct(&self) -> std::collections::BTreeMap<String, f64> {
        let total = self.total().as_ps() as f64;
        let mut out = std::collections::BTreeMap::new();
        if total <= 0.0 {
            return out;
        }
        for &kind in &EdgeKind::ALL {
            let d = self.get(kind);
            if d > SimDuration::ZERO {
                out.insert(kind.label().to_owned(), 100.0 * d.as_ps() as f64 / total);
            }
        }
        out
    }

    /// Total attributed time (equals the path span exactly).
    pub fn total(&self) -> SimDuration {
        self.per_kind.iter().copied().sum()
    }

    /// A fixed-width text table, largest bucket first, with percentages
    /// of the total.
    pub fn table(&self) -> String {
        let total = self.total();
        let mut rows: Vec<(EdgeKind, SimDuration)> =
            EdgeKind::ALL.iter().map(|&k| (k, self.get(k))).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = String::from("stage            time (ns)    share\n");
        for (kind, d) in rows {
            if d == SimDuration::ZERO {
                continue;
            }
            let pct = if total == SimDuration::ZERO {
                0.0
            } else {
                100.0 * d.as_ps() as f64 / total.as_ps() as f64
            };
            out.push_str(&format!(
                "{:<16} {:>10.2} {:>7.2}%\n",
                kind.label(),
                d.as_ns_f64(),
                pct
            ));
        }
        out.push_str(&format!(
            "{:<16} {:>10.2} {:>7.2}%\n",
            "total",
            total.as_ns_f64(),
            100.0
        ));
        out
    }
}

/// A causal event DAG reconstructed from a recorded flight-event
/// stream. See the [module docs](self) for the construction rules and
/// the exactness invariant.
#[derive(Debug)]
pub struct CausalGraph {
    nodes: Vec<CNode>,
    edges: Vec<CEdge>,
    /// Head of each node's intrusive in-edge list.
    first_in: Vec<u32>,
    /// Recorded phase marks, in stream order.
    phases: Vec<(String, SimTime)>,
}

/// Build-time bookkeeping, dropped once the graph is assembled.
struct Builder {
    g: CausalGraph,
    /// pkt → Issue node.
    issue_of: HashMap<u64, u32>,
    /// pkt → WireReady node.
    wire_of: HashMap<u64, u32>,
    /// (node, client) → (PortWon node, payload_bytes) of the previous
    /// send on that injection port.
    last_port: HashMap<(u32, u8), (u32, u32)>,
    /// (node, link) → LinkStart node of the previous traversal, with
    /// its recorded (start, end).
    last_link: HashMap<(u32, u8), (u32, u64, u64)>,
    /// (pkt, arrival node) → (LinkStart node, start ps) of the
    /// traversal currently in flight toward that node.
    pending_wire: HashMap<(u64, u32), (u32, u64)>,
    /// (pkt, node) → HopEnter node.
    hop_of: HashMap<(u64, u32), u32>,
    /// (pkt, node) → Deliver node.
    deliver_of: HashMap<(u64, u32), u32>,
    /// (node, client, counter) → counted arrivals since the last fire.
    pending_counter: HashMap<(u32, u8, u16), Vec<u32>>,
    /// (pkt, node, link) with at least one recorded retransmission.
    retrans: HashMap<(u64, u32, u8), u32>,
    /// (node, client, fire ps) → CounterFire node (first wins).
    fires_exact: HashMap<(u32, u8, u64), u32>,
    /// (node, fire ps) → CounterFire node (first wins).
    fires_node: HashMap<(u32, u64), u32>,
    /// node → all fires on it, in stream order.
    fires_by_node: HashMap<u32, Vec<(u64, u32)>>,
}

/// `a - b`, clamped at zero (defensive: recorder anchors are ordered,
/// but a clamped lag can only *under*estimate, which the residual edge
/// then absorbs).
fn lag(a: SimTime, b: SimTime) -> SimDuration {
    SimDuration::from_ps(a.as_ps().saturating_sub(b.as_ps()))
}

impl Builder {
    fn add_node(
        &mut self,
        kind: NodeKind,
        pkt: PacketId,
        node: NodeId,
        aux: u8,
        time: SimTime,
    ) -> u32 {
        let idx = self.g.nodes.len() as u32;
        self.g.nodes.push(CNode {
            kind,
            pkt,
            node,
            aux,
            time,
        });
        self.g.first_in.push(NONE);
        idx
    }

    fn add_edge(&mut self, src: u32, dst: u32, kind: EdgeKind, lag: SimDuration) {
        debug_assert!(src < dst, "stream order must be topological");
        let idx = self.g.edges.len() as u32;
        self.g.edges.push(CEdge {
            src,
            dst,
            kind,
            lag,
            next_in: self.g.first_in[dst as usize],
        });
        self.g.first_in[dst as usize] = idx;
    }

    /// Restore the exactness invariant for a freshly built node: if the
    /// structural edges underestimate the recorded time, add a residual
    /// edge from the binding predecessor carrying the gap.
    fn seal(&mut self, node: u32, residual_kind: EdgeKind) {
        let time = self.g.nodes[node as usize].time;
        let mut best: Option<(u32, SimTime)> = None;
        let mut e = self.g.first_in[node as usize];
        while e != NONE {
            let edge = self.g.edges[e as usize];
            let reach = self.g.nodes[edge.src as usize].time + edge.lag;
            debug_assert!(
                reach <= time,
                "structural {:?} edge overshoots: {:?}@{} + {} > {:?}@{} (pkt {:?})",
                edge.kind,
                self.g.nodes[edge.src as usize].kind,
                self.g.nodes[edge.src as usize].time,
                edge.lag,
                self.g.nodes[node as usize].kind,
                time,
                self.g.nodes[node as usize].pkt,
            );
            match best {
                Some((_, t)) if t >= reach => {}
                _ => best = Some((edge.src, reach)),
            }
            e = edge.next_in;
        }
        if let Some((src, reach)) = best {
            if reach < time {
                let src_time = self.g.nodes[src as usize].time;
                self.add_edge(src, node, residual_kind, lag(time, src_time));
            }
        }
    }

    /// The counter fire a send issued at `at` on (`node`, `client`) is
    /// reacting to, if any.
    fn find_fire(&self, node: u32, client: u8, at: u64) -> Option<(u32, u64)> {
        if let Some(&f) = self.fires_exact.get(&(node, client, at)) {
            return Some((f, at));
        }
        if let Some(&f) = self.fires_node.get(&(node, at)) {
            return Some((f, at));
        }
        // Fallback: the latest fire on this node not after the issue
        // (a program that did other work between poll and send).
        let mut best: Option<(u32, u64)> = None;
        for &(fire_ps, idx) in self.fires_by_node.get(&node).into_iter().flatten() {
            let better = match best {
                None => fire_ps <= at,
                Some((_, b)) => fire_ps <= at && fire_ps > b,
            };
            if better {
                best = Some((idx, fire_ps));
            }
        }
        best
    }
}

impl CausalGraph {
    /// Reconstruct the causal DAG from a flight-event stream.
    ///
    /// `dims` resolves which node a link traversal arrives at, and
    /// `injection_occupancy` models how long a packet of a given
    /// payload size holds the injection port (pass
    /// `|b| timing.injection_occupancy(b)` with the run's `Timing`).
    /// A mismatched occupancy model cannot break the graph — port-wait
    /// lags are clamped to the recorded times and residual edges absorb
    /// the difference — it only blurs the blame split between
    /// `port-wait` and `residual`.
    pub fn build<'a, I, F>(dims: TorusDims, events: I, injection_occupancy: F) -> CausalGraph
    where
        I: IntoIterator<Item = &'a FlightEvent>,
        F: Fn(u32) -> SimDuration,
    {
        let mut b = Builder {
            g: CausalGraph {
                nodes: Vec::new(),
                edges: Vec::new(),
                first_in: Vec::new(),
                phases: Vec::new(),
            },
            issue_of: HashMap::new(),
            wire_of: HashMap::new(),
            last_port: HashMap::new(),
            last_link: HashMap::new(),
            pending_wire: HashMap::new(),
            hop_of: HashMap::new(),
            deliver_of: HashMap::new(),
            pending_counter: HashMap::new(),
            retrans: HashMap::new(),
            fires_exact: HashMap::new(),
            fires_node: HashMap::new(),
            fires_by_node: HashMap::new(),
        };

        for ev in events {
            match *ev {
                FlightEvent::Inject {
                    pkt,
                    node,
                    client,
                    dst,
                    at,
                    inj_ready,
                    inj_start,
                    wire_ready,
                    payload_bytes,
                } => {
                    // A local client-to-client write never crosses the
                    // injection port; its anchors are all collapsed to
                    // the issue time, so chaining it into the port-
                    // contention sequence would run an edge backwards
                    // in time. Keep it out of the chain; any port time
                    // it consumed surfaces as residual on later sends.
                    let local = dst == Some(node);
                    let issue = b.add_node(NodeKind::Issue, pkt, node, client, at);
                    if let Some((fire, fire_ps)) = b.find_fire(node.0, client, at.as_ps()) {
                        b.add_edge(
                            fire,
                            issue,
                            EdgeKind::Program,
                            lag(at, SimTime::from_ps(fire_ps)),
                        );
                    }
                    b.issue_of.insert(pkt.0, issue);

                    let asm = b.add_node(NodeKind::Assembled, pkt, node, 0, inj_ready);
                    b.add_edge(issue, asm, EdgeKind::SendSetup, lag(inj_ready, at));

                    let port = b.add_node(NodeKind::PortWon, pkt, node, 0, inj_start);
                    b.add_edge(asm, port, EdgeKind::SendSetup, SimDuration::ZERO);
                    if !local {
                        if let Some(&(prev, prev_bytes)) = b.last_port.get(&(node.0, client)) {
                            let occ = injection_occupancy(prev_bytes);
                            let prev_time = b.g.nodes[prev as usize].time;
                            // Clamp: the port model may only underestimate.
                            let wait = occ.min(lag(inj_start, prev_time));
                            b.add_edge(prev, port, EdgeKind::PortWait, wait);
                        }
                    }
                    b.seal(port, EdgeKind::Residual);
                    if !local {
                        b.last_port.insert((node.0, client), (port, payload_bytes));
                    }

                    let wire = b.add_node(NodeKind::WireReady, pkt, node, 0, wire_ready);
                    b.add_edge(port, wire, EdgeKind::SendRing, lag(wire_ready, inj_start));
                    b.wire_of.insert(pkt.0, wire);
                }
                FlightEvent::LinkReserve {
                    pkt,
                    node,
                    link,
                    ready,
                    start,
                    end,
                } => {
                    let ls = b.add_node(NodeKind::LinkStart, pkt, node, link.index() as u8, start);
                    // Readiness edge: first hop from the sender's
                    // WireReady, transit hops from the HopEnter.
                    if let Some(&hop) = b.hop_of.get(&(pkt.0, node.0)) {
                        let hop_time = b.g.nodes[hop as usize].time;
                        b.add_edge(hop, ls, EdgeKind::TransitRing, lag(ready, hop_time));
                    } else if let Some(&wire) = b.wire_of.get(&pkt.0) {
                        let wire_time = b.g.nodes[wire as usize].time;
                        b.add_edge(wire, ls, EdgeKind::SendRing, lag(ready, wire_time));
                    }
                    // Resource edge: the previous traversal of this
                    // link direction holds it for its occupancy.
                    if let Some(&(prev, p_start, p_end)) =
                        b.last_link.get(&(node.0, link.index() as u8))
                    {
                        b.add_edge(
                            prev,
                            ls,
                            EdgeKind::LinkWait,
                            SimDuration::from_ps(p_end.saturating_sub(p_start)),
                        );
                    }
                    let residual = if b.retrans.contains_key(&(pkt.0, node.0, link.index() as u8)) {
                        EdgeKind::Retransmit
                    } else {
                        EdgeKind::Residual
                    };
                    b.seal(ls, residual);
                    b.last_link.insert(
                        (node.0, link.index() as u8),
                        (ls, start.as_ps(), end.as_ps()),
                    );
                    let arrive = node.coord(dims).step(link, dims).node_id(dims);
                    b.pending_wire
                        .insert((pkt.0, arrive.0), (ls, start.as_ps()));
                }
                FlightEvent::Retransmit {
                    pkt, node, link, ..
                } => {
                    *b.retrans
                        .entry((pkt.0, node.0, link.index() as u8))
                        .or_insert(0) += 1;
                }
                FlightEvent::HopEnter { pkt, node, at } => {
                    let hop = b.add_node(NodeKind::HopEnter, pkt, node, 0, at);
                    if let Some((ls, start)) = b.pending_wire.remove(&(pkt.0, node.0)) {
                        b.add_edge(ls, hop, EdgeKind::Wire, lag(at, SimTime::from_ps(start)));
                    }
                    b.hop_of.insert((pkt.0, node.0), hop);
                }
                FlightEvent::HopExit { .. } => {
                    // Redundant with the next LinkReserve's start.
                }
                FlightEvent::Deliver {
                    pkt,
                    node,
                    client,
                    at,
                } => {
                    let del = b.add_node(NodeKind::Deliver, pkt, node, client, at);
                    if let Some(&hop) = b.hop_of.get(&(pkt.0, node.0)) {
                        let hop_time = b.g.nodes[hop as usize].time;
                        b.add_edge(hop, del, EdgeKind::Delivery, lag(at, hop_time));
                    } else if let Some(&issue) = b.issue_of.get(&pkt.0) {
                        // Same-node write: the whole local trip is
                        // delivery, anchored at the issue.
                        let issue_time = b.g.nodes[issue as usize].time;
                        b.add_edge(issue, del, EdgeKind::Delivery, lag(at, issue_time));
                    }
                    b.deliver_of.insert((pkt.0, node.0), del);
                }
                FlightEvent::CounterUpdate {
                    pkt,
                    node,
                    client,
                    counter,
                    at,
                    fire_at,
                } => {
                    let deliver = b.deliver_of.get(&(pkt.0, node.0)).copied();
                    match fire_at {
                        None => {
                            if let Some(del) = deliver {
                                b.pending_counter
                                    .entry((node.0, client, counter))
                                    .or_default()
                                    .push(del);
                            }
                        }
                        Some(fire_time) => {
                            let fire =
                                b.add_node(NodeKind::CounterFire, pkt, node, client, fire_time);
                            if let Some(del) = deliver {
                                b.add_edge(del, fire, EdgeKind::SyncVisibility, lag(fire_time, at));
                            }
                            if let Some(arrivals) =
                                b.pending_counter.remove(&(node.0, client, counter))
                            {
                                for del in arrivals {
                                    b.add_edge(del, fire, EdgeKind::SyncArrive, SimDuration::ZERO);
                                }
                            }
                            let fire_ps = fire_time.as_ps();
                            b.fires_exact
                                .entry((node.0, client, fire_ps))
                                .or_insert(fire);
                            b.fires_node.entry((node.0, fire_ps)).or_insert(fire);
                            b.fires_by_node
                                .entry(node.0)
                                .or_default()
                                .push((fire_ps, fire));
                        }
                    }
                }
                FlightEvent::Phase { ref label, at } => {
                    b.g.phases.push((label.clone(), at));
                }
                // Recovery events mark control-plane activity, not
                // packet-latency causality; the critical-path graph
                // skips them.
                FlightEvent::LinkDown { .. }
                | FlightEvent::NodeDown { .. }
                | FlightEvent::Reinject { .. }
                | FlightEvent::DuplicateSuppressed { .. } => {}
            }
        }
        b.g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (no recorded packet events).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, in stream (= topological) order.
    pub fn nodes(&self) -> &[CNode] {
        &self.nodes
    }

    /// All edges. Every edge satisfies `src < dst`.
    pub fn edges(&self) -> &[CEdge] {
        &self.edges
    }

    /// Recorded phase marks, in stream order.
    pub fn phases(&self) -> &[(String, SimTime)] {
        &self.phases
    }

    /// In-edges of a node.
    pub fn preds(&self, node: u32) -> impl Iterator<Item = (u32, &CEdge)> {
        PredIter {
            g: self,
            e: self.first_in[node as usize],
        }
    }

    /// Whether a node has no causal predecessor (its time is an input,
    /// not derived — e.g. a program's spontaneous first send).
    pub fn is_source(&self, node: u32) -> bool {
        self.first_in[node as usize] == NONE
    }

    /// The latest node in the graph (ties broken toward the earliest
    /// recorded), or `None` when empty. Its time is the recorded
    /// makespan end.
    pub fn terminal(&self) -> Option<u32> {
        let mut best: Option<u32> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            match best {
                Some(b) if self.nodes[b as usize].time >= n.time => {}
                _ => best = Some(i as u32),
            }
        }
        best
    }

    /// Total lag carried by residual/retransmit edges — how much of the
    /// recorded timing the structural model could not attribute.
    pub fn residual_total(&self) -> SimDuration {
        self.edges
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::Residual | EdgeKind::Retransmit))
            .map(|e| e.lag)
            .sum()
    }

    /// Verify the exactness invariant: every edge points forward and
    /// does not overshoot, and every non-source node's time equals the
    /// max over predecessors of `pred_time + lag` exactly.
    pub fn check_consistency(&self) -> Result<(), String> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.src >= e.dst {
                return Err(format!("edge {i} not forward: {} -> {}", e.src, e.dst));
            }
            let reach = self.nodes[e.src as usize].time + e.lag;
            if reach > self.nodes[e.dst as usize].time {
                return Err(format!(
                    "edge {i} ({:?}) overshoots: {} + {} > {}",
                    e.kind, self.nodes[e.src as usize].time, e.lag, self.nodes[e.dst as usize].time
                ));
            }
        }
        for n in 0..self.nodes.len() as u32 {
            if self.is_source(n) {
                continue;
            }
            let time = self.nodes[n as usize].time;
            let modeled = self
                .preds(n)
                .map(|(_, e)| self.nodes[e.src as usize].time + e.lag)
                .max()
                .unwrap();
            if modeled != time {
                return Err(format!(
                    "node {n} ({:?}): max(pred + lag) = {modeled} != recorded {time}",
                    self.nodes[n as usize].kind
                ));
            }
        }
        Ok(())
    }

    /// Extract the measured critical path ending at [`terminal`]
    /// (`None` on an empty graph): from the terminal, repeatedly follow
    /// the binding in-edge (the one whose `pred_time + lag` equals the
    /// node's time; ties broken toward the earliest-inserted edge)
    /// until a source node is reached.
    ///
    /// [`terminal`]: CausalGraph::terminal
    pub fn critical_path(&self) -> Option<CriticalPath> {
        let terminal = self.terminal()?;
        let mut nodes = vec![terminal];
        let mut edges = Vec::new();
        let mut cur = terminal;
        loop {
            let mut best: Option<(u32, u32, SimTime)> = None; // (edge, src, reach)
            for (ei, e) in self.preds(cur) {
                let reach = self.nodes[e.src as usize].time + e.lag;
                let better = match best {
                    None => true,
                    Some((bei, _, bt)) => reach > bt || (reach == bt && ei < bei),
                };
                if better {
                    best = Some((ei, e.src, reach));
                }
            }
            match best {
                None => break,
                Some((ei, src, _)) => {
                    edges.push(ei);
                    nodes.push(src);
                    cur = src;
                }
            }
        }
        nodes.reverse();
        edges.reverse();
        let start = self.nodes[nodes[0] as usize].time;
        let end = self.nodes[terminal as usize].time;
        Some(CriticalPath {
            nodes,
            edges,
            start,
            end,
        })
    }

    /// Per-node slack relative to the terminal: how much later each
    /// node could have happened without delaying the terminal. `None`
    /// for nodes with no path to the terminal; guaranteed non-negative,
    /// and exactly zero along the critical path.
    pub fn slack(&self) -> Vec<Option<SimDuration>> {
        let n = self.nodes.len();
        let mut late: Vec<Option<SimTime>> = vec![None; n];
        let terminal = match self.terminal() {
            Some(t) => t,
            None => return Vec::new(),
        };
        late[terminal as usize] = Some(self.nodes[terminal as usize].time);
        // Out-adjacency is implicit: sweep edges once per target —
        // edges are grouped by walking in reverse node order and using
        // the in-edge lists of successors. A reverse edge sweep
        // suffices because `src < dst` for every edge.
        for e in self.edges.iter().rev() {
            if let Some(l) = late[e.dst as usize] {
                let cand = SimTime::from_ps(l.as_ps().saturating_sub(e.lag.as_ps()));
                late[e.src as usize] = Some(match late[e.src as usize] {
                    None => cand,
                    Some(cur) => cur.min(cand),
                });
            }
        }
        late.iter()
            .enumerate()
            .map(|(i, l)| {
                l.map(|l| {
                    debug_assert!(l >= self.nodes[i].time, "slack must be non-negative");
                    lag(l, self.nodes[i].time)
                })
            })
            .collect()
    }
}

/// Iterator over a node's in-edges.
struct PredIter<'a> {
    g: &'a CausalGraph,
    e: u32,
}

impl<'a> Iterator for PredIter<'a> {
    type Item = (u32, &'a CEdge);

    fn next(&mut self) -> Option<Self::Item> {
        if self.e == NONE {
            return None;
        }
        let idx = self.e;
        let edge = &self.g.edges[idx as usize];
        self.e = edge.next_in;
        Some((idx, edge))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, Recorder};
    use anton_topo::LinkDir;

    fn ns(v: u64) -> SimTime {
        SimTime::from_ns(v)
    }

    fn dims() -> TorusDims {
        TorusDims::new(4, 4, 4)
    }

    /// One remote unicast, hand-recorded with the model's anchor
    /// semantics: the chain reconstructs with zero residual and the
    /// path telescopes to the 162 ns end-to-end time.
    fn one_hop_events() -> Vec<FlightEvent> {
        let mut r = FlightRecorder::new();
        let pkt = PacketId(0);
        let (src, dst) = (NodeId(0), NodeId(1));
        r.on_inject(pkt, src, 0, Some(dst), ns(0), ns(36), ns(36), ns(55), 0);
        r.on_link_reserve(pkt, src, LinkDir::from_index(0), ns(55), ns(55), ns(57));
        r.on_hop_enter(pkt, dst, ns(95));
        r.on_deliver(pkt, dst, 0, ns(162));
        r.on_counter_update(pkt, dst, 0, 7, ns(162), Some(ns(162)));
        r.take_events()
    }

    #[test]
    fn single_packet_chain_is_exact() {
        let events = one_hop_events();
        let g = CausalGraph::build(dims(), &events, |_| SimDuration::from_ns(2));
        g.check_consistency().expect("exact reconstruction");
        assert_eq!(g.residual_total(), SimDuration::ZERO);
        let path = g.critical_path().expect("non-empty");
        assert_eq!(path.start, ns(0));
        assert_eq!(path.end, ns(162));
        let blame = Blame::from_path(&g, &path);
        assert_eq!(blame.total(), path.span());
        assert_eq!(blame.get(EdgeKind::Wire), SimDuration::from_ns(40));
        assert_eq!(blame.get(EdgeKind::SendSetup), SimDuration::from_ns(36));
        // Every node on the unique chain has zero slack.
        let slack = g.slack();
        for &n in &path.nodes {
            assert_eq!(slack[n as usize], Some(SimDuration::ZERO));
        }
        assert!(blame.table().contains("total"));
    }

    #[test]
    fn program_edge_links_fire_to_reaction() {
        let mut events = one_hop_events();
        // The node program on the destination reacts to the fire at
        // 162 ns with a reply send.
        let mut r = FlightRecorder::new();
        r.on_inject(
            PacketId(1),
            NodeId(1),
            0,
            Some(NodeId(0)),
            ns(162),
            ns(198),
            ns(198),
            ns(217),
            0,
        );
        r.on_link_reserve(
            PacketId(1),
            NodeId(1),
            LinkDir::from_index(1),
            ns(217),
            ns(217),
            ns(219),
        );
        r.on_hop_enter(PacketId(1), NodeId(0), ns(257));
        r.on_deliver(PacketId(1), NodeId(0), 0, ns(324));
        events.extend(r.take_events());

        let g = CausalGraph::build(dims(), &events, |_| SimDuration::from_ns(2));
        g.check_consistency().expect("exact");
        let path = g.critical_path().expect("non-empty");
        assert_eq!(path.end, ns(324));
        assert_eq!(
            path.start,
            ns(0),
            "path crosses the program edge back to the first send"
        );
        let blame = Blame::from_path(&g, &path);
        assert_eq!(blame.total(), SimDuration::from_ns(324));
        assert!(path
            .edges
            .iter()
            .any(|&e| g.edges()[e as usize].kind == EdgeKind::Program));
    }

    #[test]
    fn port_contention_is_blamed_or_residual() {
        let mut r = FlightRecorder::new();
        // Two back-to-back sends on the same port; the second waits
        // 5 ns for the port but the occupancy model only explains 2 ns
        // — a residual edge (carrying the full 5 ns gap from the
        // binding predecessor, subsuming the parallel port-wait edge)
        // restores exactness.
        r.on_inject(
            PacketId(0),
            NodeId(0),
            0,
            Some(NodeId(1)),
            ns(0),
            ns(36),
            ns(36),
            ns(55),
            0,
        );
        r.on_inject(
            PacketId(1),
            NodeId(0),
            0,
            Some(NodeId(1)),
            ns(0),
            ns(36),
            ns(41),
            ns(60),
            0,
        );
        let events = r.take_events();
        let g = CausalGraph::build(dims(), &events, |_| SimDuration::from_ns(2));
        g.check_consistency().expect("exact with residual");
        assert_eq!(g.residual_total(), SimDuration::from_ns(5));
        let kinds: Vec<EdgeKind> = g.edges().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::PortWait));
        assert!(kinds.contains(&EdgeKind::Residual));
    }

    #[test]
    fn counter_fire_depends_on_all_counted_arrivals() {
        let mut r = FlightRecorder::new();
        // Three one-hop neighbors of node 0 in a 4x4x4 torus: node 1
        // via X-, node 4 via Y-, node 16 via Z-.
        for (i, (src, link, t)) in [(1u32, 1usize, 100u64), (4, 3, 140), (16, 5, 180)]
            .iter()
            .enumerate()
        {
            let pkt = PacketId(i as u64);
            r.on_inject(
                pkt,
                NodeId(*src),
                0,
                Some(NodeId(0)),
                ns(0),
                ns(36),
                ns(36),
                ns(55),
                0,
            );
            r.on_link_reserve(
                pkt,
                NodeId(*src),
                LinkDir::from_index(*link),
                ns(55),
                ns(55),
                ns(57),
            );
            r.on_hop_enter(pkt, NodeId(0), ns(95));
            r.on_deliver(pkt, NodeId(0), 0, ns(*t));
            r.on_counter_update(pkt, NodeId(0), 0, 3, ns(*t), (i == 2).then_some(ns(*t)));
        }
        let events = r.take_events();
        let g = CausalGraph::build(dims(), &events, |_| SimDuration::from_ns(2));
        g.check_consistency().expect("exact");
        let fire = g
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::CounterFire)
            .expect("fire node") as u32;
        let mut kinds: Vec<EdgeKind> = g.preds(fire).map(|(_, e)| e.kind).collect();
        kinds.sort();
        assert_eq!(
            kinds,
            vec![
                EdgeKind::SyncVisibility,
                EdgeKind::SyncArrive,
                EdgeKind::SyncArrive
            ],
            "the fire depends on its binding arrival and both counted ones"
        );
    }

    #[test]
    fn empty_graph_is_well_behaved() {
        let g = CausalGraph::build(dims(), std::iter::empty(), |_| SimDuration::ZERO);
        assert!(g.is_empty());
        assert!(g.critical_path().is_none());
        assert!(g.terminal().is_none());
        assert_eq!(g.slack(), Vec::new());
        g.check_consistency().expect("trivially consistent");
    }
}
