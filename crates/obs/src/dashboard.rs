//! Dependency-free HTML rendering of the benchmark trajectory.
//!
//! [`render_dashboard`] turns the committed baseline trajectory plus
//! the current [`ObservatoryReport`]/[`ObservatoryDiff`] into a single
//! self-contained HTML document: stat tiles for the headline numbers,
//! one inline-SVG sparkline per metric with a direction-aware delta
//! badge, stacked attribution bars (critical-path blame, speedup
//! attribution), the triage narrative, per-component shift tables, and
//! a plain `<table>` view of every number for accessibility.
//!
//! The output is **byte-deterministic**: no timestamps, no randomness,
//! all maps iterate in sorted order, and every float is formatted
//! through fixed-width formatters. CI archives the file on every run,
//! so two runs over the same reports must produce identical bytes —
//! the integration tests pin this. It is also **offline**: no external
//! scripts, styles, fonts, or images; everything is inline.
//!
//! Colors follow the dataviz method: categorical hues are assigned to
//! components in a fixed canonical order (never cycled — components
//! past the eighth slot fold into a neutral "other" gray), values and
//! labels wear ink tokens rather than series colors, regressions are
//! marked with a word as well as a color, and dark mode is a selected
//! second palette behind a `prefers-color-scheme` media query.

use crate::metrics::fmt_f64;
use crate::observatory::{ObservatoryDiff, ObservatoryReport, SectionKind, SEC_BLAME};
use crate::regress::{BenchReport, Direction};
use std::fmt::Write as _;

/// Everything the renderer consumes. All fields are borrowed; the
/// renderer never mutates or reorders its inputs.
#[derive(Debug, Clone, Copy)]
pub struct DashboardInput<'a> {
    /// Page title.
    pub title: &'a str,
    /// Named baselines in trajectory (chronological) order, e.g. the
    /// resolved entries of `BENCH_trajectory.json` plus the current
    /// run appended last.
    pub trajectory: &'a [(String, BenchReport)],
    /// The current observatory report, for the attribution bars.
    pub current: Option<&'a ObservatoryReport>,
    /// The current-vs-baseline diff, for the triage panel.
    pub diff: Option<&'a ObservatoryDiff>,
    /// Scenario provenance per trajectory column: `(column label, spec
    /// content hash, engine fingerprint)`. Columns without an entry
    /// render an em-dash; pass `&[]` when no provenance is known.
    pub provenance: &'a [(String, String, String)],
}

/// Categorical series slots, assigned in fixed order and never cycled.
const CATEGORICAL: [&str; 8] = [
    "#2a78d6", // blue
    "#eb6834", // orange
    "#1baf7a", // aqua
    "#eda100", // yellow
    "#e87ba4", // magenta
    "#008300", // green
    "#4a3aa7", // violet
    "#e34948", // red
];

/// The fold color for components past the eighth slot.
const OTHER: &str = "#898781";

/// Canonical component order for color assignment: the causal-graph
/// edge kinds in display order, then the speedup-attribution
/// components. Unknown components sort after these by name.
const COMPONENT_ORDER: [&str; 17] = [
    "send-setup",
    "port-wait",
    "send-ring",
    "link-wait",
    "transit-ring",
    "wire",
    "delivery",
    "sync-visibility",
    "sync-arrive",
    "program",
    "retransmit",
    "residual",
    "merge",
    "barrier",
    "imbalance",
    "windowing",
    "exec-excess",
];

/// Headline metrics promoted to stat tiles when present, in order.
const HERO_METRICS: [(&str, &str); 4] = [
    ("one_way_1hop_ns", "1-hop one-way (ns)"),
    ("one_way_diameter_ns", "diameter one-way (ns)"),
    ("allreduce_512_dimord_us", "512-node all-reduce (µs)"),
    ("md_lookahead_efficiency", "lookahead efficiency"),
];

fn component_rank(name: &str) -> usize {
    COMPONENT_ORDER
        .iter()
        .position(|&k| k == name)
        .unwrap_or(COMPONENT_ORDER.len())
}

/// The fixed color for a component within one section: rank every
/// present component by canonical order (name-sorted past the known
/// list), give the first eight the categorical slots in order, fold
/// the rest into neutral gray.
fn section_colors<'a>(names: impl Iterator<Item = &'a str>) -> Vec<(&'a str, &'static str)> {
    let mut ordered: Vec<&str> = names.collect();
    ordered.sort_by(|a, b| component_rank(a).cmp(&component_rank(b)).then(a.cmp(b)));
    ordered
        .into_iter()
        .enumerate()
        .map(|(i, n)| (n, *CATEGORICAL.get(i).unwrap_or(&OTHER)))
        .collect()
}

/// Escape text for HTML text content and attribute values.
pub fn html_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Fixed-precision coordinate formatting for SVG geometry.
fn coord(v: f64) -> String {
    let r = format!("{v:.2}");
    // Trim a trailing ".00" so common integer coordinates stay short.
    r.strip_suffix(".00").map(str::to_owned).unwrap_or(r)
}

struct Html(String);

impl Html {
    fn push(&mut self, s: &str) {
        self.0.push_str(s);
    }
}

/// Render the dashboard document. Pure function of its input: the
/// same input always yields the same bytes.
pub fn render_dashboard(input: &DashboardInput<'_>) -> String {
    let mut h = Html(String::with_capacity(64 * 1024));
    head(&mut h, input.title);
    let _ = writeln!(
        h.0,
        "<header><h1>{}</h1><p class=\"sub\">{} baseline{} on the trajectory</p></header>",
        html_escape(input.title),
        input.trajectory.len(),
        if input.trajectory.len() == 1 { "" } else { "s" },
    );

    if let Some(diff) = input.diff {
        triage_panel(&mut h, diff);
    }
    hero_tiles(&mut h, input.trajectory);
    if let Some(current) = input.current {
        attribution_bars(&mut h, current);
        value_tables(&mut h, current);
    }
    sparkline_grid(&mut h, input.trajectory);
    if let Some(diff) = input.diff {
        shift_tables(&mut h, diff);
    }
    data_table(&mut h, input.trajectory, input.provenance);

    h.push("</main></body></html>\n");
    debug_assert!(validate_html(&h.0).is_ok());
    h.0
}

fn head(h: &mut Html, title: &str) {
    h.push("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    h.push("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n");
    let _ = writeln!(h.0, "<title>{}</title>", html_escape(title));
    h.push("<style>\n");
    h.push(
        ":root{--surface:#fcfcfb;--tile:#ffffff;--ink:#0b0b0b;--ink2:#52514e;--muted:#898781;\
         --grid:#e1e0d9;--good:#006300;--bad:#d03b3b;}\n\
         @media (prefers-color-scheme: dark){:root{--surface:#1a1a19;--tile:#222221;\
         --ink:#ffffff;--ink2:#c3c2b7;--muted:#898781;--grid:#2c2c2a;--good:#0ca30c;\
         --bad:#e34948;}}\n",
    );
    h.push(
        "body{margin:0;background:var(--surface);color:var(--ink);\
         font:14px/1.45 ui-sans-serif,system-ui,sans-serif;}\n\
         main{max-width:980px;margin:0 auto;padding:16px 20px 48px;}\n\
         header{max-width:980px;margin:0 auto;padding:20px 20px 0;}\n\
         h1{font-size:20px;margin:0 0 2px;}h2{font-size:15px;margin:26px 0 10px;}\n\
         .sub{color:var(--ink2);margin:0 0 8px;}\n\
         .tiles{display:flex;flex-wrap:wrap;gap:10px;}\n\
         .tile{background:var(--tile);border:1px solid var(--grid);border-radius:8px;\
         padding:10px 14px;min-width:150px;}\n\
         .tile .v{font-size:22px;font-variant-numeric:tabular-nums;}\n\
         .tile .k{color:var(--ink2);font-size:12px;}\n\
         .grid{display:grid;grid-template-columns:repeat(auto-fill,minmax(225px,1fr));gap:10px;}\n\
         .spark{background:var(--tile);border:1px solid var(--grid);border-radius:8px;\
         padding:8px 12px 4px;}\n\
         .spark .k{color:var(--ink2);font-size:12px;overflow-wrap:anywhere;}\n\
         .spark .v{font-variant-numeric:tabular-nums;}\n\
         .delta{font-size:12px;font-variant-numeric:tabular-nums;}\n\
         .delta.good{color:var(--good);}.delta.bad{color:var(--bad);}\
         .delta.flat{color:var(--muted);}\n\
         .legend{display:flex;flex-wrap:wrap;gap:4px 14px;margin:6px 0 0;padding:0;\
         list-style:none;font-size:12px;color:var(--ink2);}\n\
         .legend .swatch{display:inline-block;width:10px;height:10px;border-radius:2px;\
         margin-right:5px;vertical-align:-1px;}\n\
         pre.triage{background:var(--tile);border:1px solid var(--grid);border-radius:8px;\
         padding:12px 14px;overflow-x:auto;font:12px/1.5 ui-monospace,monospace;}\n\
         table{border-collapse:collapse;font-variant-numeric:tabular-nums;font-size:13px;}\n\
         th,td{border-bottom:1px solid var(--grid);padding:4px 10px;text-align:right;}\n\
         th:first-child,td:first-child{text-align:left;}\n\
         th{color:var(--ink2);font-weight:600;}\n\
         .flag{color:var(--bad);font-weight:600;}.ok{color:var(--ink2);}\n\
         .up{color:var(--ink2);}\n\
         details{margin-top:20px;}summary{cursor:pointer;color:var(--ink2);}\n",
    );
    h.push("</style>\n</head>\n<body>\n");
    h.push("<main>\n");
    // <main> opened here; header is written by the caller inside main's
    // flow for simpler validation.
}

fn triage_panel(h: &mut Html, diff: &ObservatoryDiff) {
    let regressed = diff.has_regressions();
    let _ = writeln!(
        h.0,
        "<h2>Triage vs &#39;{}&#39; — <span class=\"{}\">{}</span></h2>",
        html_escape(&diff.baseline_label),
        if regressed { "flag" } else { "ok" },
        if regressed {
            format!("{} regression(s)", diff.regression_count())
        } else {
            "clean".to_owned()
        },
    );
    let _ = writeln!(
        h.0,
        "<pre class=\"triage\">{}</pre>",
        html_escape(&diff.triage())
    );
}

fn hero_tiles(h: &mut Html, trajectory: &[(String, BenchReport)]) {
    let Some((label, latest)) = trajectory.last() else {
        return;
    };
    let tiles: Vec<(&str, f64)> = HERO_METRICS
        .iter()
        .filter_map(|&(name, title)| latest.get(name).map(|v| (title, v)))
        .collect();
    if tiles.is_empty() {
        return;
    }
    let _ = writeln!(h.0, "<h2>Latest run ({})</h2>", html_escape(label));
    h.push("<div class=\"tiles\">\n");
    for (title, v) in tiles {
        let _ = writeln!(
            h.0,
            "<div class=\"tile\"><div class=\"v\">{}</div><div class=\"k\">{}</div></div>",
            html_escape(&fmt_f64(v)),
            html_escape(title),
        );
    }
    h.push("</div>\n");
}

fn attribution_bars(h: &mut Html, current: &ObservatoryReport) {
    for (name, section) in &current.sections {
        if section.kind != SectionKind::Shares || section.values.is_empty() {
            continue;
        }
        let title = if name == SEC_BLAME {
            "Critical-path blame".to_owned()
        } else if name == crate::observatory::SEC_ATTRIBUTION {
            "Speedup attribution (informational)".to_owned()
        } else {
            name.clone()
        };
        let _ = writeln!(h.0, "<h2>{}</h2>", html_escape(&title));
        stacked_bar(
            h,
            name,
            section.values.iter().map(|(k, &v)| (k.as_str(), v)),
        );
    }
}

/// Values-kind sections (congestion top-K, recovery counters) are
/// absolute numbers, not shares — a stacked bar would lie about them,
/// so they get a plain table each.
fn value_tables(h: &mut Html, current: &ObservatoryReport) {
    for (name, section) in &current.sections {
        if section.kind != SectionKind::Values || section.values.is_empty() {
            continue;
        }
        let title = if name == crate::observatory::SEC_CONGESTION {
            "Link congestion (top-K busiest)"
        } else if name == crate::observatory::SEC_RECOVERY {
            "Fault recovery"
        } else {
            name.as_str()
        };
        let _ = writeln!(
            h.0,
            "<h2>{} <span class=\"up\">({})</span></h2>",
            html_escape(title),
            if section.gated {
                "gated"
            } else {
                "informational"
            },
        );
        h.push("<table>\n<thead><tr><th>component</th><th>value</th></tr></thead>\n<tbody>\n");
        for (k, &v) in &section.values {
            let _ = writeln!(
                h.0,
                "<tr><td>{}</td><td>{}</td></tr>",
                html_escape(k),
                html_escape(&fmt_f64(v)),
            );
        }
        h.push("</tbody></table>\n");
    }
}

/// One horizontal 100%-stacked bar with 2px surface gaps between
/// segments, native `<title>` tooltips, and a legend (a stacked bar is
/// a multi-series mark, so identity must not be color-alone).
fn stacked_bar<'a>(h: &mut Html, id: &str, values: impl Iterator<Item = (&'a str, f64)>) {
    let vals: Vec<(&str, f64)> = values.collect();
    let total: f64 = vals.iter().map(|(_, v)| v.max(0.0)).sum();
    if total <= 0.0 {
        return;
    }
    let colors = section_colors(vals.iter().map(|(k, _)| *k));
    let color_of = |name: &str| {
        colors
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
            .unwrap_or(OTHER)
    };
    const W: f64 = 940.0;
    const H: f64 = 26.0;
    const GAP: f64 = 2.0;
    let _ = writeln!(
        h.0,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"100%\" height=\"{H}\" role=\"img\" \
         aria-label=\"{} share breakdown\">",
        html_escape(id)
    );
    let gaps = GAP * (vals.len().saturating_sub(1)) as f64;
    let usable = W - gaps;
    let mut x = 0.0;
    for (k, v) in &vals {
        let w = usable * v.max(0.0) / total;
        let _ = writeln!(
            h.0,
            "<rect x=\"{}\" y=\"0\" width=\"{}\" height=\"{H}\" rx=\"3\" fill=\"{}\">\
             <title>{}: {:.1}%</title></rect>",
            coord(x),
            coord(w),
            color_of(k),
            html_escape(k),
            v,
        );
        x += w + GAP;
    }
    h.push("</svg>\n");
    h.push("<ul class=\"legend\">\n");
    for (k, v) in &vals {
        let _ = writeln!(
            h.0,
            "<li><span class=\"swatch\" style=\"background:{}\"></span>{} {:.1}%</li>",
            color_of(k),
            html_escape(k),
            v,
        );
    }
    h.push("</ul>\n");
}

fn sparkline_grid(h: &mut Html, trajectory: &[(String, BenchReport)]) {
    if trajectory.len() < 2 {
        return;
    }
    let latest = &trajectory[trajectory.len() - 1].1;
    // Every metric that appears in at least two trajectory points,
    // sorted by name (BTreeMap union keeps this deterministic).
    let mut names: Vec<&String> = trajectory
        .iter()
        .flat_map(|(_, r)| r.values.keys())
        .collect();
    names.sort();
    names.dedup();
    let multi: Vec<&String> = names
        .into_iter()
        .filter(|n| {
            trajectory
                .iter()
                .filter(|(_, r)| r.get(n).is_some())
                .count()
                >= 2
        })
        .collect();
    if multi.is_empty() {
        return;
    }
    h.push("<h2>Metric trajectory</h2>\n<div class=\"grid\">\n");
    for name in multi {
        let points: Vec<(&str, f64)> = trajectory
            .iter()
            .filter_map(|(label, r)| r.get(name).map(|v| (label.as_str(), v)))
            .collect();
        let dir = latest.direction(name);
        sparkline_tile(h, name, &points, dir);
    }
    h.push("</div>\n");
}

fn sparkline_tile(h: &mut Html, name: &str, points: &[(&str, f64)], dir: Direction) {
    let (last_label, last) = points[points.len() - 1];
    let prev = points[points.len() - 2].1;
    let delta_pct = if prev == 0.0 {
        0.0
    } else {
        100.0 * (last - prev) / prev
    };
    let (class, arrow) = if delta_pct.abs() < 0.005 {
        ("flat", "=")
    } else {
        let improved = match dir {
            Direction::LowerIsBetter => delta_pct < 0.0,
            Direction::HigherIsBetter => delta_pct > 0.0,
        };
        if improved {
            (
                "good",
                if delta_pct < 0.0 {
                    "&#9662;"
                } else {
                    "&#9652;"
                },
            )
        } else {
            (
                "bad",
                if delta_pct < 0.0 {
                    "&#9662;"
                } else {
                    "&#9652;"
                },
            )
        }
    };
    h.push("<div class=\"spark\">\n");
    let _ = writeln!(
        h.0,
        "<div class=\"k\">{}{}</div>\n<div class=\"v\">{} \
         <span class=\"delta {class}\">{arrow} {delta_pct:+.2}%</span></div>",
        html_escape(name),
        if dir == Direction::HigherIsBetter {
            " &#8599;"
        } else {
            ""
        },
        html_escape(&fmt_f64(last)),
    );

    const W: f64 = 200.0;
    const H: f64 = 44.0;
    const PAD: f64 = 5.0;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, v) in points {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = if hi > lo { hi - lo } else { 1.0 };
    let xy = |i: usize, v: f64| {
        let x = if points.len() == 1 {
            W / 2.0
        } else {
            PAD + (W - 2.0 * PAD) * i as f64 / (points.len() - 1) as f64
        };
        let y = H - PAD - (H - 2.0 * PAD) * (v - lo) / span;
        (x, y)
    };
    let _ = writeln!(
        h.0,
        "<svg viewBox=\"0 0 {W} {H}\" width=\"100%\" height=\"{H}\" role=\"img\" \
         aria-label=\"{} across {} baselines, latest {} at {}\">",
        html_escape(name),
        points.len(),
        html_escape(&fmt_f64(last)),
        html_escape(last_label),
    );
    let mut path = String::new();
    for (i, &(_, v)) in points.iter().enumerate() {
        let (x, y) = xy(i, v);
        if !path.is_empty() {
            path.push(' ');
        }
        let _ = write!(path, "{},{}", coord(x), coord(y));
    }
    let _ = writeln!(
        h.0,
        "<polyline points=\"{path}\" fill=\"none\" stroke=\"{}\" stroke-width=\"2\" \
         stroke-linejoin=\"round\" stroke-linecap=\"round\"></polyline>",
        CATEGORICAL[0],
    );
    for (i, &(label, v)) in points.iter().enumerate() {
        let (x, y) = xy(i, v);
        let _ = writeln!(
            h.0,
            "<circle cx=\"{}\" cy=\"{}\" r=\"3\" fill=\"{}\" stroke=\"var(--tile)\" \
             stroke-width=\"2\"><title>{}: {}</title></circle>",
            coord(x),
            coord(y),
            CATEGORICAL[0],
            html_escape(label),
            html_escape(&fmt_f64(v)),
        );
    }
    h.push("</svg>\n</div>\n");
}

fn shift_tables(h: &mut Html, diff: &ObservatoryDiff) {
    let sections: Vec<_> = diff
        .sections
        .iter()
        .filter(|s| !s.components.is_empty())
        .collect();
    if sections.is_empty() {
        return;
    }
    h.push("<h2>Component shifts</h2>\n");
    for sec in sections {
        let unit = match sec.kind {
            SectionKind::Shares => "pt",
            SectionKind::Values => "%",
        };
        let _ = writeln!(
            h.0,
            "<h2>{} <span class=\"up\">({}, {})</span></h2>",
            html_escape(&sec.name),
            sec.kind.as_str(),
            if sec.gated { "gated" } else { "informational" },
        );
        if let Some((from, to)) = &sec.leader_shift {
            let _ = writeln!(
                h.0,
                "<p class=\"sub\">leader moved: <strong>{}</strong> &#8594; <strong>{}</strong></p>",
                html_escape(from),
                html_escape(to),
            );
        }
        h.push("<table>\n<thead><tr><th>component</th><th>baseline</th><th>current</th>");
        let _ = writeln!(
            h.0,
            "<th>&#916; ({unit})</th><th>status</th></tr></thead>\n<tbody>"
        );
        for c in &sec.components {
            let _ = writeln!(
                h.0,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{:+.2}</td><td class=\"{}\">{}</td></tr>",
                html_escape(&c.name),
                html_escape(&fmt_f64(c.baseline)),
                html_escape(&fmt_f64(c.current)),
                c.delta,
                if c.regressed { "flag" } else { "ok" },
                if c.regressed { "REGRESSED" } else { "ok" },
            );
        }
        h.push("</tbody></table>\n");
    }
}

/// The accessibility fallback: every trajectory number in one plain
/// table, no color or geometry required to read it. When scenario
/// provenance is known, two leading rows carry each column's spec
/// content hash and engine fingerprint so any number in the table can
/// be traced back to (and replayed from) the run that produced it.
fn data_table(
    h: &mut Html,
    trajectory: &[(String, BenchReport)],
    provenance: &[(String, String, String)],
) {
    if trajectory.is_empty() {
        return;
    }
    let mut names: Vec<&String> = trajectory
        .iter()
        .flat_map(|(_, r)| r.values.keys())
        .collect();
    names.sort();
    names.dedup();
    h.push("<details>\n<summary>Full data table</summary>\n<table>\n<thead><tr><th>metric</th>");
    for (label, _) in trajectory {
        let _ = write!(h.0, "<th>{}</th>", html_escape(label));
    }
    h.push("</tr></thead>\n<tbody>\n");
    if !provenance.is_empty() {
        for (row_name, pick) in [("spec hash", 1usize), ("engine fingerprint", 2usize)] {
            let _ = write!(h.0, "<tr><td>{row_name}</td>");
            for (label, _) in trajectory {
                match provenance.iter().find(|(l, _, _)| l == label) {
                    Some(p) => {
                        let v = if pick == 1 { &p.1 } else { &p.2 };
                        let _ = write!(h.0, "<td><code>{}</code></td>", html_escape(v));
                    }
                    None => h.push("<td>&#8212;</td>"),
                }
            }
            h.push("</tr>\n");
        }
    }
    for name in names {
        let _ = write!(h.0, "<tr><td>{}</td>", html_escape(name));
        for (_, r) in trajectory {
            match r.get(name) {
                Some(v) => {
                    let _ = write!(h.0, "<td>{}</td>", html_escape(&fmt_f64(v)));
                }
                None => h.push("<td>&#8212;</td>"),
            }
        }
        h.push("</tr>\n");
    }
    h.push("</tbody></table>\n</details>\n");
}

/// Elements with no closing tag.
const VOID_ELEMENTS: [&str; 14] = [
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Structural well-formedness check for the rendered document: every
/// `<` starts a comment, doctype, or tag; every open tag is closed in
/// order (void and self-closing elements excepted). Quoted attribute
/// values may contain anything. Used by the renderer's debug assert
/// and by the CI artifact smoke test.
pub fn validate_html(html: &str) -> Result<(), String> {
    let b = html.as_bytes();
    let mut stack: Vec<String> = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] != b'<' {
            i += 1;
            continue;
        }
        if html[i..].starts_with("<!--") {
            match html[i..].find("-->") {
                Some(end) => i += end + 3,
                None => return Err("unterminated comment".to_owned()),
            }
            continue;
        }
        if b.get(i + 1) == Some(&b'!') {
            match html[i..].find('>') {
                Some(end) => i += end + 1,
                None => return Err("unterminated doctype".to_owned()),
            }
            continue;
        }
        let closing = b.get(i + 1) == Some(&b'/');
        let name_start = if closing { i + 2 } else { i + 1 };
        if name_start >= b.len() || !b[name_start].is_ascii_alphabetic() {
            return Err(format!("stray '<' at byte {i}"));
        }
        let mut j = name_start;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'-') {
            j += 1;
        }
        let name = html[name_start..j].to_ascii_lowercase();
        // Scan to the tag's '>' honoring quoted attribute values.
        let mut quote: Option<u8> = None;
        let self_closed;
        loop {
            if j >= b.len() {
                return Err(format!("unterminated tag <{name}>"));
            }
            match (quote, b[j]) {
                (Some(q), c) if c == q => quote = None,
                (Some(_), _) => {}
                (None, b'"') | (None, b'\'') => quote = Some(b[j]),
                (None, b'>') => {
                    self_closed = j > 0 && b[j - 1] == b'/';
                    j += 1;
                    break;
                }
                (None, b'<') => return Err(format!("raw '<' inside tag <{name}>")),
                (None, _) => {}
            }
            j += 1;
        }
        if closing {
            match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(format!("</{name}> closes <{open}> (byte {i})"));
                }
                None => return Err(format!("</{name}> with nothing open (byte {i})")),
            }
        } else if !self_closed && !VOID_ELEMENTS.contains(&name.as_str()) {
            stack.push(name);
        }
        i = j;
    }
    if let Some(open) = stack.pop() {
        return Err(format!("<{open}> never closed"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observatory::{DiffConfig, Section};
    use std::collections::BTreeMap;

    fn report(label: &str, pairs: &[(&str, f64)]) -> BenchReport {
        let mut r = BenchReport::new(label);
        for (k, v) in pairs {
            r.set(k, *v);
        }
        r
    }

    fn shares(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn fixture() -> (
        Vec<(String, BenchReport)>,
        ObservatoryReport,
        ObservatoryReport,
    ) {
        let trajectory = vec![
            (
                "pr3".to_owned(),
                report("pr3", &[("one_way_1hop_ns", 162.0), ("fig6_wire_ns", 40.0)]),
            ),
            (
                "pr4".to_owned(),
                report("pr4", &[("one_way_1hop_ns", 162.0), ("fig6_wire_ns", 40.0)]),
            ),
            (
                "pr7".to_owned(),
                report(
                    "pr7",
                    &[("one_way_1hop_ns", 162.0), ("one_way_diameter_ns", 822.0)],
                ),
            ),
        ];
        let mut base = ObservatoryReport::new("base");
        base.metrics.set("one_way_1hop_ns", 162.0);
        base.set_section(
            SEC_BLAME,
            Section::shares(shares(&[("wire", 50.0), ("delivery", 50.0)])),
        );
        let mut cur = base.clone();
        cur.set_section(
            SEC_BLAME,
            Section::shares(shares(&[("wire", 70.0), ("delivery", 30.0)])),
        );
        (trajectory, base, cur)
    }

    #[test]
    fn rendering_is_byte_deterministic() {
        let (trajectory, base, cur) = fixture();
        let diff = cur.diff(&base, DiffConfig::default()).expect("comparable");
        let provenance = vec![(
            "pr4".to_owned(),
            "8f00b204e9800998".to_owned(),
            "458e528e99e105c2".to_owned(),
        )];
        let input = DashboardInput {
            title: "anton perf observatory",
            trajectory: &trajectory,
            current: Some(&cur),
            diff: Some(&diff),
            provenance: &provenance,
        };
        let a = render_dashboard(&input);
        let b = render_dashboard(&input);
        assert_eq!(a, b);
        assert!(a.contains("Critical-path blame"));
        assert!(a.contains("REGRESSED"));
    }

    #[test]
    fn rendered_document_is_balanced_and_offline() {
        let (trajectory, base, cur) = fixture();
        let diff = cur.diff(&base, DiffConfig::default()).expect("comparable");
        let provenance = vec![(
            "pr3".to_owned(),
            "0011223344556677".to_owned(),
            "8899aabbccddeeff".to_owned(),
        )];
        let html = render_dashboard(&DashboardInput {
            title: "anton perf observatory",
            trajectory: &trajectory,
            current: Some(&cur),
            diff: Some(&diff),
            provenance: &provenance,
        });
        validate_html(&html).expect("balanced");
        // Self-contained: no external fetches of any kind.
        assert!(!html.contains("http://"));
        assert!(!html.contains("https://"));
        assert!(!html.contains("<script"));
    }

    #[test]
    fn metric_names_are_escaped() {
        let trajectory = vec![
            ("a".to_owned(), report("a", &[("evil<script>&\"name", 1.0)])),
            ("b".to_owned(), report("b", &[("evil<script>&\"name", 2.0)])),
        ];
        let html = render_dashboard(&DashboardInput {
            title: "t<&>",
            trajectory: &trajectory,
            current: None,
            diff: None,
            provenance: &[],
        });
        validate_html(&html).expect("balanced despite hostile names");
        assert!(html.contains("evil&lt;script&gt;&amp;&quot;name"));
        assert!(!html.contains("evil<script"));
    }

    #[test]
    fn empty_trajectory_renders_a_valid_shell() {
        let html = render_dashboard(&DashboardInput {
            title: "empty",
            trajectory: &[],
            current: None,
            diff: None,
            provenance: &[],
        });
        validate_html(&html).expect("balanced");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_html("<div><span></div>").is_err());
        assert!(validate_html("<div>").is_err());
        assert!(validate_html("</div>").is_err());
        assert!(validate_html("a < b").is_err());
        assert!(validate_html("<div>ok</div>").is_ok());
        assert!(validate_html("<br><img src=\"x\"><div a=\"5>3\"></div>").is_ok());
        assert!(validate_html("<svg><rect x=\"0\"/></svg>").is_ok());
    }

    #[test]
    fn provenance_rows_render_per_column_with_fallback_dashes() {
        let (trajectory, _, _) = fixture();
        let provenance = vec![(
            "pr4".to_owned(),
            "deadbeefdeadbeef".to_owned(),
            "458e528e99e105c2".to_owned(),
        )];
        let html = render_dashboard(&DashboardInput {
            title: "prov",
            trajectory: &trajectory,
            current: None,
            diff: None,
            provenance: &provenance,
        });
        validate_html(&html).expect("balanced");
        assert!(html.contains("spec hash"));
        assert!(html.contains("<code>deadbeefdeadbeef</code>"));
        assert!(html.contains("<code>458e528e99e105c2</code>"));
        // Columns without provenance (pr3, pr7) fall back to em-dashes:
        // two provenance rows x two unknown columns.
        let dashes = html.matches("<td>&#8212;</td>").count();
        assert!(dashes >= 4, "expected fallback dashes, got {dashes}");

        // No provenance, no extra rows.
        let bare = render_dashboard(&DashboardInput {
            title: "prov",
            trajectory: &trajectory,
            current: None,
            diff: None,
            provenance: &[],
        });
        assert!(!bare.contains("spec hash"));
    }

    #[test]
    fn categorical_slots_follow_canonical_order_and_fold_overflow() {
        let colors = section_colors(
            [
                "wire",
                "delivery",
                "port-wait",
                "send-setup",
                "link-wait",
                "transit-ring",
                "send-ring",
                "sync-arrive",
                "program",
                "residual",
            ]
            .into_iter(),
        );
        let of = |n: &str| colors.iter().find(|(k, _)| *k == n).unwrap().1;
        // Canonical order, not insertion or value order.
        assert_eq!(of("send-setup"), CATEGORICAL[0]);
        assert_eq!(of("port-wait"), CATEGORICAL[1]);
        assert_eq!(of("wire"), CATEGORICAL[5]);
        // Components past the eighth slot fold to the neutral gray.
        assert_eq!(of("program"), OTHER);
        assert_eq!(of("residual"), OTHER);
    }
}
