//! Fixed-point force/charge codec.
//!
//! Anton's accumulation memories sum packet payloads "in 4-byte
//! quantities" (§III.A). Summing in fixed point makes the result exactly
//! independent of arrival order — the machine is deterministic even
//! though the network is not ordered. The Anton-mapped MD engine encodes
//! every force and charge contribution to `i32` before it enters an
//! accumulation memory and decodes the final sums.

/// Scale for forces (kcal/mol/Å per LSB): 2⁻¹⁶ resolution, ±32768 range —
/// generous for MD forces, which rarely exceed a few hundred kcal/mol/Å.
pub const FORCE_SCALE: f64 = 65536.0;

/// Scale for gridded charge density (e/Å³ per LSB).
pub const CHARGE_SCALE: f64 = 1_048_576.0; // 2^20

/// Scale for potentials (kcal/mol/e per LSB).
pub const POTENTIAL_SCALE: f64 = 65536.0;

/// Encode a real value to fixed point with the given scale, saturating
/// at the i32 range (saturation would signal a blown-up simulation; the
/// decoder can't detect it, so debug builds panic instead).
#[inline]
pub fn encode(value: f64, scale: f64) -> i32 {
    let scaled = value * scale;
    debug_assert!(
        scaled.abs() < i32::MAX as f64,
        "fixed-point overflow: {value} at scale {scale}"
    );
    if scaled >= i32::MAX as f64 {
        i32::MAX
    } else if scaled <= i32::MIN as f64 {
        i32::MIN
    } else {
        scaled.round() as i32
    }
}

/// Decode fixed point back to a real value.
#[inline]
pub fn decode(value: i32, scale: f64) -> f64 {
    value as f64 / scale
}

/// Encode a force triple.
#[inline]
pub fn encode_force(f: crate::vec3::Vec3) -> [i32; 3] {
    [
        encode(f.x, FORCE_SCALE),
        encode(f.y, FORCE_SCALE),
        encode(f.z, FORCE_SCALE),
    ]
}

/// Decode a force triple.
#[inline]
pub fn decode_force(v: [i32; 3]) -> crate::vec3::Vec3 {
    crate::vec3::Vec3::new(
        decode(v[0], FORCE_SCALE),
        decode(v[1], FORCE_SCALE),
        decode(v[2], FORCE_SCALE),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec3::Vec3;
    use proptest::prelude::*;

    #[test]
    fn round_trip_within_half_lsb() {
        for v in [0.0, 1.0, -273.15, 0.123456, 3000.0] {
            let rt = decode(encode(v, FORCE_SCALE), FORCE_SCALE);
            assert!((rt - v).abs() <= 0.5 / FORCE_SCALE, "{v} → {rt}");
        }
    }

    #[test]
    fn force_triples_round_trip() {
        let f = Vec3::new(12.5, -0.03125, 981.25);
        let rt = decode_force(encode_force(f));
        assert!((rt - f).norm() < 1.0 / FORCE_SCALE);
    }

    proptest! {
        /// Fixed-point sums are exactly order-independent — the property
        /// Anton's determinism rests on.
        #[test]
        fn summation_is_order_independent(values in prop::collection::vec(-100.0f64..100.0, 2..50)) {
            let encoded: Vec<i32> = values.iter().map(|&v| encode(v, FORCE_SCALE)).collect();
            let forward: i32 = encoded.iter().fold(0i32, |a, &b| a.wrapping_add(b));
            let backward: i32 = encoded.iter().rev().fold(0i32, |a, &b| a.wrapping_add(b));
            prop_assert_eq!(forward, backward);
            // And close to the float sum.
            let float_sum: f64 = values.iter().sum();
            let fixed_sum = decode(forward, FORCE_SCALE);
            prop_assert!((fixed_sum - float_sum).abs() < values.len() as f64 / FORCE_SCALE);
        }

        /// Round trip error bounded by half an LSB everywhere in range.
        #[test]
        fn round_trip_error_bounded(v in -30000.0f64..30000.0) {
            let rt = decode(encode(v, FORCE_SCALE), FORCE_SCALE);
            prop_assert!((rt - v).abs() <= 0.5 / FORCE_SCALE + 1e-12);
        }
    }
}
