//! Chemical systems: atoms, bonded topology, and synthetic system
//! generation.
//!
//! The paper benchmarks DHFR (dihydrofolate reductase, 23,558 atoms,
//! solvated in water) and a 17,758-particle system. We have no access to
//! the original structures, so the generator builds **synthetic solvated
//! protein-like systems** with matching statistics: a protein-like core
//! of bonded chains (bonds, angles, dihedrals) surrounded by 3-site
//! waters at liquid density. The communication behaviour on Anton depends
//! on atom counts and densities per home box and on bond-term locality,
//! which these systems match (DESIGN.md, substitution table).

use crate::pbc::PeriodicBox;
use crate::units::thermal_sigma;
use crate::vec3::Vec3;
use anton_des::Rng;

/// One atom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Position, Å (wrapped into the box).
    pub pos: Vec3,
    /// Velocity, Å/fs.
    pub vel: Vec3,
    /// amu.
    pub mass: f64,
    /// Elementary charges.
    pub charge: f64,
    /// Lennard-Jones σ, Å.
    pub lj_sigma: f64,
    /// Lennard-Jones ε, kcal/mol.
    pub lj_epsilon: f64,
}

/// Harmonic bond: E = k (r − r0)².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bond {
    /// First atom.
    pub i: usize,
    /// Second atom.
    pub j: usize,
    /// Rest length, Å.
    pub r0: f64,
    /// Force constant, kcal/mol/Å².
    pub k: f64,
}

/// Harmonic angle: E = k (θ − θ0)².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Angle {
    /// First end atom.
    pub i: usize,
    /// Vertex atom.
    pub j: usize,
    /// Second end atom.
    pub k_atom: usize,
    /// Rest angle, radians.
    pub theta0: f64,
    /// Force constant, kcal/mol/rad².
    pub k: f64,
}

/// Periodic dihedral: E = k (1 + cos(n φ − φ0)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dihedral {
    /// First atom.
    pub i: usize,
    /// Second atom (axis start).
    pub j: usize,
    /// Third atom (axis end).
    pub k_atom: usize,
    /// Fourth atom.
    pub l: usize,
    /// Multiplicity.
    pub n: u8,
    /// Barrier height, kcal/mol.
    pub k: f64,
    /// Phase, radians.
    pub phi0: f64,
}

/// A complete simulated system.
#[derive(Debug, Clone)]
pub struct ChemicalSystem {
    /// The periodic box.
    pub pbox: PeriodicBox,
    /// All atoms.
    pub atoms: Vec<Atom>,
    /// Harmonic bonds.
    pub bonds: Vec<Bond>,
    /// Harmonic angles.
    pub angles: Vec<Angle>,
    /// Periodic dihedrals.
    pub dihedrals: Vec<Dihedral>,
    /// Nonbonded exclusions (1-2 and 1-3 neighbors), stored for each atom
    /// as a sorted list of excluded partners with higher index.
    pub exclusions: Vec<Vec<usize>>,
}

impl ChemicalSystem {
    /// Total charge (e). Generated systems are neutral.
    pub fn total_charge(&self) -> f64 {
        self.atoms.iter().map(|a| a.charge).sum()
    }

    /// Total mass (amu).
    pub fn total_mass(&self) -> f64 {
        self.atoms.iter().map(|a| a.mass).sum()
    }

    /// Total momentum (amu·Å/fs).
    pub fn total_momentum(&self) -> Vec3 {
        self.atoms
            .iter()
            .fold(Vec3::ZERO, |acc, a| acc + a.vel * a.mass)
    }

    /// Whether the unordered pair (i, j) is excluded from nonbonded
    /// interactions.
    pub fn is_excluded(&self, i: usize, j: usize) -> bool {
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        self.exclusions[lo].binary_search(&hi).is_ok()
    }

    /// Build the exclusion lists from the bonded topology: direct bond
    /// partners (1-2) and angle ends (1-3).
    pub fn rebuild_exclusions(&mut self) {
        let n = self.atoms.len();
        let mut ex: Vec<Vec<usize>> = vec![Vec::new(); n];
        let add = |ex: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            ex[lo].push(hi);
        };
        for b in &self.bonds {
            add(&mut ex, b.i, b.j);
        }
        for a in &self.angles {
            add(&mut ex, a.i, a.k_atom);
        }
        for list in &mut ex {
            list.sort_unstable();
            list.dedup();
        }
        self.exclusions = ex;
    }

    /// Assign Maxwell–Boltzmann velocities at `temp` K, then remove net
    /// momentum so the box doesn't drift.
    pub fn thermalize(&mut self, temp: f64, rng: &mut Rng) {
        for a in &mut self.atoms {
            let s = thermal_sigma(a.mass, temp);
            a.vel = Vec3::new(s * rng.normal(), s * rng.normal(), s * rng.normal());
        }
        let p = self.total_momentum();
        let m = self.total_mass();
        for a in &mut self.atoms {
            a.vel -= p / m;
        }
    }
}

/// Water geometry constants (flexible 3-site, SPC-like).
const WATER_OH: f64 = 1.0; // Å
const WATER_ANGLE: f64 = 1.910611; // 109.47°, radians
const Q_OXYGEN: f64 = -0.82;
const Q_HYDROGEN: f64 = 0.41;

/// Synthetic-system builder.
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    /// Edge of the cubic box, Å.
    pub box_edge: f64,
    /// Number of protein-like chain atoms (0 for pure water).
    pub protein_atoms: usize,
    /// Total target atom count (protein + water sites; rounded to whole
    /// waters).
    pub total_atoms: usize,
    /// Initial temperature, K.
    pub temperature: f64,
    /// Generator seed (same seed ⇒ identical system).
    pub seed: u64,
}

impl SystemBuilder {
    /// The paper's flagship benchmark scale: DHFR-like, 23,558 atoms in a
    /// 62.23 Å box (simulation parameters per \[40\]).
    pub fn dhfr_like() -> SystemBuilder {
        SystemBuilder {
            box_edge: 62.23,
            protein_atoms: 2_500,
            total_atoms: 23_558,
            temperature: 300.0,
            seed: 2010,
        }
    }

    /// The 17,758-particle system of Figure 12.
    pub fn migration_benchmark() -> SystemBuilder {
        SystemBuilder {
            box_edge: 56.6,
            protein_atoms: 1_800,
            total_atoms: 17_758,
            temperature: 300.0,
            seed: 1912,
        }
    }

    /// A small fast system for tests.
    pub fn tiny(total_atoms: usize, box_edge: f64, seed: u64) -> SystemBuilder {
        SystemBuilder {
            box_edge,
            protein_atoms: 0,
            total_atoms,
            temperature: 300.0,
            seed,
        }
    }

    /// Generate the system.
    pub fn build(&self) -> ChemicalSystem {
        assert!(self.protein_atoms <= self.total_atoms);
        let mut rng = Rng::seed_from(self.seed);
        let pbox = PeriodicBox::cubic(self.box_edge);
        let mut sys = ChemicalSystem {
            pbox,
            atoms: Vec::with_capacity(self.total_atoms),
            bonds: Vec::new(),
            angles: Vec::new(),
            dihedrals: Vec::new(),
            exclusions: Vec::new(),
        };

        if self.protein_atoms > 0 {
            build_protein_chains(&mut sys, self.protein_atoms, &mut rng);
        }

        // Fill the remainder with whole waters on a jittered lattice.
        let remaining = self.total_atoms.saturating_sub(sys.atoms.len());
        let n_waters = remaining / 3;
        build_waters(&mut sys, n_waters, &mut rng);

        // Water sites come in threes; top up to the exact atom count with
        // neutral LJ particles (solvated "ions" without charge).
        while sys.atoms.len() < self.total_atoms {
            let pos = Vec3::new(
                rng.uniform(0.0, self.box_edge),
                rng.uniform(0.0, self.box_edge),
                rng.uniform(0.0, self.box_edge),
            );
            sys.atoms.push(Atom {
                pos,
                vel: Vec3::ZERO,
                mass: 22.99,
                charge: 0.0,
                lj_sigma: 2.6,
                lj_epsilon: 0.05,
            });
        }

        sys.rebuild_exclusions();
        sys.thermalize(self.temperature, &mut rng);
        debug_assert!(sys.total_charge().abs() < 1e-9);
        sys
    }
}

/// Protein-like chains: united-atom "residue" beads on a jittered
/// lattice filling a central globule at liquid density (~0.105 atoms/Å³
/// — a real solvated protein matches the water around it, which keeps
/// home-box load balanced, something the Anton timing model is sensitive
/// to). Consecutive beads along a boustrophedon (snake) path are bonded,
/// giving full bond/angle/dihedral topology with rest geometry equal to
/// the lattice geometry. Charges alternate in neutral quadruples.
fn build_protein_chains(sys: &mut ChemicalSystem, n_atoms: usize, rng: &mut Rng) {
    let center = sys.pbox.lengths * 0.5;
    let density: f64 = 0.105;
    let spacing = (1.0 / density).powf(1.0 / 3.0); // ≈ 2.12 Å
    let radius = (n_atoms as f64 * 3.0 / (4.0 * std::f64::consts::PI * density))
        .powf(1.0 / 3.0)
        .min(sys.pbox.lengths.x * 0.4);
    let chain_len = 64usize;

    // Snake-order lattice sites inside the globule: consecutive kept
    // sites are usually lattice neighbors; larger jumps break the chain.
    let n_side = (2.0 * radius / spacing).ceil() as i64 + 1;
    let mut sites = Vec::with_capacity(n_atoms);
    'fill: for iz in 0..n_side {
        let ys: Vec<i64> = if iz % 2 == 0 {
            (0..n_side).collect()
        } else {
            (0..n_side).rev().collect()
        };
        for (yi, &iy) in ys.iter().enumerate() {
            let xs: Vec<i64> = if (iz + yi as i64) % 2 == 0 {
                (0..n_side).collect()
            } else {
                (0..n_side).rev().collect()
            };
            for &ix in &xs {
                let p = Vec3::new(
                    (ix as f64 - n_side as f64 / 2.0) * spacing,
                    (iy as f64 - n_side as f64 / 2.0) * spacing,
                    (iz as f64 - n_side as f64 / 2.0) * spacing,
                );
                if p.norm() <= radius {
                    let jitter = Vec3::new(
                        rng.uniform(-0.1, 0.1),
                        rng.uniform(-0.1, 0.1),
                        rng.uniform(-0.1, 0.1),
                    );
                    sites.push(center + p + jitter);
                    if sites.len() == n_atoms {
                        break 'fill;
                    }
                }
            }
        }
    }
    assert_eq!(sites.len(), n_atoms, "globule too small for protein atoms");

    let mut chain_start = sys.atoms.len();
    let mut chain_pos = 0usize;
    let break_dist = 1.6 * spacing;
    for (k, &pos) in sites.iter().enumerate() {
        let idx = sys.atoms.len();
        let q = match chain_pos % 4 {
            0 => 0.25,
            1 => -0.25,
            2 => -0.25,
            _ => 0.25,
        };
        sys.atoms.push(Atom {
            pos: sys.pbox.wrap(pos),
            vel: Vec3::ZERO,
            mass: 12.011,
            charge: q,
            lj_sigma: 3.4,
            lj_epsilon: 0.1,
        });
        // Start a new chain at length limits or spatial discontinuities.
        let broke = chain_pos >= chain_len || (k > 0 && (pos - sites[k - 1]).norm() > break_dist);
        if broke || k == 0 {
            // Neutralize the finished chain's charge remainder.
            if idx > chain_start {
                let rem: f64 = sys.atoms[chain_start..idx].iter().map(|a| a.charge).sum();
                if rem.abs() > 1e-12 {
                    sys.atoms[idx - 1].charge -= rem;
                }
            }
            chain_start = idx;
            chain_pos = 0;
            // Re-assign the first bead's charge of the new chain.
            sys.atoms[idx].charge = 0.25;
        }
        if chain_pos >= 1 {
            let r0 = (sites[k] - sites[k - 1]).norm();
            sys.bonds.push(Bond {
                i: idx - 1,
                j: idx,
                r0,
                k: 300.0,
            });
        }
        if chain_pos >= 2 {
            // Rest angle = the actual lattice angle at generation time.
            let v1 = sites[k - 2] - sites[k - 1];
            let v2 = sites[k] - sites[k - 1];
            let theta0 = (v1.dot(v2) / (v1.norm() * v2.norm()))
                .clamp(-1.0, 1.0)
                .acos();
            sys.angles.push(Angle {
                i: idx - 2,
                j: idx - 1,
                k_atom: idx,
                theta0,
                k: 60.0,
            });
        }
        if chain_pos >= 3 {
            sys.dihedrals.push(Dihedral {
                i: idx - 3,
                j: idx - 2,
                k_atom: idx - 1,
                l: idx,
                n: 3,
                k: 0.2,
                phi0: 0.0,
            });
        }
        chain_pos += 1;
    }
    // Neutralize the final chain.
    let end = sys.atoms.len();
    if end > chain_start {
        let rem: f64 = sys.atoms[chain_start..end].iter().map(|a| a.charge).sum();
        if rem.abs() > 1e-12 {
            sys.atoms[end - 1].charge -= rem;
        }
    }
}

/// Waters on a jittered cubic lattice, skipping sites that collide with
/// already-placed atoms.
fn build_waters(sys: &mut ChemicalSystem, n_waters: usize, rng: &mut Rng) {
    if n_waters == 0 {
        return;
    }
    let edge = sys.pbox.lengths.x;
    // Lattice fine enough to hold n_waters with some sites rejected.
    let mut cells = 1usize;
    while cells * cells * cells < n_waters * 2 {
        cells += 1;
    }
    let spacing = edge / cells as f64;
    let existing: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
    let min_dist = 2.4; // Å clearance from protein atoms
                        // Collect every admissible site first, then take an evenly strided
                        // subset — filling in lattice order would leave the top of the box
                        // empty and wreck the home-box load balance the timing model needs.
    let mut candidates = Vec::new();
    for cz in 0..cells {
        for cy in 0..cells {
            for cx in 0..cells {
                let jitter = Vec3::new(
                    rng.uniform(-0.12, 0.12),
                    rng.uniform(-0.12, 0.12),
                    rng.uniform(-0.12, 0.12),
                ) * spacing;
                let o_pos = Vec3::new(
                    (cx as f64 + 0.5) * spacing,
                    (cy as f64 + 0.5) * spacing,
                    (cz as f64 + 0.5) * spacing,
                ) + jitter;
                // Reject sites inside the protein globule.
                if existing
                    .iter()
                    .any(|&p| sys.pbox.distance(p, o_pos) < min_dist)
                {
                    continue;
                }
                candidates.push(o_pos);
            }
        }
    }
    assert!(
        candidates.len() >= n_waters,
        "could not place all waters: {}/{n_waters} sites (box too small?)",
        candidates.len()
    );
    for i in 0..n_waters {
        let idx = i * candidates.len() / n_waters;
        add_water(sys, candidates[idx], rng);
    }
}

/// Append one flexible 3-site water at `o_pos` with random orientation.
fn add_water(sys: &mut ChemicalSystem, o_pos: Vec3, rng: &mut Rng) {
    let o = sys.atoms.len();
    // Random orthonormal frame.
    let mut u = Vec3::new(rng.normal(), rng.normal(), rng.normal());
    while u.norm() < 1e-6 {
        u = Vec3::new(rng.normal(), rng.normal(), rng.normal());
    }
    let u = u.normalized();
    let mut v = u.cross(Vec3::new(0.0, 0.0, 1.0));
    if v.norm() < 1e-6 {
        v = u.cross(Vec3::new(0.0, 1.0, 0.0));
    }
    let v = v.normalized();
    let half = WATER_ANGLE / 2.0;
    let h1 = o_pos + (u * half.cos() + v * half.sin()) * WATER_OH;
    let h2 = o_pos + (u * half.cos() - v * half.sin()) * WATER_OH;
    sys.atoms.push(Atom {
        pos: sys.pbox.wrap(o_pos),
        vel: Vec3::ZERO,
        mass: 15.999,
        charge: Q_OXYGEN,
        lj_sigma: 3.166,
        lj_epsilon: 0.155,
    });
    for h in [h1, h2] {
        sys.atoms.push(Atom {
            pos: sys.pbox.wrap(h),
            vel: Vec3::ZERO,
            mass: 1.008,
            charge: Q_HYDROGEN,
            lj_sigma: 1.0,
            lj_epsilon: 0.0,
        });
    }
    sys.bonds.push(Bond {
        i: o,
        j: o + 1,
        r0: WATER_OH,
        k: 450.0,
    });
    sys.bonds.push(Bond {
        i: o,
        j: o + 2,
        r0: WATER_OH,
        k: 450.0,
    });
    sys.angles.push(Angle {
        i: o + 1,
        j: o,
        k_atom: o + 2,
        theta0: WATER_ANGLE,
        k: 55.0,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_water_box_is_neutral_and_sized() {
        let sys = SystemBuilder::tiny(300, 22.0, 1).build();
        assert_eq!(sys.atoms.len(), 300);
        assert!(sys.total_charge().abs() < 1e-9);
        assert_eq!(sys.bonds.len(), 200); // 100 waters × 2 bonds
        assert_eq!(sys.angles.len(), 100);
        // Every position inside the box.
        for a in &sys.atoms {
            for ax in 0..3 {
                let p = a.pos.get(ax);
                assert!((0.0..22.0).contains(&p), "{p}");
            }
        }
    }

    #[test]
    fn exclusions_cover_bonds_and_angles() {
        let sys = SystemBuilder::tiny(30, 12.0, 3).build();
        for b in &sys.bonds {
            assert!(sys.is_excluded(b.i, b.j));
            assert!(sys.is_excluded(b.j, b.i));
        }
        for a in &sys.angles {
            assert!(sys.is_excluded(a.i, a.k_atom));
        }
        // H of one water is not excluded from O of another.
        assert!(!sys.is_excluded(0, 3));
    }

    #[test]
    fn thermalization_hits_target_temperature_and_zero_momentum() {
        let mut sys = SystemBuilder::tiny(3000, 45.0, 7).build();
        let mut rng = Rng::seed_from(99);
        sys.thermalize(300.0, &mut rng);
        assert!(sys.total_momentum().norm() < 1e-12);
        let ke: f64 = sys
            .atoms
            .iter()
            .map(|a| crate::units::kinetic_energy(a.mass, a.vel.norm_sq()))
            .sum();
        let t = crate::units::temperature(ke, sys.atoms.len());
        assert!((t - 300.0).abs() < 15.0, "t={t}");
    }

    #[test]
    fn protein_chains_have_full_topology_and_neutrality() {
        let b = SystemBuilder {
            box_edge: 40.0,
            protein_atoms: 200,
            total_atoms: 1000,
            temperature: 300.0,
            seed: 5,
        };
        let sys = b.build();
        assert!(sys.total_charge().abs() < 1e-9);
        assert!(!sys.dihedrals.is_empty());
        assert_eq!(sys.atoms.len(), 1000);
        // (1000 − 200)/3 = 266 waters × 2 bonds (the ÷3 remainder becomes
        // two neutral top-up ions with no bonds), plus protein chain
        // bonds: one per bead minus one per chain (snake path breaks at
        // globule-boundary jumps, so the chain count varies a little).
        let chain_bonds = sys.bonds.len() - 2 * 266;
        assert!(
            (140..200).contains(&chain_bonds),
            "chain bonds = {chain_bonds}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SystemBuilder::tiny(150, 18.0, 42).build();
        let b = SystemBuilder::tiny(150, 18.0, 42).build();
        for (x, y) in a.atoms.iter().zip(&b.atoms) {
            assert_eq!(x.pos, y.pos);
            assert_eq!(x.vel, y.vel);
        }
    }

    #[test]
    #[ignore = "slow: full-size generation (run with --ignored)"]
    fn dhfr_like_builds_at_full_size() {
        let sys = SystemBuilder::dhfr_like().build();
        assert_eq!(sys.atoms.len(), 23_558);
        assert!(sys.total_charge().abs() < 1e-9);
    }
}
