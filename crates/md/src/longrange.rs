//! FFT-based long-range electrostatics (paper §II: "computed efficiently
//! … by taking the fast Fourier transform of the charge distribution on
//! a regular grid, multiplying by an appropriate function in Fourier
//! space, and then performing an inverse FFT").
//!
//! Gaussian-split-Ewald-style decomposition \[39\]:
//!
//! - real space (in `pair.rs`): `q_i q_j erfc(r/(√2σ))/r` inside the
//!   cutoff;
//! - reciprocal space (here): spread charges with Gaussians of width
//!   σ_s, FFT, multiply by `4π/k² · exp(−(σ² − 2σ_s²)k²/2)`, inverse
//!   FFT, interpolate potentials/forces with the same Gaussians;
//! - self-energy `Σ q_i²/(√(2π)σ)` subtracted;
//! - excluded (1-2, 1-3) pairs: the reciprocal part implicitly includes
//!   them, so `q_i q_j erf(r/(√2σ))/r` is subtracted explicitly.

use crate::grid::{
    interpolate_forces, interpolate_potential, spread_charges, ScalarGrid, SpreadParams,
};
use crate::pair::erf;
use crate::system::ChemicalSystem;
use crate::units::COULOMB;
use crate::vec3::Vec3;
use anton_fft::{fft3d, Complex, Direction};

/// Long-range solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct LongRangeParams {
    /// FFT grid points per axis.
    pub grid: [usize; 3],
    /// Ewald splitting width σ (must match the real-space part).
    pub sigma: f64,
    /// Spreading width σ_s ≤ σ/√2.
    pub spread: SpreadParams,
}

impl LongRangeParams {
    /// Default: σ_s = σ/√2 (bare 4π/k² kernel).
    pub fn new(grid: [usize; 3], sigma: f64) -> LongRangeParams {
        LongRangeParams {
            grid,
            sigma,
            spread: SpreadParams::for_ewald_sigma(sigma),
        }
    }
}

/// Result of a long-range evaluation.
#[derive(Debug, Clone)]
pub struct LongRangeResult {
    /// Reciprocal-space energy minus self-energy minus excluded
    /// corrections (kcal/mol) — the quantity to add to the real-space sum.
    pub energy: f64,
    /// The potential grid (kcal/mol/e per grid point), kept for the
    /// Anton-mapped engine which ships it to HTIS units for force
    /// interpolation.
    pub potential: ScalarGrid,
}

/// Evaluate the long-range contribution and accumulate forces.
pub fn long_range_forces(
    sys: &ChemicalSystem,
    positions: &[Vec3],
    params: &LongRangeParams,
    forces: &mut [Vec3],
) -> LongRangeResult {
    let charges: Vec<f64> = sys.atoms.iter().map(|a| a.charge).collect();
    // 1. Charge spreading (HTIS work on Anton).
    let mut rho = ScalarGrid::zeros(params.grid, sys.pbox);
    spread_charges(&mut rho, positions, &charges, params.spread);

    // 2–4. FFT → kernel → inverse FFT (flexible-subsystem work on Anton).
    let potential_grid = convolve_poisson(&rho, params);

    // 5. Energy: ½ Σ q_i φ(r_i), φ interpolated with the same Gaussian.
    let phi = interpolate_potential(&potential_grid, positions, params.spread);
    let mut energy: f64 =
        0.5 * COULOMB * charges.iter().zip(&phi).map(|(&q, &p)| q * p).sum::<f64>();

    // 6. Force interpolation (HTIS work on Anton).
    interpolate_forces(
        &potential_grid,
        positions,
        &charges,
        params.spread,
        COULOMB,
        forces,
    );

    // 7. Self-energy.
    let q_sq: f64 = charges.iter().map(|&q| q * q).sum();
    energy -= COULOMB * q_sq / ((2.0 * std::f64::consts::PI).sqrt() * params.sigma);

    // 8. Excluded-pair corrections: subtract erf(r/(√2σ))/r terms the
    //    reciprocal sum implicitly added for bonded neighbors.
    let a = 1.0 / (std::f64::consts::SQRT_2 * params.sigma);
    for (i, partners) in sys.exclusions.iter().enumerate() {
        for &j in partners {
            let qq = COULOMB * charges[i] * charges[j];
            if qq == 0.0 {
                continue;
            }
            let d = sys.pbox.min_image(positions[i], positions[j]);
            let r_sq = d.norm_sq();
            let r = r_sq.sqrt();
            let e = qq * erf(a * r) / r;
            energy -= e;
            // F_j -= −d(−e)/dr … the correction force is minus the erf
            // pair force: dE_corr/dr with E_corr = −qq·erf(ar)/r.
            let gauss = (2.0 * a / std::f64::consts::PI.sqrt()) * (-a * a * r_sq).exp();
            // d/dr [erf(ar)/r] = gauss/r − erf(ar)/r².
            let de_dr = qq * (gauss / r - erf(a * r) / r_sq);
            // Correction energy is −qq·erf/r; its force on j is +de_dr·d̂.
            let fj = d * (de_dr / r);
            forces[j] += fj;
            forces[i] -= fj;
        }
    }

    LongRangeResult {
        energy,
        potential: potential_grid,
    }
}

/// Fourier-space Poisson solve: φ̂(k) = ρ̂(k) · 4π/k² · e^{−(σ²−2σ_s²)k²/2}.
/// The k = 0 mode is dropped (tinfoil boundary conditions; systems are
/// neutral). Returns the real-space potential grid in e/Å units (multiply
/// by [`COULOMB`] for kcal/mol).
pub fn convolve_poisson(rho: &ScalarGrid, params: &LongRangeParams) -> ScalarGrid {
    let [nx, ny, nz] = rho.n;
    let mut f: Vec<Complex> = rho.data.iter().map(|&v| Complex::real(v)).collect();
    fft3d(&mut f, nx, ny, nz, Direction::Forward);

    let l = rho.pbox.lengths;
    let two_pi = 2.0 * std::f64::consts::PI;
    let kf = [two_pi / l.x, two_pi / l.y, two_pi / l.z];
    let residual =
        params.sigma * params.sigma - 2.0 * params.spread.sigma_s * params.spread.sigma_s;
    assert!(
        residual >= -1e-12,
        "spreading width too large: σ_s must be ≤ σ/√2"
    );
    let fold = |m: usize, n: usize| -> f64 {
        // Map FFT index to signed frequency.
        let m = m as i64;
        let n = n as i64;
        let s = if m <= n / 2 { m } else { m - n };
        s as f64
    };
    for gz in 0..nz {
        let kz = fold(gz, nz) * kf[2];
        for gy in 0..ny {
            let ky = fold(gy, ny) * kf[1];
            for gx in 0..nx {
                let kx = fold(gx, nx) * kf[0];
                let k_sq = kx * kx + ky * ky + kz * kz;
                let i = gx + nx * (gy + ny * gz);
                if k_sq == 0.0 {
                    f[i] = Complex::ZERO;
                } else {
                    let g =
                        4.0 * std::f64::consts::PI / k_sq * (-0.5 * residual.max(0.0) * k_sq).exp();
                    f[i] = f[i].scale(g);
                }
            }
        }
    }
    fft3d(&mut f, nx, ny, nz, Direction::Inverse);
    let mut out = ScalarGrid::zeros(rho.n, rho.pbox);
    for (o, v) in out.data.iter_mut().zip(&f) {
        *o = v.re;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::{range_limited_forces_naive, PairParams};
    use crate::pbc::PeriodicBox;
    use crate::system::{Atom, ChemicalSystem};

    /// Build a bare system of point charges (no LJ, no bonds).
    fn charges_system(pbox: PeriodicBox, pts: &[(Vec3, f64)]) -> ChemicalSystem {
        let atoms = pts
            .iter()
            .map(|&(pos, charge)| Atom {
                pos,
                vel: Vec3::ZERO,
                mass: 1.0,
                charge,
                lj_sigma: 1.0,
                lj_epsilon: 0.0,
            })
            .collect();
        let mut sys = ChemicalSystem {
            pbox,
            atoms,
            bonds: Vec::new(),
            angles: Vec::new(),
            dihedrals: Vec::new(),
            exclusions: Vec::new(),
        };
        sys.rebuild_exclusions();
        sys
    }

    /// Total Ewald electrostatic energy: real (naive, large cutoff) +
    /// reciprocal − self − exclusions.
    fn total_electrostatic(sys: &ChemicalSystem, sigma: f64, grid: usize, cutoff: f64) -> f64 {
        let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let mut f = vec![Vec3::ZERO; positions.len()];
        let real = range_limited_forces_naive(
            sys,
            &positions,
            PairParams {
                cutoff,
                ewald_sigma: Some(sigma),
            },
            &mut f,
        );
        let lr = long_range_forces(
            sys,
            &positions,
            &LongRangeParams::new([grid; 3], sigma),
            &mut f,
        );
        real.coulomb_real + lr.energy
    }

    #[test]
    fn madelung_constant_of_rock_salt() {
        // Alternating ±1 charges on a simple cubic lattice, spacing a.
        // The Madelung energy per ion is −M·C/(2? ) — precisely:
        // E_total/N = −1.747565 · COULOMB / (2a) × 2 … per-ion energy is
        // −M·C·q²/a /2 × 2? Use the standard statement: lattice energy
        // per ion pair = −M·C/a; per ion = −M·C/(2a)·… Let the test
        // assert E_total / N_ions == −M·C/(2a) within 1%.
        let a = 2.8;
        let n = 8; // 8³ ions
        let l = a * n as f64;
        let pbox = PeriodicBox::cubic(l);
        let mut pts = Vec::new();
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let q = if (x + y + z) % 2 == 0 { 1.0 } else { -1.0 };
                    pts.push((Vec3::new(x as f64 * a, y as f64 * a, z as f64 * a), q));
                }
            }
        }
        let sys = charges_system(pbox, &pts);
        let sigma = 2.2;
        let cutoff = 11.0; // erfc(11/(√2·2.2)) ≈ 6e-13
        let e = total_electrostatic(&sys, sigma, 64, cutoff);
        let per_ion = e / pts.len() as f64;
        let madelung = 1.747_564_6;
        let want = -madelung * COULOMB / (2.0 * a);
        let rel = (per_ion - want).abs() / want.abs();
        assert!(rel < 0.01, "per_ion={per_ion} want={want} rel={rel}");
    }

    #[test]
    fn energy_is_independent_of_the_splitting_parameter() {
        // The σ split moves energy between real and reciprocal space; the
        // total must stay put. Small random salt-like system.
        let pbox = PeriodicBox::cubic(16.0);
        let mut rng = anton_des::Rng::seed_from(31);
        let mut pts = Vec::new();
        for i in 0..32 {
            let q = if i % 2 == 0 { 1.0 } else { -1.0 };
            // Keep charges apart to avoid near-singular configs.
            let p = Vec3::new(
                (i % 4) as f64 * 4.0 + rng.uniform(0.3, 1.2),
                ((i / 4) % 4) as f64 * 4.0 + rng.uniform(0.3, 1.2),
                (i / 16) as f64 * 8.0 + rng.uniform(0.3, 1.2),
            );
            pts.push((p, q));
        }
        let sys = charges_system(pbox, &pts);
        let e1 = total_electrostatic(&sys, 1.6, 64, 7.9);
        let e2 = total_electrostatic(&sys, 2.0, 64, 7.9);
        let rel = (e1 - e2).abs() / e1.abs().max(1.0);
        assert!(rel < 0.02, "e1={e1} e2={e2} rel={rel}");
    }

    #[test]
    fn long_range_forces_match_numerical_gradient() {
        let pbox = PeriodicBox::cubic(12.0);
        let pts = vec![
            (Vec3::new(3.0, 6.0, 6.0), 1.0),
            (Vec3::new(8.5, 6.3, 5.8), -1.0),
            (Vec3::new(6.0, 2.5, 9.0), 0.5),
            (Vec3::new(6.2, 9.5, 2.7), -0.5),
        ];
        let sys = charges_system(pbox, &pts);
        let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let params = LongRangeParams::new([32; 3], 1.8);
        let mut f = vec![Vec3::ZERO; 4];
        long_range_forces(&sys, &positions, &params, &mut f);
        // Finite-difference the reciprocal energy.
        let h = 1e-4;
        for atom in 0..4 {
            for ax in 0..3 {
                let mut p1 = positions.clone();
                let mut p2 = positions.clone();
                let v = p1[atom].get(ax);
                p1[atom].set(ax, v + h);
                let v = p2[atom].get(ax);
                p2[atom].set(ax, v - h);
                let mut scratch = vec![Vec3::ZERO; 4];
                let e1 = long_range_forces(&sys, &p1, &params, &mut scratch).energy;
                let mut scratch = vec![Vec3::ZERO; 4];
                let e2 = long_range_forces(&sys, &p2, &params, &mut scratch).energy;
                let g = (e1 - e2) / (2.0 * h);
                let got = f[atom].get(ax);
                assert!(
                    (got + g).abs() < 0.05 * g.abs().max(1.0),
                    "atom {atom} axis {ax}: F={got} -dE/dx={}",
                    -g
                );
            }
        }
        // Momentum conservation up to Gaussian-truncation error.
        let net = f.iter().fold(Vec3::ZERO, |a, &b| a + b);
        let scale: f64 = f.iter().map(|v| v.norm()).sum();
        assert!(net.norm() < 2e-3 * scale, "net={net:?} scale={scale}");
    }

    #[test]
    fn excluded_pairs_are_corrected() {
        // Two bonded opposite charges: total electrostatic energy must be
        // (nearly) zero since the pair is excluded everywhere and the
        // system has no other charges — periodic images contribute only a
        // small residual.
        let pbox = PeriodicBox::cubic(24.0);
        let mut sys = charges_system(
            pbox,
            &[
                (Vec3::new(12.0, 12.0, 12.0), 1.0),
                (Vec3::new(13.0, 12.0, 12.0), -1.0),
            ],
        );
        sys.bonds.push(crate::system::Bond {
            i: 0,
            j: 1,
            r0: 1.0,
            k: 100.0,
        });
        sys.rebuild_exclusions();
        let e = total_electrostatic(&sys, 2.0, 64, 10.0);
        // A ±1 dipole of extent 1 Å in a 24 Å periodic box: image energy
        // is ~−2μ²·ζ/L³ ≈ tiny compared to the bare pair energy (−332).
        assert!(
            e.abs() < 1.5,
            "excluded pair should contribute ~nothing, got {e}"
        );
    }
}
