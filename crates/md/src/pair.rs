//! Range-limited nonbonded interactions: Lennard-Jones plus the
//! real-space (erfc-screened) part of Ewald electrostatics, evaluated
//! with cell lists inside a cutoff (paper §II: "range-limited
//! interactions … are thus computed directly for all atom pairs separated
//! by less than some cutoff radius"). This is the arithmetic Anton's HTIS
//! pipelines perform.

use crate::pbc::PeriodicBox;
use crate::system::ChemicalSystem;
use crate::units::COULOMB;
use crate::vec3::Vec3;

/// Complementary error function, Abramowitz & Stegun 7.1.26
/// (|error| ≤ 1.5×10⁻⁷ — ample for MD pair interactions).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    poly * (-x * x).exp()
}

/// Error function.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Ewald splitting: interactions use `erfc(r/(√2 σ))/r` in real space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairParams {
    /// Real-space cutoff, Å.
    pub cutoff: f64,
    /// Ewald Gaussian width σ, Å. `None` disables the long-range split
    /// (bare truncated Coulomb — used for LJ-only test systems).
    pub ewald_sigma: Option<f64>,
}

impl PairParams {
    /// Cutoff with a splitting width tuned so erfc at the cutoff is tiny
    /// (r_c = 3.5 σ ⇒ erfc(2.47) ≈ 5×10⁻⁴).
    pub fn with_cutoff(cutoff: f64) -> PairParams {
        PairParams {
            cutoff,
            ewald_sigma: Some(cutoff / 3.5),
        }
    }
}

/// Result of a pairwise evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PairEnergy {
    /// Lennard-Jones energy, kcal/mol.
    pub lj: f64,
    /// Screened real-space Coulomb energy, kcal/mol.
    pub coulomb_real: f64,
    /// Pair virial Σ r·f (kcal/mol), used by the barostat.
    pub virial: f64,
}

/// Cell list over a periodic box.
#[derive(Debug)]
pub struct CellList {
    cells: [usize; 3],
    /// Atom indices bucketed per cell, cells in x-fastest order.
    buckets: Vec<Vec<u32>>,
}

impl CellList {
    /// Bucket `positions` into cells of edge ≥ `cutoff`.
    pub fn build(positions: &[Vec3], pbox: &PeriodicBox, cutoff: f64) -> CellList {
        assert!(cutoff > 0.0);
        let mut cells = [1usize; 3];
        for (ax, cell) in cells.iter_mut().enumerate() {
            *cell = ((pbox.lengths.get(ax) / cutoff).floor() as usize).max(1);
        }
        let n_cells = cells[0] * cells[1] * cells[2];
        let mut buckets = vec![Vec::new(); n_cells];
        for (i, &p) in positions.iter().enumerate() {
            let w = pbox.wrap(p);
            let mut c = [0usize; 3];
            for ax in 0..3 {
                let idx = (w.get(ax) / pbox.lengths.get(ax) * cells[ax] as f64) as usize;
                c[ax] = idx.min(cells[ax] - 1);
            }
            buckets[c[0] + cells[0] * (c[1] + cells[1] * c[2])].push(i as u32);
        }
        CellList { cells, buckets }
    }

    /// Visit each unordered atom pair (i < j) at most once, restricted to
    /// atoms in the same or neighboring cells. When any axis has fewer
    /// than 3 cells, neighbor offsets alias; duplicates are suppressed.
    pub fn for_each_candidate_pair(&self, mut f: impl FnMut(usize, usize)) {
        let [cx, cy, cz] = self.cells;
        let cell_of = |x: usize, y: usize, z: usize| x + cx * (y + cy * z);
        for z in 0..cz {
            for y in 0..cy {
                for x in 0..cx {
                    let home = cell_of(x, y, z);
                    // Within-cell pairs.
                    let b = &self.buckets[home];
                    for a in 0..b.len() {
                        for c in (a + 1)..b.len() {
                            f(b[a] as usize, b[c] as usize);
                        }
                    }
                    // Cross-cell pairs: visit each neighbor cell once.
                    let mut seen = Vec::with_capacity(26);
                    for dz in -1i64..=1 {
                        for dy in -1i64..=1 {
                            for dx in -1i64..=1 {
                                if dx == 0 && dy == 0 && dz == 0 {
                                    continue;
                                }
                                let nx = (x as i64 + dx).rem_euclid(cx as i64) as usize;
                                let ny = (y as i64 + dy).rem_euclid(cy as i64) as usize;
                                let nz = (z as i64 + dz).rem_euclid(cz as i64) as usize;
                                let other = cell_of(nx, ny, nz);
                                // Process each unordered cell pair once.
                                if other <= home || seen.contains(&other) {
                                    continue;
                                }
                                seen.push(other);
                                for &i in b {
                                    for &j in &self.buckets[other] {
                                        f(i as usize, j as usize);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// One LJ + screened-Coulomb pair. Returns (lj energy, coulomb energy,
/// force-on-j) for separation vector `d` = r_j − r_i.
#[inline]
pub fn pair_interaction(
    d: Vec3,
    qi: f64,
    qj: f64,
    sigma: f64,
    epsilon: f64,
    ewald_sigma: Option<f64>,
) -> (f64, f64, Vec3) {
    let r_sq = d.norm_sq();
    let r = r_sq.sqrt();
    debug_assert!(r > 1e-9, "overlapping nonbonded atoms");
    let inv_r = 1.0 / r;
    // Lennard-Jones.
    let (e_lj, f_lj_over_r) = if epsilon > 0.0 {
        let sr2 = sigma * sigma / r_sq;
        let sr6 = sr2 * sr2 * sr2;
        let sr12 = sr6 * sr6;
        let e = 4.0 * epsilon * (sr12 - sr6);
        // F = 24 ε (2 sr12 − sr6) / r, along d̂ (repulsive positive).
        let f = 24.0 * epsilon * (2.0 * sr12 - sr6) / r_sq;
        (e, f)
    } else {
        (0.0, 0.0)
    };
    // Screened Coulomb.
    let (e_c, f_c_over_r) = if qi != 0.0 && qj != 0.0 {
        let qq = COULOMB * qi * qj;
        match ewald_sigma {
            Some(s) => {
                let a = 1.0 / (std::f64::consts::SQRT_2 * s);
                let sc = erfc(a * r);
                let e = qq * sc * inv_r;
                // dE/dr = −qq [ erfc(ar)/r² + (2a/√π) e^{−a²r²}/r ]
                let gauss = (2.0 * a / std::f64::consts::PI.sqrt()) * (-a * a * r_sq).exp();
                let f = qq * (sc * inv_r * inv_r + gauss * inv_r) * inv_r;
                (e, f)
            }
            None => {
                // Bare Coulomb: F = qq/r² along d̂ ⇒ coefficient qq/r³.
                let e = qq * inv_r;
                (e, qq * inv_r * inv_r * inv_r)
            }
        }
    } else {
        (0.0, 0.0)
    };
    // Force on j: repulsion pushes j away from i (along +d).
    (e_lj, e_c, d * (f_lj_over_r + f_c_over_r))
}

/// Evaluate all range-limited interactions of `sys` within the cutoff,
/// accumulating forces. Exclusions (1-2, 1-3) are skipped here; the
/// reciprocal-space correction for excluded pairs lives in
/// [`crate::longrange`].
pub fn range_limited_forces(
    sys: &ChemicalSystem,
    positions: &[Vec3],
    params: PairParams,
    forces: &mut [Vec3],
) -> PairEnergy {
    assert_eq!(positions.len(), sys.atoms.len());
    assert_eq!(forces.len(), sys.atoms.len());
    let cl = CellList::build(positions, &sys.pbox, params.cutoff);
    let cut_sq = params.cutoff * params.cutoff;
    let mut out = PairEnergy::default();
    cl.for_each_candidate_pair(|i, j| {
        if sys.is_excluded(i, j) {
            return;
        }
        let d = sys.pbox.min_image(positions[i], positions[j]);
        if d.norm_sq() >= cut_sq {
            return;
        }
        let (ai, aj) = (&sys.atoms[i], &sys.atoms[j]);
        // Lorentz–Berthelot combination.
        let sigma = 0.5 * (ai.lj_sigma + aj.lj_sigma);
        let epsilon = (ai.lj_epsilon * aj.lj_epsilon).sqrt();
        let (e_lj, e_c, fj) =
            pair_interaction(d, ai.charge, aj.charge, sigma, epsilon, params.ewald_sigma);
        out.lj += e_lj;
        out.coulomb_real += e_c;
        out.virial += d.dot(fj);
        forces[j] += fj;
        forces[i] -= fj;
    });
    out
}

/// Brute-force O(n²) evaluation — the oracle for cell-list tests.
pub fn range_limited_forces_naive(
    sys: &ChemicalSystem,
    positions: &[Vec3],
    params: PairParams,
    forces: &mut [Vec3],
) -> PairEnergy {
    let cut_sq = params.cutoff * params.cutoff;
    let mut out = PairEnergy::default();
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            if sys.is_excluded(i, j) {
                continue;
            }
            let d = sys.pbox.min_image(positions[i], positions[j]);
            if d.norm_sq() >= cut_sq {
                continue;
            }
            let (ai, aj) = (&sys.atoms[i], &sys.atoms[j]);
            let sigma = 0.5 * (ai.lj_sigma + aj.lj_sigma);
            let epsilon = (ai.lj_epsilon * aj.lj_epsilon).sqrt();
            let (e_lj, e_c, fj) =
                pair_interaction(d, ai.charge, aj.charge, sigma, epsilon, params.ewald_sigma);
            out.lj += e_lj;
            out.coulomb_real += e_c;
            out.virial += d.dot(fj);
            forces[j] += fj;
            forces[i] -= fj;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemBuilder;

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(∞) → 0, erfc(1) ≈ 0.15729921.
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(5.0) < 2e-11);
        assert!((erfc(1.0) - 0.15729921).abs() < 1e-6);
        assert!((erfc(-1.0) - (2.0 - 0.15729921)).abs() < 1e-6);
        assert!((erf(0.5) - 0.52049988).abs() < 1e-6);
    }

    #[test]
    fn lj_minimum_at_two_to_one_sixth_sigma() {
        let sigma = 3.0;
        let r_min = sigma * 2.0f64.powf(1.0 / 6.0);
        let d = Vec3::new(r_min, 0.0, 0.0);
        let (e, _, f) = pair_interaction(d, 0.0, 0.0, sigma, 0.5, None);
        assert!((e + 0.5).abs() < 1e-12, "well depth is ε: e={e}");
        assert!(f.norm() < 1e-12, "zero force at the minimum");
        // Closer: repulsive (force on j along +d).
        let (_, _, f) = pair_interaction(Vec3::new(2.9, 0.0, 0.0), 0.0, 0.0, sigma, 0.5, None);
        assert!(f.x > 0.0);
        // Farther: attractive.
        let (_, _, f) = pair_interaction(Vec3::new(4.5, 0.0, 0.0), 0.0, 0.0, sigma, 0.5, None);
        assert!(f.x < 0.0);
    }

    #[test]
    fn coulomb_like_charges_repel() {
        let d = Vec3::new(3.0, 0.0, 0.0);
        let (_, e, f) = pair_interaction(d, 1.0, 1.0, 1.0, 0.0, Some(2.0));
        assert!(e > 0.0);
        assert!(f.x > 0.0);
        let (_, e2, f2) = pair_interaction(d, 1.0, -1.0, 1.0, 0.0, Some(2.0));
        assert!(e2 < 0.0);
        assert!(f2.x < 0.0);
    }

    #[test]
    fn screened_coulomb_forces_match_numerical_gradient() {
        let qi = 0.8;
        let qj = -0.5;
        let s = Some(2.5);
        for r in [2.0, 3.5, 5.0, 7.0] {
            let h = 1e-6;
            let e = |x: f64| pair_interaction(Vec3::new(x, 0.0, 0.0), qi, qj, 1.0, 0.0, s).1;
            let g = (e(r + h) - e(r - h)) / (2.0 * h);
            let (_, _, f) = pair_interaction(Vec3::new(r, 0.0, 0.0), qi, qj, 1.0, 0.0, s);
            // The A&S erfc approximation (≤1.5e-7) bounds the match.
            assert!(
                (f.x + g).abs() < 1e-4 * g.abs().max(1.0),
                "r={r}: f={} -g={}",
                f.x,
                -g
            );
        }
    }

    #[test]
    fn cell_list_covers_all_atoms() {
        let sys = SystemBuilder::tiny(300, 24.0, 11).build();
        let pos: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let cl = CellList::build(&pos, &sys.pbox, 8.0);
        let total: usize = cl.buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn cell_list_matches_naive_forces() {
        let sys = SystemBuilder::tiny(240, 20.0, 17).build();
        let pos: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let params = PairParams::with_cutoff(6.0);
        let mut f1 = vec![Vec3::ZERO; pos.len()];
        let mut f2 = vec![Vec3::ZERO; pos.len()];
        let e1 = range_limited_forces(&sys, &pos, params, &mut f1);
        let e2 = range_limited_forces_naive(&sys, &pos, params, &mut f2);
        assert!(
            (e1.lj - e2.lj).abs() < 1e-9 * e2.lj.abs().max(1.0),
            "{} vs {}",
            e1.lj,
            e2.lj
        );
        assert!((e1.coulomb_real - e2.coulomb_real).abs() < 1e-9 * e2.coulomb_real.abs().max(1.0));
        assert!((e1.virial - e2.virial).abs() < 1e-8 * e2.virial.abs().max(1.0));
        for (a, b) in f1.iter().zip(&f2) {
            assert!((*a - *b).norm() < 1e-9, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn forces_sum_to_zero() {
        let sys = SystemBuilder::tiny(300, 22.0, 23).build();
        let pos: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let mut f = vec![Vec3::ZERO; pos.len()];
        range_limited_forces(&sys, &pos, PairParams::with_cutoff(7.0), &mut f);
        let net = f.iter().fold(Vec3::ZERO, |a, &b| a + b);
        assert!(net.norm() < 1e-9, "net={net:?}");
    }

    #[test]
    fn small_boxes_fall_back_to_single_cell() {
        // Box smaller than 3 cells per axis: neighbor aliasing must not
        // double-count pairs.
        let sys = SystemBuilder::tiny(60, 9.0, 29).build();
        let pos: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let params = PairParams::with_cutoff(4.0);
        let mut f1 = vec![Vec3::ZERO; pos.len()];
        let mut f2 = vec![Vec3::ZERO; pos.len()];
        let e1 = range_limited_forces(&sys, &pos, params, &mut f1);
        let e2 = range_limited_forces_naive(&sys, &pos, params, &mut f2);
        assert!((e1.lj - e2.lj).abs() < 1e-9 * e2.lj.abs().max(1.0));
        for (a, b) in f1.iter().zip(&f2) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }
}
