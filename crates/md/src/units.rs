//! Units and physical constants.
//!
//! The MD substrate uses the AKMA-style unit system common in
//! biomolecular codes:
//!
//! - length: Å (ångström)
//! - time: fs (femtosecond)
//! - mass: amu
//! - energy: kcal/mol
//! - charge: elementary charge e
//! - temperature: K
//!
//! Forces are kcal/mol/Å; accelerations need [`ACCEL_CONVERSION`].

/// Acceleration conversion: a (Å/fs²) = F (kcal/mol/Å) / m (amu) × this.
/// (1 kcal/mol = 4184 J/mol; 1 amu = 1.66054e-27 kg; 1 Å/fs² = 1e25 m/s².)
pub const ACCEL_CONVERSION: f64 = 4.184e-4;

/// Boltzmann constant, kcal/(mol·K).
pub const KB: f64 = 1.987204259e-3;

/// Coulomb constant, kcal·Å/(mol·e²).
pub const COULOMB: f64 = 332.063713;

/// Kinetic energy of one particle: ½ m v² in kcal/mol with v in Å/fs and
/// m in amu.
#[inline]
pub fn kinetic_energy(mass: f64, v_sq: f64) -> f64 {
    0.5 * mass * v_sq / ACCEL_CONVERSION
}

/// Instantaneous temperature of N particles with total kinetic energy
/// `ke` (kcal/mol), using 3N degrees of freedom.
#[inline]
pub fn temperature(ke: f64, n_atoms: usize) -> f64 {
    if n_atoms == 0 {
        return 0.0;
    }
    2.0 * ke / (3.0 * n_atoms as f64 * KB)
}

/// Thermal velocity standard deviation per component (Å/fs) for mass m
/// (amu) at temperature T (K): sqrt(kB T / m), converted.
#[inline]
pub fn thermal_sigma(mass: f64, temp: f64) -> f64 {
    (KB * temp / mass * ACCEL_CONVERSION).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn water_oxygen_thermal_speed_is_sane() {
        // Oxygen at 300 K: ~0.000394 Å/fs per component ≈ 394 m/s.
        let s = thermal_sigma(15.999, 300.0);
        let m_per_s = s * 1e5; // Å/fs → m/s
        assert!((350.0..450.0).contains(&m_per_s), "{m_per_s} m/s");
    }

    #[test]
    fn equipartition_round_trip() {
        // A particle moving at exactly the thermal sigma in each component
        // has KE = 3/2 kB T, i.e., temperature() recovers T.
        let t = 310.0;
        let m = 12.011;
        let s = thermal_sigma(m, t);
        let ke = kinetic_energy(m, 3.0 * s * s);
        let got = temperature(ke, 1);
        assert!((got - t).abs() < 1e-9, "got {got}");
    }

    #[test]
    fn zero_atoms_zero_temperature() {
        assert_eq!(temperature(5.0, 0), 0.0);
    }
}
