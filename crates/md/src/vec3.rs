//! 3-vectors for positions, velocities, and forces.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-vector of f64 (Å, Å/fs, or kcal/mol/Å depending on context).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// All components equal.
    #[inline]
    pub const fn splat(v: f64) -> Vec3 {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector (panics in debug if zero length).
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self / n
    }

    /// Component by axis index 0/1/2.
    #[inline]
    pub fn get(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("axis out of range"),
        }
    }

    /// Mutable component by axis index.
    #[inline]
    pub fn set(&mut self, axis: usize, v: f64) {
        match axis {
            0 => self.x = v,
            1 => self.y = v,
            2 => self.z = v,
            _ => panic!("axis out of range"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}
impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}
impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}
impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}
impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}
impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}
impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 4.0 - 10.0 + 18.0);
    }

    #[test]
    fn cross_is_orthogonal_and_right_handed() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
        let a = Vec3::new(1.5, -2.0, 0.3);
        let b = Vec3::new(0.2, 4.0, -1.0);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms_and_axes() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert_eq!(v.norm(), 13.0);
        assert_eq!(v.get(0), 3.0);
        assert_eq!(v.get(2), 12.0);
        let mut w = Vec3::ZERO;
        w.set(1, 7.0);
        assert_eq!(w, Vec3::new(0.0, 7.0, 0.0));
        assert!((Vec3::new(0.0, 2.0, 0.0).normalized() - Vec3::new(0.0, 1.0, 0.0)).norm() < 1e-15);
    }
}
