//! The single-process reference MD engine.
//!
//! This engine runs the same physics the Anton-mapped engine runs, but
//! without any machine model: evaluate all forces, integrate, repeat. It
//! is (a) the correctness oracle for the distributed engine and (b) the
//! source of realistic per-phase arithmetic volumes for the timing model.

use crate::bonded::all_bonded;
use crate::integrate::{
    berendsen_rescale, instantaneous_temperature, total_kinetic, verlet_first_half,
    verlet_second_half,
};
use crate::longrange::{long_range_forces, LongRangeParams};
use crate::pair::{range_limited_forces, PairParams};
use crate::system::ChemicalSystem;
use crate::vec3::Vec3;

/// MD run parameters.
#[derive(Debug, Clone)]
pub struct MdParams {
    /// Time step, fs.
    pub dt: f64,
    /// Range-limited cutoff, Å.
    pub cutoff: f64,
    /// Ewald σ; defaults to cutoff/3.5.
    pub ewald_sigma: f64,
    /// Long-range FFT grid.
    pub grid: [usize; 3],
    /// Evaluate long-range every `long_range_interval` steps (the paper's
    /// benchmark runs it every other step — Table 3 caption).
    pub long_range_interval: u32,
    /// Thermostat target (None = NVE).
    pub thermostat: Option<Thermostat>,
    /// Barostat (None = constant volume).
    pub barostat: Option<Barostat>,
}

/// Berendsen thermostat settings.
#[derive(Debug, Clone, Copy)]
pub struct Thermostat {
    /// Target temperature, K.
    pub target: f64,
    /// Coupling time, fs.
    pub tau: f64,
    /// Apply every N steps (the paper adjusts temperature on long-range
    /// steps, i.e., every other step).
    pub interval: u32,
}

/// Berendsen barostat settings (pressure control via the globally
/// reduced virial — Figure 2's barostat path).
#[derive(Debug, Clone, Copy)]
pub struct Barostat {
    /// Target pressure, kcal/(mol·Å³) (see [`crate::integrate::ATM`]).
    pub target: f64,
    /// Coupling time, fs.
    pub tau: f64,
    /// Isothermal compressibility, (kcal/(mol·Å³))⁻¹.
    pub kappa: f64,
    /// Apply every N steps.
    pub interval: u32,
}

impl MdParams {
    /// Paper-flavored defaults for a given grid.
    pub fn new(cutoff: f64, grid: [usize; 3]) -> MdParams {
        MdParams {
            dt: 1.0,
            cutoff,
            ewald_sigma: cutoff / 3.5,
            grid,
            long_range_interval: 2,
            thermostat: Some(Thermostat {
                target: 300.0,
                tau: 500.0,
                interval: 2,
            }),
            barostat: None,
        }
    }

    /// NVE (no thermostat), long-range every step — for conservation tests.
    pub fn nve(cutoff: f64, grid: [usize; 3]) -> MdParams {
        MdParams {
            dt: 0.5,
            cutoff,
            ewald_sigma: cutoff / 3.5,
            grid,
            long_range_interval: 1,
            thermostat: None,
            barostat: None,
        }
    }
}

/// Force components of one evaluation.
#[derive(Debug, Clone)]
pub struct ForceReport {
    /// Total force on each atom (kcal/mol/Å).
    pub forces: Vec<Vec3>,
    /// Bonded (bond+angle+dihedral) energy.
    pub e_bonded: f64,
    /// Lennard-Jones energy within the cutoff.
    pub e_lj: f64,
    /// Real-space (erfc-screened) Coulomb energy.
    pub e_coulomb_real: f64,
    /// Reciprocal-space energy minus self and exclusion corrections.
    pub e_long_range: f64,
    /// Whether the long-range part was evaluated this step (on off-steps
    /// the previous long-range forces are reused, matching Anton's
    /// every-other-step schedule).
    pub long_range_fresh: bool,
    /// Range-limited pair virial Σ r·f (kcal/mol), the barostat input.
    pub virial: f64,
}

impl ForceReport {
    /// Total potential energy of the components evaluated.
    pub fn potential(&self) -> f64 {
        self.e_bonded + self.e_lj + self.e_coulomb_real + self.e_long_range
    }
}

/// The reference engine.
pub struct ReferenceEngine {
    /// The simulated system (positions/velocities mutate per step).
    pub sys: ChemicalSystem,
    /// Run parameters.
    pub params: MdParams,
    step_count: u64,
    /// Cached long-range forces + energy from the last fresh evaluation.
    lr_cache: Option<(Vec<Vec3>, f64)>,
    /// Forces at the current positions (for the next first-half kick).
    current: Option<ForceReport>,
}

impl ReferenceEngine {
    /// Build (does not evaluate forces yet).
    pub fn new(sys: ChemicalSystem, params: MdParams) -> ReferenceEngine {
        ReferenceEngine {
            sys,
            params,
            step_count: 0,
            lr_cache: None,
            current: None,
        }
    }

    /// Steps completed.
    pub fn steps(&self) -> u64 {
        self.step_count
    }

    /// Evaluate all force components at the current positions.
    pub fn evaluate_forces(&mut self) -> ForceReport {
        let positions: Vec<Vec3> = self.sys.atoms.iter().map(|a| a.pos).collect();
        let n = positions.len();
        let mut forces = vec![Vec3::ZERO; n];
        let e_bonded = all_bonded(
            &self.sys.bonds,
            &self.sys.angles,
            &self.sys.dihedrals,
            &positions,
            &self.sys.pbox,
            &mut forces,
        );
        let pair = range_limited_forces(
            &self.sys,
            &positions,
            PairParams {
                cutoff: self.params.cutoff,
                ewald_sigma: Some(self.params.ewald_sigma),
            },
            &mut forces,
        );
        let fresh = self
            .step_count
            .is_multiple_of(self.params.long_range_interval as u64)
            || self.lr_cache.is_none();
        let e_long_range = if fresh {
            let mut lr_forces = vec![Vec3::ZERO; n];
            let lr = long_range_forces(
                &self.sys,
                &positions,
                &LongRangeParams::new(self.params.grid, self.params.ewald_sigma),
                &mut lr_forces,
            );
            self.lr_cache = Some((lr_forces, lr.energy));
            lr.energy
        } else {
            self.lr_cache.as_ref().expect("cache populated").1
        };
        let (lr_forces, _) = self.lr_cache.as_ref().expect("cache populated");
        for (f, &lf) in forces.iter_mut().zip(lr_forces) {
            *f += lf;
        }
        ForceReport {
            forces,
            e_bonded,
            e_lj: pair.lj,
            e_coulomb_real: pair.coulomb_real,
            e_long_range,
            long_range_fresh: fresh,
            virial: pair.virial,
        }
    }

    /// Advance one velocity-Verlet step. Returns the force report at the
    /// *new* positions.
    pub fn step(&mut self) -> &ForceReport {
        if self.current.is_none() {
            self.current = Some(self.evaluate_forces());
        }
        let dt = self.params.dt;
        let old = self.current.take().expect("just populated");
        verlet_first_half(&mut self.sys, &old.forces, dt);
        self.step_count += 1;
        let new = self.evaluate_forces();
        verlet_second_half(&mut self.sys, &new.forces, dt);
        if let Some(th) = self.params.thermostat {
            if self.step_count.is_multiple_of(th.interval as u64) {
                berendsen_rescale(&mut self.sys, th.target, th.tau, dt);
            }
        }
        if let Some(ba) = self.params.barostat {
            if self.step_count.is_multiple_of(ba.interval as u64) {
                let p = crate::integrate::instantaneous_pressure(&self.sys, new.virial);
                crate::integrate::berendsen_pressure_rescale(
                    &mut self.sys,
                    p,
                    ba.target,
                    ba.tau,
                    ba.kappa,
                    dt,
                );
            }
        }
        self.current = Some(new);
        self.current.as_ref().expect("just set")
    }

    /// Total energy (potential of the last evaluation + kinetic now).
    pub fn total_energy(&mut self) -> f64 {
        if self.current.is_none() {
            self.current = Some(self.evaluate_forces());
        }
        self.current.as_ref().expect("populated").potential() + total_kinetic(&self.sys)
    }

    /// Instantaneous temperature, K.
    pub fn temperature(&self) -> f64 {
        instantaneous_temperature(&self.sys)
    }

    /// Export the engine's current observables into a metrics registry
    /// under `md.ref.*` — the same keys, modulo prefix, as
    /// `AntonMdEngine::export_metrics`, so a reference run and a
    /// simulated-machine run can be diffed in one snapshot.
    pub fn export_metrics(&mut self, reg: &mut anton_obs::MetricsRegistry) {
        if self.current.is_none() {
            self.current = Some(self.evaluate_forces());
        }
        let cur = self.current.as_ref().expect("populated");
        reg.set_counter("md.ref.steps", self.step_count);
        reg.set_gauge("md.ref.energy.bonded", cur.e_bonded);
        reg.set_gauge("md.ref.energy.lj", cur.e_lj);
        reg.set_gauge("md.ref.energy.coulomb_real", cur.e_coulomb_real);
        reg.set_gauge("md.ref.energy.long_range", cur.e_long_range);
        reg.set_gauge("md.ref.energy.potential", cur.potential());
        reg.set_gauge("md.ref.temperature", self.temperature());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemBuilder;
    use crate::vec3::Vec3;

    /// NVE energy conservation on a small water box. Flexible water with
    /// a 0.5 fs step conserves total energy to a fraction of a percent
    /// over a few hundred steps.
    #[test]
    fn nve_energy_conservation() {
        let sys = SystemBuilder::tiny(96, 14.2, 77).build();
        let mut eng = ReferenceEngine::new(sys, MdParams::nve(6.0, [32; 3]));
        let e0 = eng.total_energy();
        for _ in 0..150 {
            eng.step();
        }
        let e1 = eng.total_energy();
        // Normalize drift by the kinetic energy scale, not the total
        // (which can be near zero).
        let ke = total_kinetic(&eng.sys).max(1.0);
        let drift = (e1 - e0).abs() / ke;
        assert!(drift < 0.05, "e0={e0} e1={e1} drift={drift}");
    }

    #[test]
    fn export_metrics_publishes_energies() {
        let sys = SystemBuilder::tiny(60, 12.5, 78).build();
        let mut eng = ReferenceEngine::new(sys, MdParams::nve(5.0, [16; 3]));
        eng.step();
        let mut reg = anton_obs::MetricsRegistry::new();
        eng.export_metrics(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.get("md.ref.steps"), Some(1.0));
        let pot = snap
            .get("md.ref.energy.potential")
            .expect("potential exported");
        let parts = ["bonded", "lj", "coulomb_real", "long_range"]
            .iter()
            .map(|k| snap.get(&format!("md.ref.energy.{k}")).expect("component"))
            .sum::<f64>();
        assert!((pot - parts).abs() < 1e-9);
    }

    #[test]
    fn momentum_is_conserved_in_nve() {
        let sys = SystemBuilder::tiny(60, 12.5, 78).build();
        let mut eng = ReferenceEngine::new(sys, MdParams::nve(5.0, [16; 3]));
        let p0 = eng.sys.total_momentum();
        assert!(p0.norm() < 1e-12);
        for _ in 0..50 {
            eng.step();
        }
        // Grid-based long-range forces conserve momentum only up to the
        // Gaussian truncation error; bound the drift against the momentum
        // scale of the system (Σ|p_i| ≈ 0.05 amu·Å/fs here).
        let p1 = eng.sys.total_momentum();
        let scale: f64 = eng.sys.atoms.iter().map(|a| (a.vel * a.mass).norm()).sum();
        assert!(p1.norm() < 0.05 * scale, "p1={p1:?} scale={scale}");
    }

    #[test]
    fn thermostat_holds_temperature() {
        let sys = SystemBuilder::tiny(150, 17.0, 79).build();
        let mut params = MdParams::new(6.0, [32; 3]);
        params.dt = 0.5;
        // Tight coupling: the freshly generated lattice releases potential
        // energy as it relaxes, which the thermostat must drain.
        params.thermostat = Some(Thermostat {
            target: 300.0,
            tau: 10.0,
            interval: 1,
        });
        let mut eng = ReferenceEngine::new(sys, params);
        for _ in 0..600 {
            eng.step();
        }
        let t = eng.temperature();
        assert!((t - 300.0).abs() < 60.0, "t={t}");
    }

    #[test]
    fn long_range_caching_reuses_between_steps() {
        let sys = SystemBuilder::tiny(45, 12.0, 80).build();
        let mut params = MdParams::new(5.0, [16; 3]);
        params.long_range_interval = 2;
        let mut eng = ReferenceEngine::new(sys, params);
        let r0 = eng.step().long_range_fresh; // step_count becomes 1: odd
        let r1 = eng.step().long_range_fresh; // step_count 2: even → fresh
        let r2 = eng.step().long_range_fresh; // 3: stale
        assert!(!r0 && r1 && !r2, "{r0} {r1} {r2}");
    }

    #[test]
    fn barostat_moves_pressure_toward_target() {
        let sys = SystemBuilder::tiny(150, 17.0, 91).build();
        let mut params = MdParams::new(6.0, [16; 3]);
        params.dt = 0.5;
        params.thermostat = Some(Thermostat {
            target: 300.0,
            tau: 20.0,
            interval: 1,
        });
        // Target well below the (large, positive) initial lattice
        // pressure: the box must expand.
        params.barostat = Some(Barostat {
            target: crate::integrate::ATM,
            tau: 100.0,
            kappa: 50.0,
            interval: 1,
        });
        let mut eng = ReferenceEngine::new(sys, params);
        let v0 = eng.sys.pbox.volume();
        let p0 = {
            let rep = eng.evaluate_forces();
            crate::integrate::instantaneous_pressure(&eng.sys, rep.virial)
        };
        for _ in 0..60 {
            eng.step();
        }
        let rep = eng.evaluate_forces();
        let p1 = crate::integrate::instantaneous_pressure(&eng.sys, rep.virial);
        let v1 = eng.sys.pbox.volume();
        if p0 > crate::integrate::ATM {
            assert!(v1 > v0, "box should expand: {v0} -> {v1}");
            assert!(p1 < p0, "pressure should fall: {p0} -> {p1}");
        } else {
            assert!(v1 < v0, "box should shrink: {v0} -> {v1}");
        }
    }

    #[test]
    fn forces_are_finite_and_bounded() {
        let sys = SystemBuilder::tiny(90, 14.0, 81).build();
        let mut eng = ReferenceEngine::new(sys, MdParams::new(6.0, [16; 3]));
        let rep = eng.evaluate_forces();
        for f in &rep.forces {
            assert!(f.x.is_finite() && f.y.is_finite() && f.z.is_finite());
            assert!(f.norm() < 5_000.0, "unphysical force {f:?}");
        }
        // Net force is zero up to grid-interpolation truncation error.
        let net = rep.forces.iter().fold(Vec3::ZERO, |a, &b| a + b);
        let scale: f64 = rep.forces.iter().map(|f| f.norm()).sum();
        assert!(net.norm() < 1e-3 * scale, "net={net:?} scale={scale}");
    }
}
