//! # anton-md — molecular dynamics substrate
//!
//! The full MD physics the Anton machine computes (paper §II): bonded
//! forces, range-limited LJ + screened-Coulomb pairs, FFT-based
//! long-range electrostatics with Gaussian charge spreading and force
//! interpolation, velocity-Verlet integration, thermostat, fixed-point
//! accumulation codecs, and synthetic-system generation. A single-process
//! reference engine serves as the oracle for the distributed
//! (Anton-mapped) engine in `anton-core`.

#![warn(missing_docs)]

pub mod bonded;
pub mod diffusion;
pub mod engine;
pub mod fixed;
pub mod grid;
pub mod integrate;
pub mod longrange;
pub mod observables;
pub mod pair;
pub mod pbc;
pub mod system;
pub mod units;
pub mod vec3;
pub mod xyz;

pub use engine::{Barostat, ForceReport, MdParams, ReferenceEngine, Thermostat};
pub use pbc::PeriodicBox;
pub use system::{Angle, Atom, Bond, ChemicalSystem, Dihedral, SystemBuilder};
pub use vec3::Vec3;
