//! Charge spreading and force interpolation (paper §II: "Charge must be
//! mapped from atoms to nearby grid points before the FFT computation
//! (charge spreading), and forces on atoms must be calculated from the
//! potentials at nearby grid points after the inverse FFT computation
//! (force interpolation)"). On Anton the HTIS performs both; here we
//! implement the arithmetic with Gaussian spreading functions in the
//! style of Gaussian split Ewald \[39\].

use crate::pbc::PeriodicBox;
use crate::vec3::Vec3;

/// Gaussian spreading parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadParams {
    /// Spreading Gaussian width σ_s, Å.
    pub sigma_s: f64,
    /// Truncation radius in units of σ_s (3 ⇒ ~1% mass truncated, the
    /// tests' tolerances account for it).
    pub support_sigmas: f64,
}

impl SpreadParams {
    /// σ_s = σ/√2 puts all Ewald damping into the spread/interpolate
    /// Gaussians, leaving the Fourier kernel bare 4π/k² — the smoothest,
    /// most grid-friendly choice.
    pub fn for_ewald_sigma(sigma: f64) -> SpreadParams {
        SpreadParams {
            sigma_s: sigma / std::f64::consts::SQRT_2,
            support_sigmas: 3.0,
        }
    }
}

/// A real-space scalar grid over the periodic box (row-major
/// `[nz][ny][nx]`).
#[derive(Debug, Clone)]
pub struct ScalarGrid {
    /// Points per axis.
    pub n: [usize; 3],
    /// The periodic box the grid spans.
    pub pbox: PeriodicBox,
    /// Values, row-major `[nz][ny][nx]`.
    pub data: Vec<f64>,
}

impl ScalarGrid {
    /// A zeroed grid.
    pub fn zeros(n: [usize; 3], pbox: PeriodicBox) -> ScalarGrid {
        ScalarGrid {
            n,
            pbox,
            data: vec![0.0; n[0] * n[1] * n[2]],
        }
    }

    /// Grid spacing per axis, Å.
    pub fn spacing(&self) -> Vec3 {
        Vec3::new(
            self.pbox.lengths.x / self.n[0] as f64,
            self.pbox.lengths.y / self.n[1] as f64,
            self.pbox.lengths.z / self.n[2] as f64,
        )
    }

    /// Cell volume, Å³.
    pub fn cell_volume(&self) -> f64 {
        let h = self.spacing();
        h.x * h.y * h.z
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        x + self.n[0] * (y + self.n[1] * z)
    }

    /// Sum of all grid values.
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }
}

/// Visit the grid points within the spread support of `pos`, calling
/// `f(linear_index, displacement_from_pos)` for each. Periodic wrap.
fn for_support(grid: &ScalarGrid, pos: Vec3, params: SpreadParams, mut f: impl FnMut(usize, Vec3)) {
    let h = grid.spacing();
    let r = params.sigma_s * params.support_sigmas;
    let p = grid.pbox.wrap(pos);
    let lo = [
        ((p.x - r) / h.x).floor() as i64,
        ((p.y - r) / h.y).floor() as i64,
        ((p.z - r) / h.z).floor() as i64,
    ];
    let hi = [
        ((p.x + r) / h.x).ceil() as i64,
        ((p.y + r) / h.y).ceil() as i64,
        ((p.z + r) / h.z).ceil() as i64,
    ];
    let r_sq = r * r;
    for gz in lo[2]..=hi[2] {
        let wz = gz.rem_euclid(grid.n[2] as i64) as usize;
        let dz = gz as f64 * h.z - p.z;
        for gy in lo[1]..=hi[1] {
            let wy = gy.rem_euclid(grid.n[1] as i64) as usize;
            let dy = gy as f64 * h.y - p.y;
            for gx in lo[0]..=hi[0] {
                let wx = gx.rem_euclid(grid.n[0] as i64) as usize;
                let dx = gx as f64 * h.x - p.x;
                let d = Vec3::new(dx, dy, dz);
                if d.norm_sq() <= r_sq {
                    f(grid.idx(wx, wy, wz), d);
                }
            }
        }
    }
}

/// Spread point charges onto the grid as Gaussian densities:
/// `ρ(x_n) += q · (2πσ_s²)^{-3/2} exp(−|x_n − r|²/(2σ_s²))`.
/// The grid then holds charge *density* (e/Å³);
/// `Σ ρ_n · cell_volume ≈ Σ q`.
pub fn spread_charges(
    grid: &mut ScalarGrid,
    positions: &[Vec3],
    charges: &[f64],
    params: SpreadParams,
) {
    assert_eq!(positions.len(), charges.len());
    let s2 = params.sigma_s * params.sigma_s;
    let norm = (2.0 * std::f64::consts::PI * s2).powf(-1.5);
    // Split borrow: data is modified through raw index while geometry is
    // read-only; clone the immutable geometry handle.
    let geom = ScalarGrid {
        n: grid.n,
        pbox: grid.pbox,
        data: Vec::new(),
    };
    for (&p, &q) in positions.iter().zip(charges) {
        if q == 0.0 {
            continue;
        }
        for_support(&geom, p, params, |i, d| {
            grid.data[i] += q * norm * (-d.norm_sq() / (2.0 * s2)).exp();
        });
    }
}

/// Interpolate the grid field at each position with the same Gaussian:
/// `φ(r) = Σ_n φ_n · g_σs(x_n − r) · cell_volume`.
pub fn interpolate_potential(
    grid: &ScalarGrid,
    positions: &[Vec3],
    params: SpreadParams,
) -> Vec<f64> {
    let s2 = params.sigma_s * params.sigma_s;
    let norm = (2.0 * std::f64::consts::PI * s2).powf(-1.5) * grid.cell_volume();
    positions
        .iter()
        .map(|&p| {
            let mut acc = 0.0;
            for_support(grid, p, params, |i, d| {
                acc += grid.data[i] * norm * (-d.norm_sq() / (2.0 * s2)).exp();
            });
            acc
        })
        .collect()
}

/// Force interpolation: `F_i = −q_i ∇φ(r_i)` with the analytic gradient
/// of the Gaussian-interpolated potential. Adds into `forces`.
pub fn interpolate_forces(
    grid: &ScalarGrid,
    positions: &[Vec3],
    charges: &[f64],
    params: SpreadParams,
    scale: f64,
    forces: &mut [Vec3],
) {
    let s2 = params.sigma_s * params.sigma_s;
    let norm = (2.0 * std::f64::consts::PI * s2).powf(-1.5) * grid.cell_volume();
    for ((&p, &q), f) in positions.iter().zip(charges).zip(forces.iter_mut()) {
        if q == 0.0 {
            continue;
        }
        let mut grad = Vec3::ZERO;
        for_support(grid, p, params, |i, d| {
            // ∂φ/∂r = Σ φ_n · g(d) · d/σ_s², d = x_n − r.
            let g = grid.data[i] * norm * (-d.norm_sq() / (2.0 * s2)).exp();
            grad += d * (g / s2);
        });
        *f += grad * (-q * scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ScalarGrid, SpreadParams) {
        let pbox = PeriodicBox::cubic(20.0);
        let grid = ScalarGrid::zeros([32, 32, 32], pbox);
        // h = 0.625; σ_s must comfortably resolve: σ_s = 1.5.
        let params = SpreadParams {
            sigma_s: 1.5,
            support_sigmas: 3.5,
        };
        (grid, params)
    }

    #[test]
    fn spreading_conserves_charge() {
        let (mut grid, params) = setup();
        let positions = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(3.3, 17.2, 5.1),
            Vec3::new(0.1, 0.1, 19.9), // wraps
        ];
        let charges = vec![1.0, -0.82, 0.41];
        spread_charges(&mut grid, &positions, &charges, params);
        let total = grid.total() * grid.cell_volume();
        let want: f64 = charges.iter().sum();
        assert!((total - want).abs() < 5e-3, "total={total} want={want}");
    }

    #[test]
    fn interpolation_recovers_smooth_fields() {
        // A constant field interpolates exactly (Gaussian weights times
        // cell volume integrate to ~1).
        let (mut grid, params) = setup();
        for v in grid.data.iter_mut() {
            *v = 2.5;
        }
        let phi = interpolate_potential(&grid, &[Vec3::new(7.3, 11.1, 4.4)], params);
        // Gaussian truncated at 3.5 σ_s retains ~99.3% of its mass.
        assert!((phi[0] - 2.5).abs() < 0.025 * 2.5, "phi={}", phi[0]);
    }

    #[test]
    fn constant_field_exerts_no_force() {
        let (mut grid, params) = setup();
        for v in grid.data.iter_mut() {
            *v = 3.0;
        }
        let mut forces = vec![Vec3::ZERO; 1];
        interpolate_forces(
            &grid,
            &[Vec3::new(9.0, 9.0, 9.0)],
            &[1.0],
            params,
            1.0,
            &mut forces,
        );
        assert!(forces[0].norm() < 1e-3, "{:?}", forces[0]);
    }

    #[test]
    fn linear_field_gives_constant_force() {
        // φ = a·x ⇒ F = −q a x̂. Build a linear-in-x grid away from the
        // wrap seam and test in the middle.
        let pbox = PeriodicBox::cubic(20.0);
        let mut grid = ScalarGrid::zeros([40, 40, 40], pbox);
        let params = SpreadParams {
            sigma_s: 1.2,
            support_sigmas: 3.5,
        };
        let a = 0.7;
        let h = grid.spacing();
        for z in 0..40 {
            for y in 0..40 {
                for x in 0..40 {
                    let i = grid.idx(x, y, z);
                    grid.data[i] = a * (x as f64) * h.x;
                }
            }
        }
        let q = 0.8;
        let mut forces = vec![Vec3::ZERO; 1];
        interpolate_forces(
            &grid,
            &[Vec3::new(10.0, 10.0, 10.0)],
            &[q],
            params,
            1.0,
            &mut forces,
        );
        // Truncation biases the gradient by ~3%; assert within 5%.
        assert!(
            (forces[0].x + q * a).abs() < 0.05 * (q * a),
            "{:?}",
            forces[0]
        );
        assert!(forces[0].y.abs() < 1e-3);
        assert!(forces[0].z.abs() < 1e-3);
    }

    #[test]
    fn spreading_then_interpolating_a_point_charge_peaks_at_the_charge() {
        let (mut grid, params) = setup();
        let p0 = Vec3::new(10.0, 10.0, 10.0);
        spread_charges(&mut grid, &[p0], &[1.0], params);
        let probes = vec![
            p0,
            p0 + Vec3::new(2.0, 0.0, 0.0),
            p0 + Vec3::new(4.0, 0.0, 0.0),
        ];
        let phi = interpolate_potential(&grid, &probes, params);
        assert!(phi[0] > phi[1] && phi[1] > phi[2], "{phi:?}");
    }
}
