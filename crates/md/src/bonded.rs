//! Bonded force terms: harmonic bonds, harmonic angles, periodic
//! dihedrals. Each function returns the term's energy and adds forces
//! in place; Newton's third law holds exactly (a property test checks
//! that every term's forces sum to zero and match −∇E numerically).

use crate::pbc::PeriodicBox;
use crate::system::{Angle, Bond, Dihedral};
use crate::vec3::Vec3;

/// Harmonic bond E = k (r − r0)². Returns energy; accumulates forces.
pub fn bond_force(b: &Bond, pos: &[Vec3], pbox: &PeriodicBox, forces: &mut [Vec3]) -> f64 {
    let d = pbox.min_image(pos[b.i], pos[b.j]); // j − i
    let r = d.norm();
    debug_assert!(r > 1e-9, "bonded atoms coincide");
    let dr = r - b.r0;
    let e = b.k * dr * dr;
    // dE/dr = 2 k dr; force on j is −dE/dr · d̂.
    let f = d * (-2.0 * b.k * dr / r);
    forces[b.j] += f;
    forces[b.i] -= f;
    e
}

/// Harmonic angle E = k (θ − θ0)² over atoms i–j–k (j is the vertex).
pub fn angle_force(a: &Angle, pos: &[Vec3], pbox: &PeriodicBox, forces: &mut [Vec3]) -> f64 {
    let rij = pbox.min_image(pos[a.j], pos[a.i]); // i − j
    let rkj = pbox.min_image(pos[a.j], pos[a.k_atom]); // k − j
    let (ni, nk) = (rij.norm(), rkj.norm());
    debug_assert!(ni > 1e-9 && nk > 1e-9);
    let cos_t = (rij.dot(rkj) / (ni * nk)).clamp(-1.0, 1.0);
    let theta = cos_t.acos();
    let dt = theta - a.theta0;
    let e = a.k * dt * dt;
    // dE/dθ = 2 k dt; ∂θ/∂ri etc. via standard angle gradients.
    let sin_t = (1.0 - cos_t * cos_t).sqrt().max(1e-8);
    let de_dtheta = 2.0 * a.k * dt;
    let fi = (rij * (cos_t / ni) - rkj / nk) * (-de_dtheta / (sin_t * ni));
    let fk = (rkj * (cos_t / nk) - rij / ni) * (-de_dtheta / (sin_t * nk));
    forces[a.i] += fi;
    forces[a.k_atom] += fk;
    forces[a.j] -= fi + fk;
    e
}

/// Periodic dihedral E = k (1 + cos(n φ − φ0)) over atoms i–j–k–l.
pub fn dihedral_force(d: &Dihedral, pos: &[Vec3], pbox: &PeriodicBox, forces: &mut [Vec3]) -> f64 {
    // Standard torsion geometry (see e.g. Allen & Tildesley).
    let b1 = pbox.min_image(pos[d.i], pos[d.j]); // j − i
    let b2 = pbox.min_image(pos[d.j], pos[d.k_atom]); // k − j
    let b3 = pbox.min_image(pos[d.k_atom], pos[d.l]); // l − k
    let n1 = b1.cross(b2);
    let n2 = b2.cross(b3);
    let n1sq = n1.norm_sq().max(1e-12);
    let n2sq = n2.norm_sq().max(1e-12);
    let b2n = b2.norm().max(1e-9);
    let cos_phi = (n1.dot(n2) / (n1sq * n2sq).sqrt()).clamp(-1.0, 1.0);
    let sin_phi = n1.cross(n2).dot(b2) / (b2n * (n1sq * n2sq).sqrt());
    let phi = sin_phi.atan2(cos_phi);
    let nf = d.n as f64;
    let e = d.k * (1.0 + (nf * phi - d.phi0).cos());
    let de_dphi = -d.k * nf * (nf * phi - d.phi0).sin();
    // Analytic gradients of φ.
    let fi = n1 * (de_dphi * b2n / n1sq);
    let fl = n2 * (-de_dphi * b2n / n2sq);
    let tj = fi * (b1.dot(b2) / b2.norm_sq()) - fl * (b3.dot(b2) / b2.norm_sq());
    let fj = -fi - tj;
    let fk = -fl + tj;
    forces[d.i] += fi;
    forces[d.j] += fj;
    forces[d.k_atom] += fk;
    forces[d.l] += fl;
    e
}

/// Evaluate all bonded terms of a topology slice; returns total energy.
pub fn all_bonded(
    bonds: &[Bond],
    angles: &[Angle],
    dihedrals: &[Dihedral],
    pos: &[Vec3],
    pbox: &PeriodicBox,
    forces: &mut [Vec3],
) -> f64 {
    let mut e = 0.0;
    for b in bonds {
        e += bond_force(b, pos, pbox, forces);
    }
    for a in angles {
        e += angle_force(a, pos, pbox, forces);
    }
    for d in dihedrals {
        e += dihedral_force(d, pos, pbox, forces);
    }
    e
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // f[atom] vs num_grad(atom) reads clearer
mod tests {
    use super::*;
    use proptest::prelude::*;

    const BOX: f64 = 100.0; // large box: min-image is identity for tests

    fn num_grad<E: Fn(&[Vec3]) -> f64>(energy: E, pos: &[Vec3], atom: usize) -> Vec3 {
        let h = 1e-6;
        let mut g = Vec3::ZERO;
        for ax in 0..3 {
            let mut p = pos.to_vec();
            let mut q = pos.to_vec();
            let v = p[atom].get(ax);
            p[atom].set(ax, v + h);
            let v = q[atom].get(ax);
            q[atom].set(ax, v - h);
            g.set(ax, (energy(&p) - energy(&q)) / (2.0 * h));
        }
        g
    }

    #[test]
    fn bond_at_rest_length_has_zero_force_and_energy() {
        let pbox = PeriodicBox::cubic(BOX);
        let b = Bond {
            i: 0,
            j: 1,
            r0: 1.5,
            k: 300.0,
        };
        let pos = vec![Vec3::ZERO, Vec3::new(1.5, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = bond_force(&b, &pos, &pbox, &mut f);
        assert!(e.abs() < 1e-12);
        assert!(f[0].norm() < 1e-12 && f[1].norm() < 1e-12);
    }

    #[test]
    fn stretched_bond_pulls_back() {
        let pbox = PeriodicBox::cubic(BOX);
        let b = Bond {
            i: 0,
            j: 1,
            r0: 1.0,
            k: 100.0,
        };
        let pos = vec![Vec3::ZERO, Vec3::new(1.2, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = bond_force(&b, &pos, &pbox, &mut f);
        assert!((e - 100.0 * 0.04).abs() < 1e-12);
        assert!(f[1].x < 0.0, "stretched bond must pull j back");
        assert!((f[0] + f[1]).norm() < 1e-12, "Newton's third law");
    }

    #[test]
    fn bond_across_periodic_boundary() {
        let pbox = PeriodicBox::cubic(10.0);
        let b = Bond {
            i: 0,
            j: 1,
            r0: 1.0,
            k: 100.0,
        };
        // 0.5 and 9.7: min-image distance 0.8, not 9.2.
        let pos = vec![Vec3::new(0.5, 5.0, 5.0), Vec3::new(9.7, 5.0, 5.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = bond_force(&b, &pos, &pbox, &mut f);
        assert!((e - 100.0 * 0.04).abs() < 1e-9, "e={e}");
    }

    #[test]
    fn angle_at_equilibrium_is_zero() {
        let pbox = PeriodicBox::cubic(BOX);
        let a = Angle {
            i: 0,
            j: 1,
            k_atom: 2,
            theta0: std::f64::consts::FRAC_PI_2,
            k: 50.0,
        };
        let pos = vec![
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::ZERO,
            Vec3::new(0.0, 1.0, 0.0),
        ];
        let mut f = vec![Vec3::ZERO; 3];
        let e = angle_force(&a, &pos, &pbox, &mut f);
        assert!(e.abs() < 1e-12);
        assert!(f.iter().all(|v| v.norm() < 1e-9));
    }

    proptest! {
        /// Bond forces equal −∇E and sum to zero.
        #[test]
        fn bond_matches_numerical_gradient(
            x in 0.8f64..3.0, y in -1.0f64..1.0, z in -1.0f64..1.0,
        ) {
            let pbox = PeriodicBox::cubic(BOX);
            let b = Bond { i: 0, j: 1, r0: 1.5, k: 120.0 };
            let pos = vec![Vec3::ZERO, Vec3::new(x, y, z)];
            let mut f = vec![Vec3::ZERO; 2];
            bond_force(&b, &pos, &pbox, &mut f);
            let e_of = |p: &[Vec3]| {
                let mut scratch = vec![Vec3::ZERO; 2];
                bond_force(&b, p, &pbox, &mut scratch)
            };
            for atom in 0..2 {
                let g = num_grad(e_of, &pos, atom);
                prop_assert!((f[atom] + g).norm() < 1e-5, "atom {atom}: f={:?} -g={:?}", f[atom], -g);
            }
            prop_assert!((f[0] + f[1]).norm() < 1e-12);
        }

        /// Angle forces equal −∇E and sum to zero.
        #[test]
        fn angle_matches_numerical_gradient(
            ax in 0.7f64..2.0, ay in 0.2f64..2.0,
            kx in -2.0f64..-0.2, ky in 0.2f64..2.0, kz in -1.0f64..1.0,
        ) {
            let pbox = PeriodicBox::cubic(BOX);
            let a = Angle { i: 0, j: 1, k_atom: 2, theta0: 1.9, k: 45.0 };
            let pos = vec![
                Vec3::new(ax, ay, 0.1),
                Vec3::ZERO,
                Vec3::new(kx, ky, kz),
            ];
            let mut f = vec![Vec3::ZERO; 3];
            angle_force(&a, &pos, &pbox, &mut f);
            let e_of = |p: &[Vec3]| {
                let mut scratch = vec![Vec3::ZERO; 3];
                angle_force(&a, p, &pbox, &mut scratch)
            };
            for atom in 0..3 {
                let g = num_grad(e_of, &pos, atom);
                prop_assert!((f[atom] + g).norm() < 1e-4,
                    "atom {atom}: f={:?} -g={:?}", f[atom], -g);
            }
            let net = f[0] + f[1] + f[2];
            prop_assert!(net.norm() < 1e-10, "net={net:?}");
        }

        /// Dihedral forces equal −∇E and sum to zero.
        #[test]
        fn dihedral_matches_numerical_gradient(
            iy in 0.5f64..1.5, iz in -0.9f64..0.9,
            ly in -1.5f64..-0.5, lz in -0.9f64..0.9,
        ) {
            let pbox = PeriodicBox::cubic(BOX);
            let d = Dihedral { i: 0, j: 1, k_atom: 2, l: 3, n: 3, k: 0.4, phi0: 0.3 };
            let pos = vec![
                Vec3::new(-0.5, iy, iz),
                Vec3::ZERO,
                Vec3::new(1.5, 0.0, 0.0),
                Vec3::new(2.0, ly, lz),
            ];
            let mut f = vec![Vec3::ZERO; 4];
            dihedral_force(&d, &pos, &pbox, &mut f);
            let e_of = |p: &[Vec3]| {
                let mut scratch = vec![Vec3::ZERO; 4];
                dihedral_force(&d, p, &pbox, &mut scratch)
            };
            for atom in 0..4 {
                let g = num_grad(e_of, &pos, atom);
                prop_assert!((f[atom] + g).norm() < 1e-4,
                    "atom {atom}: f={:?} -g={:?}", f[atom], -g);
            }
            let net = f[0] + f[1] + f[2] + f[3];
            prop_assert!(net.norm() < 1e-10, "net={net:?}");
        }
    }
}
