//! Orthorhombic periodic boundary conditions.
//!
//! Anton simulations "typically employ periodic boundary conditions, in
//! which atoms on one side of the simulated system interact with atoms on
//! the other side" (§IV.A) — the property that makes the toroidal network
//! topology match the physics.

use crate::vec3::Vec3;

/// An orthorhombic periodic simulation box with one corner at the origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicBox {
    /// Edge lengths (Å) along x, y, z.
    pub lengths: Vec3,
}

impl PeriodicBox {
    /// Construct; all edge lengths must be positive.
    pub fn new(lx: f64, ly: f64, lz: f64) -> PeriodicBox {
        assert!(
            lx > 0.0 && ly > 0.0 && lz > 0.0,
            "box edges must be positive"
        );
        PeriodicBox {
            lengths: Vec3::new(lx, ly, lz),
        }
    }

    /// A cube.
    pub fn cubic(l: f64) -> PeriodicBox {
        PeriodicBox::new(l, l, l)
    }

    /// Box volume (Å³).
    pub fn volume(&self) -> f64 {
        self.lengths.x * self.lengths.y * self.lengths.z
    }

    /// Wrap a position into [0, L) per axis.
    pub fn wrap(&self, p: Vec3) -> Vec3 {
        Vec3::new(
            p.x.rem_euclid(self.lengths.x),
            p.y.rem_euclid(self.lengths.y),
            p.z.rem_euclid(self.lengths.z),
        )
    }

    /// Minimum-image displacement from `a` to `b` (b − a, folded).
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        let mut d = b - a;
        for axis in 0..3 {
            let l = self.lengths.get(axis);
            let mut v = d.get(axis);
            v -= l * (v / l).round();
            d.set(axis, v);
        }
        d
    }

    /// Minimum-image distance.
    pub fn distance(&self, a: Vec3, b: Vec3) -> f64 {
        self.min_image(a, b).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wrap_into_box() {
        let b = PeriodicBox::cubic(10.0);
        let w = b.wrap(Vec3::new(-0.5, 10.5, 25.0));
        assert!((w.x - 9.5).abs() < 1e-12);
        assert!((w.y - 0.5).abs() < 1e-12);
        assert!((w.z - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_image_picks_the_short_way() {
        let b = PeriodicBox::cubic(10.0);
        let a = Vec3::new(0.5, 5.0, 5.0);
        let c = Vec3::new(9.5, 5.0, 5.0);
        let d = b.min_image(a, c);
        assert!((d.x + 1.0).abs() < 1e-12, "{d:?}"); // 9.5 is −1 away, not +9
        assert!((b.distance(a, c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn volume() {
        assert_eq!(PeriodicBox::new(2.0, 3.0, 4.0).volume(), 24.0);
    }

    proptest! {
        /// Minimum-image displacements never exceed half the box, and
        /// are antisymmetric.
        #[test]
        fn min_image_bounds(
            ax in -50.0f64..50.0, ay in -50.0f64..50.0, az in -50.0f64..50.0,
            bx in -50.0f64..50.0, by in -50.0f64..50.0, bz in -50.0f64..50.0,
        ) {
            let b = PeriodicBox::new(10.0, 12.0, 14.0);
            let p = Vec3::new(ax, ay, az);
            let q = Vec3::new(bx, by, bz);
            let d = b.min_image(p, q);
            prop_assert!(d.x.abs() <= 5.0 + 1e-9);
            prop_assert!(d.y.abs() <= 6.0 + 1e-9);
            prop_assert!(d.z.abs() <= 7.0 + 1e-9);
            let r = b.min_image(q, p);
            prop_assert!((d + r).norm() < 1e-9);
        }

        /// Wrapping is idempotent and preserves min-image distances.
        #[test]
        fn wrap_idempotent(
            x in -100.0f64..100.0, y in -100.0f64..100.0, z in -100.0f64..100.0,
        ) {
            let b = PeriodicBox::new(10.0, 12.0, 14.0);
            let p = Vec3::new(x, y, z);
            let w = b.wrap(p);
            prop_assert!((b.wrap(w) - w).norm() < 1e-12);
            prop_assert!(w.x >= 0.0 && w.x < 10.0);
            prop_assert!(w.y >= 0.0 && w.y < 12.0);
            prop_assert!(w.z >= 0.0 && w.z < 14.0);
            // Distance to a fixed probe point is unchanged by wrapping.
            let probe = Vec3::new(1.0, 2.0, 3.0);
            prop_assert!((b.distance(p, probe) - b.distance(w, probe)).abs() < 1e-9);
        }
    }
}
