//! Integration: velocity Verlet, kinetic energy/virial observables, and
//! a Berendsen-style thermostat (the paper's simulations "included a
//! thermostat"; temperature control uses the globally reduced kinetic
//! energy to rescale velocities — §II, Figure 2).

use crate::system::ChemicalSystem;
use crate::units::{kinetic_energy, temperature, ACCEL_CONVERSION, KB};
use crate::vec3::Vec3;

/// One atmosphere in kcal/(mol·Å³).
pub const ATM: f64 = 1.458_397e-5;

/// First Verlet half-kick plus drift: v += a·dt/2; x += v·dt.
/// `forces` are those from the *previous* step's positions.
pub fn verlet_first_half(sys: &mut ChemicalSystem, forces: &[Vec3], dt: f64) {
    assert_eq!(forces.len(), sys.atoms.len());
    for (a, &f) in sys.atoms.iter_mut().zip(forces) {
        let acc = f * (ACCEL_CONVERSION / a.mass);
        a.vel += acc * (0.5 * dt);
        a.pos += a.vel * dt;
    }
    // Keep positions wrapped (migration logic depends on box coords).
    let pbox = sys.pbox;
    for a in &mut sys.atoms {
        a.pos = pbox.wrap(a.pos);
    }
}

/// Second Verlet half-kick with the forces at the *new* positions.
pub fn verlet_second_half(sys: &mut ChemicalSystem, forces: &[Vec3], dt: f64) {
    assert_eq!(forces.len(), sys.atoms.len());
    for (a, &f) in sys.atoms.iter_mut().zip(forces) {
        let acc = f * (ACCEL_CONVERSION / a.mass);
        a.vel += acc * (0.5 * dt);
    }
}

/// Total kinetic energy, kcal/mol.
pub fn total_kinetic(sys: &ChemicalSystem) -> f64 {
    sys.atoms
        .iter()
        .map(|a| kinetic_energy(a.mass, a.vel.norm_sq()))
        .sum()
}

/// Instantaneous temperature, K.
pub fn instantaneous_temperature(sys: &ChemicalSystem) -> f64 {
    temperature(total_kinetic(sys), sys.atoms.len())
}

/// Berendsen thermostat: rescale velocities toward `target` K with
/// coupling time `tau` (fs). `dt` is the step. Returns the scale factor
/// applied.
pub fn berendsen_rescale(sys: &mut ChemicalSystem, target: f64, tau: f64, dt: f64) -> f64 {
    let t = instantaneous_temperature(sys);
    if t <= 0.0 {
        return 1.0;
    }
    let lambda = (1.0 + dt / tau * (target / t - 1.0)).max(0.0).sqrt();
    for a in &mut sys.atoms {
        a.vel = a.vel * lambda;
    }
    lambda
}

/// Instantaneous pressure from the virial theorem:
/// `P = (N·kB·T + W/3) / V`, with `W = Σ r·f` the pair virial
/// (kcal/mol) and V the box volume (Å³). Returns kcal/(mol·Å³);
/// divide by [`ATM`] for atmospheres. This is the quantity Anton's
/// global all-reduce computes for the barostat (Figure 2).
pub fn instantaneous_pressure(sys: &ChemicalSystem, virial: f64) -> f64 {
    let v = sys.pbox.volume();
    let nkt = sys.atoms.len() as f64 * KB * instantaneous_temperature(sys);
    (nkt + virial / 3.0) / v
}

/// Berendsen barostat: isotropically rescale the box and all positions
/// toward `target` pressure (kcal/(mol·Å³)) with coupling time `tau`
/// (fs) and compressibility `kappa` ((kcal/(mol·Å³))⁻¹). Returns the
/// linear scale factor µ applied.
pub fn berendsen_pressure_rescale(
    sys: &mut ChemicalSystem,
    pressure: f64,
    target: f64,
    tau: f64,
    kappa: f64,
    dt: f64,
) -> f64 {
    let mu = (1.0 - kappa * dt / tau * (target - pressure))
        .clamp(0.5, 2.0)
        .powf(1.0 / 3.0);
    sys.pbox.lengths = sys.pbox.lengths * mu;
    for a in &mut sys.atoms {
        a.pos = a.pos * mu;
    }
    mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pbc::PeriodicBox;
    use crate::system::Atom;

    fn free_particle_system(v: Vec3) -> ChemicalSystem {
        ChemicalSystem {
            pbox: PeriodicBox::cubic(100.0),
            atoms: vec![Atom {
                pos: Vec3::new(50.0, 50.0, 50.0),
                vel: v,
                mass: 10.0,
                charge: 0.0,
                lj_sigma: 1.0,
                lj_epsilon: 0.0,
            }],
            bonds: vec![],
            angles: vec![],
            dihedrals: vec![],
            exclusions: vec![vec![]],
        }
    }

    #[test]
    fn free_particle_moves_in_a_straight_line() {
        let mut sys = free_particle_system(Vec3::new(0.01, 0.0, 0.0));
        let f = vec![Vec3::ZERO];
        for _ in 0..100 {
            verlet_first_half(&mut sys, &f, 1.0);
            verlet_second_half(&mut sys, &f, 1.0);
        }
        assert!((sys.atoms[0].pos.x - 51.0).abs() < 1e-9);
        assert!((sys.atoms[0].vel.x - 0.01).abs() < 1e-15);
    }

    #[test]
    fn constant_force_gives_quadratic_trajectory() {
        let mut sys = free_particle_system(Vec3::ZERO);
        let f_mag = 5.0; // kcal/mol/Å
        let f = vec![Vec3::new(f_mag, 0.0, 0.0)];
        let dt = 1.0;
        let steps = 50;
        for _ in 0..steps {
            verlet_first_half(&mut sys, &f, dt);
            verlet_second_half(&mut sys, &f, dt);
        }
        // x(t) = x0 + ½ a t²; Verlet is exact for constant force.
        let a = f_mag * ACCEL_CONVERSION / 10.0;
        let want = 50.0 + 0.5 * a * (steps as f64 * dt).powi(2);
        assert!(
            (sys.atoms[0].pos.x - want).abs() < 1e-9,
            "{} vs {want}",
            sys.atoms[0].pos.x
        );
    }

    #[test]
    fn harmonic_oscillator_conserves_energy() {
        // One particle on a spring to the box center: E = KE + ½ k x².
        let mut sys = free_particle_system(Vec3::ZERO);
        sys.atoms[0].pos.x = 53.0; // 3 Å displacement
        let k = 10.0;
        let dt = 0.5;
        let energy = |sys: &ChemicalSystem| {
            let x = sys.atoms[0].pos.x - 50.0;
            total_kinetic(sys) + 0.5 * k * x * x
        };
        let e0 = energy(&sys);
        let force =
            |sys: &ChemicalSystem| vec![Vec3::new(-k * (sys.atoms[0].pos.x - 50.0), 0.0, 0.0)];
        let mut f = force(&sys);
        for _ in 0..2000 {
            verlet_first_half(&mut sys, &f, dt);
            f = force(&sys);
            verlet_second_half(&mut sys, &f, dt);
        }
        let drift = (energy(&sys) - e0).abs() / e0;
        assert!(drift < 1e-4, "energy drift {drift}");
    }

    #[test]
    fn berendsen_pulls_temperature_toward_target() {
        let mut sys = free_particle_system(Vec3::new(0.02, 0.01, -0.005));
        let t0 = instantaneous_temperature(&sys);
        let target = t0 * 0.5;
        for _ in 0..1200 {
            berendsen_rescale(&mut sys, target, 100.0, 1.0);
        }
        let t = instantaneous_temperature(&sys);
        assert!((t - target).abs() / target < 0.02, "t={t} target={target}");
    }

    #[test]
    fn ideal_gas_pressure_matches_nkt_over_v() {
        // With zero virial, P = N kB T / V exactly.
        let sys = free_particle_system(Vec3::new(0.01, 0.0, 0.0));
        let p = instantaneous_pressure(&sys, 0.0);
        let want = KB * instantaneous_temperature(&sys) / sys.pbox.volume();
        assert!((p - want).abs() < 1e-18, "{p} vs {want}");
    }

    #[test]
    fn barostat_shrinks_when_pressure_is_below_target() {
        let mut sys = free_particle_system(Vec3::new(0.01, 0.0, 0.0));
        let p = instantaneous_pressure(&sys, 0.0);
        let target = p * 4.0; // want more pressure → compress
        let v0 = sys.pbox.volume();
        let x0 = sys.atoms[0].pos.x;
        let mu = berendsen_pressure_rescale(&mut sys, p, target, 1000.0, 10.0, 1.0);
        assert!(mu < 1.0, "mu={mu}");
        assert!(sys.pbox.volume() < v0);
        assert!((sys.atoms[0].pos.x - x0 * mu).abs() < 1e-12);
    }

    #[test]
    fn barostat_at_target_is_identity() {
        let mut sys = free_particle_system(Vec3::new(0.01, 0.0, 0.0));
        let p = instantaneous_pressure(&sys, 0.0);
        let mu = berendsen_pressure_rescale(&mut sys, p, p, 1000.0, 10.0, 1.0);
        assert!((mu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn berendsen_at_target_is_identity() {
        let mut sys = free_particle_system(Vec3::new(0.02, 0.0, 0.0));
        let t = instantaneous_temperature(&sys);
        let lambda = berendsen_rescale(&mut sys, t, 100.0, 1.0);
        assert!((lambda - 1.0).abs() < 1e-12);
    }
}
