//! Minimal XYZ trajectory I/O — the lingua franca of MD tooling, so
//! trajectories produced by either engine can be inspected in standard
//! viewers (VMD, OVITO, ASE…).

use crate::system::ChemicalSystem;
use std::fmt::Write as _;

/// Element symbol guess from mass (the synthetic systems use a handful
/// of species).
fn element(mass: f64) -> &'static str {
    if mass < 2.0 {
        "H"
    } else if (11.0..14.0).contains(&mass) {
        "C"
    } else if (15.0..17.0).contains(&mass) {
        "O"
    } else if (22.0..24.0).contains(&mass) {
        "Na"
    } else {
        "X"
    }
}

/// Render one snapshot as an XYZ frame (atom count, comment, positions).
pub fn to_xyz_frame(sys: &ChemicalSystem, comment: &str) -> String {
    let mut out = String::with_capacity(sys.atoms.len() * 40 + 64);
    writeln!(out, "{}", sys.atoms.len()).expect("string write");
    writeln!(out, "{}", comment.replace('\n', " ")).expect("string write");
    for a in &sys.atoms {
        writeln!(
            out,
            "{} {:.6} {:.6} {:.6}",
            element(a.mass),
            a.pos.x,
            a.pos.y,
            a.pos.z
        )
        .expect("string write");
    }
    out
}

/// Parse one XYZ frame back into (element, position) records.
pub fn parse_xyz_frame(text: &str) -> Result<Vec<(String, [f64; 3])>, String> {
    let mut lines = text.lines();
    let n: usize = lines
        .next()
        .ok_or("empty frame")?
        .trim()
        .parse()
        .map_err(|e| format!("bad atom count: {e}"))?;
    let _comment = lines.next().ok_or("missing comment line")?;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let line = lines.next().ok_or_else(|| format!("missing atom {i}"))?;
        let mut parts = line.split_whitespace();
        let sym = parts.next().ok_or("missing element")?.to_owned();
        let mut pos = [0.0; 3];
        for p in pos.iter_mut() {
            *p = parts
                .next()
                .ok_or("missing coordinate")?
                .parse()
                .map_err(|e| format!("bad coordinate: {e}"))?;
        }
        out.push((sym, pos));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemBuilder;

    #[test]
    fn round_trips_a_snapshot() {
        let sys = SystemBuilder::tiny(60, 12.0, 31).build();
        let frame = to_xyz_frame(&sys, "step 0 of a test run");
        let parsed = parse_xyz_frame(&frame).expect("valid frame");
        assert_eq!(parsed.len(), 60);
        for ((sym, pos), atom) in parsed.iter().zip(&sys.atoms) {
            assert_eq!(sym, element(atom.mass));
            assert!((pos[0] - atom.pos.x).abs() < 1e-6);
            assert!((pos[2] - atom.pos.z).abs() < 1e-6);
        }
    }

    #[test]
    fn waters_render_as_o_and_h() {
        let sys = SystemBuilder::tiny(30, 11.0, 32).build();
        let frame = to_xyz_frame(&sys, "");
        let o = frame.lines().filter(|l| l.starts_with("O ")).count();
        let h = frame.lines().filter(|l| l.starts_with("H ")).count();
        assert_eq!(o, 10);
        assert_eq!(h, 20);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_xyz_frame("").is_err());
        assert!(parse_xyz_frame("2\ncomment\nO 1 2 3\n").is_err()); // short
        assert!(parse_xyz_frame("1\ncomment\nO 1 x 3\n").is_err()); // bad coord
    }

    #[test]
    fn comment_newlines_are_sanitized() {
        let sys = SystemBuilder::tiny(3, 8.0, 33).build();
        let frame = to_xyz_frame(&sys, "line1\nline2");
        // Still a valid single frame.
        assert!(parse_xyz_frame(&frame).is_ok());
    }
}
