//! Trajectory observables: radial distribution function and mean squared
//! displacement — the standard checks that a simulated liquid is a
//! liquid, usable against either engine's trajectories.

use crate::pbc::PeriodicBox;
use crate::vec3::Vec3;

/// Radial distribution function g(r) accumulated over snapshots.
#[derive(Debug, Clone)]
pub struct Rdf {
    r_max: f64,
    bins: Vec<f64>,
    /// (snapshot count, atoms per snapshot) for normalization.
    samples: u64,
    atoms: usize,
    volume: f64,
}

impl Rdf {
    /// Histogram out to `r_max` with `nbins` bins.
    pub fn new(r_max: f64, nbins: usize) -> Rdf {
        assert!(r_max > 0.0 && nbins > 0);
        Rdf {
            r_max,
            bins: vec![0.0; nbins],
            samples: 0,
            atoms: 0,
            volume: 0.0,
        }
    }

    /// Accumulate one snapshot (all unordered pairs among `positions`).
    pub fn accumulate(&mut self, positions: &[Vec3], pbox: &PeriodicBox) {
        let n = positions.len();
        let dr = self.r_max / self.bins.len() as f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let r = pbox.distance(positions[i], positions[j]);
                if r < self.r_max {
                    self.bins[(r / dr) as usize] += 2.0; // each pair counts for both atoms
                }
            }
        }
        self.samples += 1;
        self.atoms = n;
        self.volume = pbox.volume();
    }

    /// The normalized g(r) as (bin center, value) pairs. Empty before
    /// any snapshot.
    pub fn normalized(&self) -> Vec<(f64, f64)> {
        if self.samples == 0 {
            return Vec::new();
        }
        let dr = self.r_max / self.bins.len() as f64;
        let density = self.atoms as f64 / self.volume;
        let norm_atoms = self.samples as f64 * self.atoms as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let r_lo = i as f64 * dr;
                let r_hi = r_lo + dr;
                let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
                let ideal = density * shell;
                ((r_lo + r_hi) / 2.0, count / norm_atoms / ideal)
            })
            .collect()
    }
}

/// Mean squared displacement between two snapshots (minimum-image-free:
/// pass unwrapped positions, or accept the wrap-limited estimate).
pub fn msd(before: &[Vec3], after: &[Vec3], pbox: &PeriodicBox) -> f64 {
    assert_eq!(before.len(), after.len());
    assert!(!before.is_empty());
    before
        .iter()
        .zip(after)
        .map(|(a, b)| pbox.min_image(*a, *b).norm_sq())
        .sum::<f64>()
        / before.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use anton_des::Rng;

    #[test]
    fn ideal_gas_rdf_is_flat_at_one() {
        let pbox = PeriodicBox::cubic(30.0);
        let mut rng = Rng::seed_from(99);
        let mut rdf = Rdf::new(10.0, 20);
        for _ in 0..4 {
            let positions: Vec<Vec3> = (0..800)
                .map(|_| {
                    Vec3::new(
                        rng.uniform(0.0, 30.0),
                        rng.uniform(0.0, 30.0),
                        rng.uniform(0.0, 30.0),
                    )
                })
                .collect();
            rdf.accumulate(&positions, &pbox);
        }
        // Skip the first bins (few pairs, noisy); the rest hug 1.
        for &(r, g) in rdf.normalized().iter().skip(4) {
            assert!((g - 1.0).abs() < 0.15, "g({r:.2}) = {g:.3}");
        }
    }

    #[test]
    fn crystal_rdf_peaks_at_the_lattice_constant() {
        let a = 3.0;
        let n = 6;
        let pbox = PeriodicBox::cubic(a * n as f64);
        let mut positions = Vec::new();
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    positions.push(Vec3::new(x as f64 * a, y as f64 * a, z as f64 * a));
                }
            }
        }
        let mut rdf = Rdf::new(5.0, 50);
        rdf.accumulate(&positions, &pbox);
        let g = rdf.normalized();
        // The neighborhood of r = a towers over the neighborhood of a/2.
        let peak = |r: f64| {
            g.iter()
                .filter(|(x, _)| (x - r).abs() < 0.25)
                .map(|&(_, v)| v)
                .fold(0.0f64, f64::max)
        };
        assert!(
            peak(a) > 10.0 * (peak(a * 0.5) + 0.01),
            "no lattice peak: g(a)={} g(a/2)={}",
            peak(a),
            peak(a * 0.5)
        );
    }

    #[test]
    fn msd_of_uniform_shift() {
        let pbox = PeriodicBox::cubic(50.0);
        let before: Vec<Vec3> = (0..10)
            .map(|i| Vec3::new(i as f64 * 2.0, 10.0, 10.0))
            .collect();
        let after: Vec<Vec3> = before
            .iter()
            .map(|&p| pbox.wrap(p + Vec3::new(3.0, 4.0, 0.0)))
            .collect();
        assert!((msd(&before, &after, &pbox) - 25.0).abs() < 1e-9);
    }
}
