//! Diffusion fast-forward.
//!
//! Figure 11 of the paper spans 8 **million** time steps: atoms diffuse
//! away from their initial home boxes, the static bond program's
//! communication distances grow, and the step time degrades until the
//! bond program is regenerated. Integrating 8 M real MD steps is not
//! feasible (nor necessary — only the *drift statistics* matter), so the
//! reproduction advances atom positions between timing checkpoints with
//! a Brownian model: per-axis displacement ~ N(0, 2·D·t), with D a
//! liquid-water-like self-diffusion coefficient. DESIGN.md records this
//! substitution.

use crate::pbc::PeriodicBox;
use crate::vec3::Vec3;
use anton_des::Rng;

/// Self-diffusion coefficient of bulk water at 300 K, in Å²/fs
/// (2.3×10⁻⁵ cm²/s).
pub const WATER_DIFFUSION: f64 = 2.3e-4;

/// Slower diffusion for protein-like (bonded, caged) atoms.
pub const PROTEIN_DIFFUSION: f64 = 2.0e-5;

/// Advance positions by `elapsed_fs` of Brownian motion. Molecules move
/// as units: `groups[g]` lists the atom indices of rigid-ish group `g`
/// (a water molecule, a protein chain), which share one displacement so
/// bonded partners stay together.
pub fn fast_forward(
    positions: &mut [Vec3],
    groups: &[Vec<usize>],
    diffusion: &[f64],
    pbox: &PeriodicBox,
    elapsed_fs: f64,
    rng: &mut Rng,
) {
    assert_eq!(groups.len(), diffusion.len());
    assert!(elapsed_fs >= 0.0);
    for (g, &d) in groups.iter().zip(diffusion) {
        let sigma = (2.0 * d * elapsed_fs).sqrt();
        let dx = Vec3::new(
            sigma * rng.normal(),
            sigma * rng.normal(),
            sigma * rng.normal(),
        );
        for &i in g {
            positions[i] = pbox.wrap(positions[i] + dx);
        }
    }
}

/// Mean squared displacement the model produces over `elapsed_fs`
/// (per axis: 2·D·t; total: 6·D·t).
pub fn expected_msd(diffusion: f64, elapsed_fs: f64) -> f64 {
    6.0 * diffusion * elapsed_fs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msd_matches_theory() {
        let pbox = PeriodicBox::cubic(1e6); // effectively unbounded
        let n = 4000;
        let mut positions = vec![Vec3::splat(5e5); n];
        let groups: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let diffusion = vec![WATER_DIFFUSION; n];
        let mut rng = Rng::seed_from(2024);
        let t = 300_000.0; // 120k steps × 2.5 fs
        let orig = positions.clone();
        fast_forward(&mut positions, &groups, &diffusion, &pbox, t, &mut rng);
        let msd: f64 = positions
            .iter()
            .zip(&orig)
            .map(|(p, o)| (*p - *o).norm_sq())
            .sum::<f64>()
            / n as f64;
        let want = expected_msd(WATER_DIFFUSION, t);
        assert!((msd - want).abs() / want < 0.05, "msd={msd} want={want}");
    }

    #[test]
    fn groups_move_together() {
        let pbox = PeriodicBox::cubic(100.0);
        let mut positions = vec![
            Vec3::new(10.0, 10.0, 10.0),
            Vec3::new(11.0, 10.0, 10.0),
            Vec3::new(50.0, 50.0, 50.0),
        ];
        let groups = vec![vec![0, 1], vec![2]];
        let diffusion = vec![WATER_DIFFUSION; 2];
        let mut rng = Rng::seed_from(7);
        let before = pbox.min_image(positions[0], positions[1]);
        fast_forward(&mut positions, &groups, &diffusion, &pbox, 1e5, &mut rng);
        let after = pbox.min_image(positions[0], positions[1]);
        assert!((before - after).norm() < 1e-9, "bonded pair drifted apart");
        // The third atom moved independently.
        assert!((positions[2] - Vec3::new(50.0, 50.0, 50.0)).norm() > 1e-3);
    }

    #[test]
    fn zero_time_is_identity() {
        let pbox = PeriodicBox::cubic(100.0);
        let mut positions = vec![Vec3::new(1.0, 2.0, 3.0)];
        let mut rng = Rng::seed_from(1);
        fast_forward(
            &mut positions,
            &[vec![0]],
            &[WATER_DIFFUSION],
            &pbox,
            0.0,
            &mut rng,
        );
        assert_eq!(positions[0], Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn drift_scale_is_significant_at_figure11_horizons() {
        // Over 120,000 steps × 2.5 fs, rms per-axis drift ≈ 11–12 Å —
        // more than one 7.8 Å home box on the 8×8×8 machine, which is why
        // bond programs go stale (Figure 11's premise).
        let t = 120_000.0 * 2.5;
        let per_axis_rms = (2.0 * WATER_DIFFUSION * t).sqrt();
        assert!(per_axis_rms > 7.8, "rms={per_axis_rms}");
    }
}
