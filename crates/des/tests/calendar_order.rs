//! Property test: [`CalendarQueue`] pops in exactly the order a binary
//! heap over the same `(time, key)` entries would — including interleaved
//! pushes at already-reached times (same-instant chains), far-future
//! gaps, and bucket growth — so swapping it under either engine cannot
//! change any tie-break.

use anton_des::{CalendarQueue, SimTime};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type Key = (u64, u64);
type Model = BinaryHeap<Reverse<(u64, Key, u64)>>;

fn push_both(cal: &mut CalendarQueue<Key, u64>, model: &mut Model, t: u64, key: Key, v: u64) {
    cal.push(SimTime(t), key, v);
    model.push(Reverse((t, key, v)));
}

fn pop_both(cal: &mut CalendarQueue<Key, u64>, model: &mut Model) -> Option<(u64, Key, u64)> {
    let got = cal.pop().map(|(at, k, v)| (at.0, k, v));
    let want = model.pop().map(|Reverse(e)| e);
    assert_eq!(got, want, "calendar diverged from the heap model");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_pop_order_matches_binary_heap(
        // Times span from same-day clusters to ~5 us gaps; small key
        // space forces (time, key) ties to be broken by the unique id.
        entries in prop::collection::vec((0u64..5_000_000, 0u64..8), 1..300),
        shift in 4u32..20,
        pop_stride in 1usize..6,
    ) {
        let mut cal: CalendarQueue<Key, u64> = CalendarQueue::with_day_shift(shift);
        let mut model: Model = BinaryHeap::new();
        let mut id = 0u64;
        for (i, &(t, k)) in entries.iter().enumerate() {
            push_both(&mut cal, &mut model, t, (k, id), id);
            id += 1;
            // Interleave pops with pushes, and chase each mid-stream pop
            // with a push at the popped instant — the monotone-queue case
            // a DES generates constantly.
            if i % pop_stride == 0 {
                if let Some((at, _, _)) = pop_both(&mut cal, &mut model) {
                    push_both(&mut cal, &mut model, at, (k ^ 5, id), id);
                    id += 1;
                }
            }
        }
        while pop_both(&mut cal, &mut model).is_some() {}
        prop_assert!(cal.is_empty());
    }
}
