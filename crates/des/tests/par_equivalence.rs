//! Property tests: the parallel engine is bit-identical to the
//! sequential reference at every thread count, under randomized
//! workloads with same-timestamp chains, `now_event` calls, and
//! cross-shard traffic at the lookahead bound.

use anton_des::par::{LookaheadMatrix, LookaheadMode, ParEngine, ShardMap};
use anton_des::{EventHandler, RunOutcome, Scheduler, SimDuration, SimTime};
use proptest::prelude::*;

const LOOK_NS: u64 = 54;

#[derive(Debug, Clone)]
struct Msg {
    shard: usize,
    depth: u32,
    tag: u64,
}

struct Map {
    n: usize,
}

impl ShardMap<Msg> for Map {
    fn shard_count(&self) -> usize {
        self.n
    }
    fn shard_of(&self, ev: &Msg) -> usize {
        ev.shard
    }
    fn lookahead(&self) -> SimDuration {
        SimDuration::from_ns(LOOK_NS)
    }
}

/// Splittable hash so handler behavior is a pure function of the event —
/// the "randomness" in the workload reproduces identically however the
/// event reaches the handler.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Each event spawns 0–2 children: possibly a local child at a small
/// (often zero) delay, possibly a cross-shard child at the lookahead
/// bound plus jitter. Every shard logs (time, tag, depth).
struct World {
    shard: usize,
    nshards: usize,
    log: Vec<(u64, u64, u32)>,
}

impl EventHandler<Msg> for World {
    fn handle(&mut self, ev: Msg, sched: &mut Scheduler<Msg>) {
        assert_eq!(ev.shard, self.shard);
        self.log.push((sched.now().as_ps(), ev.tag, ev.depth));
        if ev.depth == 0 {
            return;
        }
        let h = mix(ev.tag, sched.now().as_ps());
        if h & 1 == 0 {
            // Local child; delay 0 exercises same-timestamp FIFO chains.
            let delay = SimDuration::from_ps((h >> 8) % 3_000);
            sched.after(
                delay,
                Msg {
                    shard: self.shard,
                    depth: ev.depth - 1,
                    tag: mix(h, 11),
                },
            );
        }
        if h & 2 == 0 && self.nshards > 1 {
            let dst = (self.shard + 1 + (h >> 16) as usize % (self.nshards - 1)) % self.nshards;
            let delay = SimDuration::from_ps(LOOK_NS * 1_000 + (h >> 24) % 40_000);
            sched.after(
                delay,
                Msg {
                    shard: dst,
                    depth: ev.depth - 1,
                    tag: mix(h, 13),
                },
            );
        }
        if h & 4 == 0 {
            sched.now_event(Msg {
                shard: self.shard,
                depth: 0,
                tag: mix(h, 17),
            });
        }
    }
}

#[allow(clippy::type_complexity)]
fn run(
    threads: usize,
    nshards: usize,
    seeds: &[(u64, usize, u32)],
    horizon: SimTime,
    budget: u64,
) -> (RunOutcome, Vec<Vec<(u64, u64, u32)>>, u64, SimTime) {
    let mut eng = ParEngine::new(Map { n: nshards }, threads);
    let mut worlds: Vec<World> = (0..nshards)
        .map(|s| World {
            shard: s,
            nshards,
            log: Vec::new(),
        })
        .collect();
    for (i, &(t_ns, shard, depth)) in seeds.iter().enumerate() {
        eng.schedule_at(
            SimTime::from_ns(t_ns),
            Msg {
                shard: shard % nshards,
                depth,
                tag: mix(i as u64, 997),
            },
        );
    }
    let out = eng.run_until(&mut worlds, horizon, budget);
    (
        out,
        worlds.into_iter().map(|w| w.log).collect(),
        eng.events_processed(),
        eng.now(),
    )
}

/// A map with randomized per-pair direct bounds along a forward ring
/// (everything else unreachable), at least the global floor. The bounds
/// are a pure function of `(salt, src)`, so the paired world can respect
/// them exactly.
struct JitterMap {
    n: usize,
    salt: u64,
}

impl JitterMap {
    fn bound_ps(&self, src: usize) -> u64 {
        LOOK_NS * 1_000 + mix(self.salt, src as u64) % 50_000
    }
}

impl ShardMap<Msg> for JitterMap {
    fn shard_count(&self) -> usize {
        self.n
    }
    fn shard_of(&self, ev: &Msg) -> usize {
        ev.shard
    }
    fn lookahead(&self) -> SimDuration {
        SimDuration::from_ns(LOOK_NS)
    }
    fn lookahead_matrix(&self) -> LookaheadMatrix {
        let mut m = LookaheadMatrix::unreachable(self.n);
        for a in 0..self.n {
            m.set(a, (a + 1) % self.n, SimDuration(self.bound_ps(a)));
        }
        m
    }
}

/// Like [`World`] but cross-shard children go only forward along the
/// ring, delayed by that pair's declared bound plus jitter — so the
/// engine's per-pair runtime assertion stays armed and never fires.
struct MatrixWorld {
    shard: usize,
    nshards: usize,
    salt: u64,
    log: Vec<(u64, u64, u32)>,
}

impl EventHandler<Msg> for MatrixWorld {
    fn handle(&mut self, ev: Msg, sched: &mut Scheduler<Msg>) {
        assert_eq!(ev.shard, self.shard);
        self.log.push((sched.now().as_ps(), ev.tag, ev.depth));
        if ev.depth == 0 {
            return;
        }
        let h = mix(ev.tag, sched.now().as_ps());
        if h & 1 == 0 {
            sched.after(
                SimDuration::from_ps((h >> 8) % 3_000),
                Msg {
                    shard: self.shard,
                    depth: ev.depth - 1,
                    tag: mix(h, 11),
                },
            );
        }
        if h & 2 == 0 && self.nshards > 1 {
            let bound = JitterMap {
                n: self.nshards,
                salt: self.salt,
            }
            .bound_ps(self.shard);
            sched.after(
                SimDuration(bound + (h >> 24) % 40_000),
                Msg {
                    shard: (self.shard + 1) % self.nshards,
                    depth: ev.depth - 1,
                    tag: mix(h, 13),
                },
            );
        }
    }
}

#[allow(clippy::type_complexity)]
fn run_matrix(
    threads: usize,
    nshards: usize,
    salt: u64,
    mode: LookaheadMode,
    seeds: &[(u64, usize, u32)],
) -> (RunOutcome, Vec<Vec<(u64, u64, u32)>>, u64, SimTime) {
    let mut eng = ParEngine::new(JitterMap { n: nshards, salt }, threads);
    eng.set_lookahead_mode(mode);
    let mut worlds: Vec<MatrixWorld> = (0..nshards)
        .map(|s| MatrixWorld {
            shard: s,
            nshards,
            salt,
            log: Vec::new(),
        })
        .collect();
    for (i, &(t_ns, shard, depth)) in seeds.iter().enumerate() {
        eng.schedule_at(
            SimTime::from_ns(t_ns),
            Msg {
                shard: shard % nshards,
                depth,
                tag: mix(i as u64, 997),
            },
        );
    }
    let out = eng.run_until(&mut worlds, SimTime(u64::MAX), u64::MAX);
    (
        out,
        worlds.into_iter().map(|w| w.log).collect(),
        eng.events_processed(),
        eng.now(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unbounded runs agree bit-for-bit at 1, 2, 4, and 8 threads.
    #[test]
    fn parallel_matches_sequential(
        nshards in 1usize..6,
        s0 in 0u64..200, s1 in 0u64..200, s2 in 0u64..200,
        d0 in 1u32..12, d1 in 1u32..12, d2 in 1u32..12,
        p0 in 0usize..6, p1 in 0usize..6, p2 in 0usize..6,
    ) {
        let seeds = [(s0, p0, d0), (s1, p1, d1), (s2, p2, d2)];
        let reference = run(1, nshards, &seeds, SimTime(u64::MAX), u64::MAX);
        for threads in [2, 4, 8] {
            let par = run(threads, nshards, &seeds, SimTime(u64::MAX), u64::MAX);
            prop_assert_eq!(&reference, &par, "diverged at {} threads", threads);
        }
        prop_assert_eq!(reference.0, RunOutcome::Drained);
    }

    /// Bounded runs (horizon and event budget) stop at the same point and
    /// with the same state at every thread count.
    #[test]
    fn bounded_runs_agree(
        nshards in 2usize..5,
        s0 in 0u64..100, s1 in 0u64..100,
        d0 in 4u32..14, d1 in 4u32..14,
        horizon_ns in 50u64..600,
        budget in 1u64..60,
    ) {
        let seeds = [(s0, 0, d0), (s1, 1, d1)];
        let h = SimTime::from_ns(horizon_ns);
        let by_horizon = run(1, nshards, &seeds, h, u64::MAX);
        let by_budget = run(1, nshards, &seeds, SimTime(u64::MAX), budget);
        for threads in [2, 4] {
            prop_assert_eq!(&by_horizon, &run(threads, nshards, &seeds, h, u64::MAX));
            prop_assert_eq!(&by_budget, &run(threads, nshards, &seeds, SimTime(u64::MAX), budget));
        }
        // Nothing past the horizon fired.
        for &(t, _, _) in by_horizon.1.iter().flatten() {
            prop_assert!(t <= h.as_ps());
        }
    }

    /// Under random per-pair matrices, adaptive and global-bound windows
    /// produce bit-identical results at every thread count — and the
    /// per-pair runtime assertion (armed in both modes) never fires,
    /// i.e. no event crosses shards faster than the matrix claims.
    #[test]
    fn adaptive_matrix_matches_global_at_every_thread_count(
        nshards in 2usize..6,
        salt in 0u64..u64::MAX,
        s0 in 0u64..200, s1 in 0u64..200,
        d0 in 1u32..12, d1 in 1u32..12,
        p0 in 0usize..6, p1 in 0usize..6,
    ) {
        let seeds = [(s0, p0, d0), (s1, p1, d1)];
        let reference = run_matrix(1, nshards, salt, LookaheadMode::Global, &seeds);
        for threads in [1, 2, 4, 8] {
            let adaptive = run_matrix(threads, nshards, salt, LookaheadMode::Adaptive, &seeds);
            prop_assert_eq!(&reference, &adaptive, "adaptive diverged at {} threads", threads);
            if threads > 1 {
                let global = run_matrix(threads, nshards, salt, LookaheadMode::Global, &seeds);
                prop_assert_eq!(&reference, &global, "global diverged at {} threads", threads);
            }
        }
        // Every adaptive per-pair bound dominates the global floor, so
        // the closure the windows use can never dip below it.
        let m = JitterMap { n: nshards, salt }.lookahead_matrix();
        let dist = m.closure_ps();
        for a in 0..nshards {
            for b in 0..nshards {
                if a != b {
                    prop_assert!(dist[a * nshards + b] >= LOOK_NS * 1_000);
                }
            }
        }
    }
}
