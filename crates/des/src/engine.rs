//! The discrete-event simulation engine.
//!
//! The engine is a strict-order event queue plus a user-supplied world.
//! Events are values of a caller-defined type `E`; the world implements
//! [`EventHandler`] and reacts to each event, scheduling further events
//! through the [`Scheduler`] handed to it.
//!
//! Determinism is a hard requirement (traces are compared in tests and the
//! paper's figures must be exactly reproducible), so ties in time are broken
//! by insertion sequence number: two events scheduled for the same
//! picosecond fire in the order they were scheduled.

use crate::calendar::CalendarQueue;
use crate::time::{SimDuration, SimTime};

/// A scheduled event: fires at `at`, with `seq` breaking ties. The queue
/// itself ([`CalendarQueue`]) orders on `(at, seq)`; this struct is the
/// staging format handlers fill through a [`Scheduler`].
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

/// The scheduling interface handed to event handlers.
///
/// Handlers may only schedule events at or after the current time; this is
/// checked and panics otherwise (a causality violation is always a bug).
pub struct Scheduler<E> {
    now: SimTime,
    next_seq: u64,
    pending: Vec<Scheduled<E>>,
}

impl<E> Scheduler<E> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire `delay` after the current time.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.at(self.now + delay, event);
    }

    /// Schedule `event` at absolute time `at` (must not precede now).
    pub fn at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} before now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` to fire immediately (same timestamp, after all
    /// events already queued for this instant that were scheduled earlier).
    #[inline]
    pub fn now_event(&mut self, event: E) {
        self.at(self.now, event);
    }

    /// A scheduler positioned at `now` with an empty pending list. Used
    /// by the executors ([`Engine`] builds one per event inline; the
    /// parallel engine in [`crate::par`] builds one per event per shard).
    pub(crate) fn fresh(now: SimTime) -> Scheduler<E> {
        Scheduler {
            now,
            next_seq: 0,
            pending: Vec::new(),
        }
    }

    /// Consume the scheduler, yielding the pending events in the exact
    /// order the handler scheduled them (`seq` order == push order).
    pub(crate) fn into_pending(self) -> impl Iterator<Item = (SimTime, E)> {
        self.pending.into_iter().map(|s| (s.at, s.event))
    }
}

/// World types react to events through this trait.
pub trait EventHandler<E> {
    /// Handle one event at its firing time. New events go through `sched`.
    fn handle(&mut self, event: E, sched: &mut Scheduler<E>);
}

/// An observer called once per processed event, before the world's
/// handler runs. Probes feed instrumentation (event-rate counters,
/// queue-depth gauges) without the world knowing; the default body is a
/// no-op and [`Engine::run_until`] monomorphizes with [`NopProbe`], so
/// an unprobed run pays nothing.
pub trait Probe {
    /// Called for each event: its firing time and the queue depth
    /// *before* the event is popped.
    #[inline]
    fn on_event(&mut self, at: SimTime, pending: usize) {
        let _ = (at, pending);
    }
}

/// The probe that observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopProbe;

impl Probe for NopProbe {}

/// Outcome of [`Engine::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    Drained,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (runaway protection).
    BudgetExhausted,
}

/// The event queue plus clock. Generic over the event type.
///
/// The queue is a [`CalendarQueue`] keyed on `(time, insertion seq)` —
/// pop order is identical to the binary heap it replaced (property-tested
/// in `tests/calendar_order.rs`), so every tie-break below still holds.
pub struct Engine<E> {
    queue: CalendarQueue<u64, E>,
    now: SimTime,
    next_seq: u64,
    events_processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Fresh engine at time zero.
    pub fn new() -> Self {
        Engine {
            queue: CalendarQueue::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            events_processed: 0,
        }
    }

    /// Current simulated time (time of the last event processed, or the
    /// last explicit schedule point).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Seed the queue with an event at absolute time `at`.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "causality violation");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(at, seq, event);
    }

    /// Seed the queue with an event `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Run until the queue drains. `world` handles each event.
    /// Panics if more than `u64::MAX` events are processed (never, in
    /// practice); use [`Engine::run_until`] to bound runaway simulations.
    pub fn run<W: EventHandler<E>>(&mut self, world: &mut W) {
        match self.run_until(world, SimTime(u64::MAX), u64::MAX) {
            RunOutcome::Drained => {}
            other => unreachable!("unbounded run ended with {other:?}"),
        }
    }

    /// Run until the queue drains, `horizon` is passed, or `max_events`
    /// events have been processed, whichever comes first. Events stamped
    /// exactly at the horizon still fire.
    pub fn run_until<W: EventHandler<E>>(
        &mut self,
        world: &mut W,
        horizon: SimTime,
        max_events: u64,
    ) -> RunOutcome {
        self.run_until_probed(world, horizon, max_events, &mut NopProbe)
    }

    /// [`Engine::run_until`] with an instrumentation [`Probe`] called
    /// once per event. Monomorphized per probe type, so the
    /// [`NopProbe`]-instantiated path is identical to an unprobed run.
    pub fn run_until_probed<W: EventHandler<E>, P: Probe>(
        &mut self,
        world: &mut W,
        horizon: SimTime,
        max_events: u64,
        probe: &mut P,
    ) -> RunOutcome {
        let mut budget = max_events;
        while let Some(head_at) = self.queue.peek_at() {
            if head_at > horizon {
                return RunOutcome::HorizonReached;
            }
            if budget == 0 {
                return RunOutcome::BudgetExhausted;
            }
            budget -= 1;
            probe.on_event(head_at, self.queue.len());
            let (at, _seq, event) = self.queue.pop().expect("peeked");
            debug_assert!(at >= self.now, "event queue emitted out of order");
            self.now = at;
            self.events_processed += 1;

            let mut sched = Scheduler {
                now: at,
                next_seq: self.next_seq,
                pending: Vec::new(),
            };
            world.handle(event, &mut sched);
            self.next_seq = sched.next_seq;
            for s in sched.pending {
                self.queue.push(s.at, s.seq, s.event);
            }
        }
        RunOutcome::Drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Eq, Clone)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    struct Recorder {
        seen: Vec<(u64, Ev)>,
        chain: u32,
    }

    impl EventHandler<Ev> for Recorder {
        fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
            self.seen.push((sched.now().as_ps(), event.clone()));
            if let Ev::Ping(n) = event {
                if n < self.chain {
                    sched.after(SimDuration::from_ns(10), Ev::Ping(n + 1));
                }
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_ns(30), Ev::Ping(3));
        eng.schedule_at(SimTime::from_ns(10), Ev::Ping(1));
        eng.schedule_at(SimTime::from_ns(20), Ev::Ping(2));
        let mut w = Recorder {
            seen: vec![],
            chain: 0,
        };
        eng.run(&mut w);
        let times: Vec<u64> = w.seen.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![10_000, 20_000, 30_000]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut eng = Engine::new();
        let t = SimTime::from_ns(5);
        eng.schedule_at(t, Ev::Ping(100));
        eng.schedule_at(t, Ev::Ping(200));
        eng.schedule_at(t, Ev::Stop);
        let mut w = Recorder {
            seen: vec![],
            chain: 0,
        };
        eng.run(&mut w);
        assert_eq!(
            w.seen.iter().map(|(_, e)| e.clone()).collect::<Vec<_>>(),
            vec![Ev::Ping(100), Ev::Ping(200), Ev::Stop]
        );
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, Ev::Ping(0));
        let mut w = Recorder {
            seen: vec![],
            chain: 5,
        };
        eng.run(&mut w);
        assert_eq!(w.seen.len(), 6); // Ping(0)..Ping(5)
        assert_eq!(eng.now(), SimTime::from_ns(50));
        assert_eq!(eng.events_processed(), 6);
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, Ev::Ping(0));
        let mut w = Recorder {
            seen: vec![],
            chain: 1000,
        };
        let out = eng.run_until(&mut w, SimTime::from_ns(25), u64::MAX);
        assert_eq!(out, RunOutcome::HorizonReached);
        // Events at 0, 10, 20 ns fired; 30 ns is pending.
        assert_eq!(w.seen.len(), 3);
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    fn budget_stops_the_run() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, Ev::Ping(0));
        let mut w = Recorder {
            seen: vec![],
            chain: 1000,
        };
        let out = eng.run_until(&mut w, SimTime(u64::MAX), 4);
        assert_eq!(out, RunOutcome::BudgetExhausted);
        assert_eq!(w.seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "causality")]
    fn scheduling_in_the_past_panics() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::from_ns(10), Ev::Stop);
        let mut w = Recorder {
            seen: vec![],
            chain: 0,
        };
        eng.run(&mut w);
        eng.schedule_at(SimTime::from_ns(5), Ev::Stop);
    }

    /// A probe sees every processed event, and the probed run's outcome
    /// and world state match the unprobed run exactly.
    #[test]
    fn probe_observes_each_event_without_perturbing() {
        struct CountProbe {
            events: u64,
            max_pending: usize,
        }
        impl Probe for CountProbe {
            fn on_event(&mut self, _at: SimTime, pending: usize) {
                self.events += 1;
                self.max_pending = self.max_pending.max(pending);
            }
        }

        let run = |probed: bool| {
            let mut eng = Engine::new();
            eng.schedule_at(SimTime::ZERO, Ev::Ping(0));
            let mut w = Recorder {
                seen: vec![],
                chain: 9,
            };
            let mut p = CountProbe {
                events: 0,
                max_pending: 0,
            };
            let out = if probed {
                eng.run_until_probed(&mut w, SimTime(u64::MAX), u64::MAX, &mut p)
            } else {
                eng.run_until(&mut w, SimTime(u64::MAX), u64::MAX)
            };
            (out, w.seen, p.events)
        };
        let (out_p, seen_p, counted) = run(true);
        let (out_n, seen_n, _) = run(false);
        assert_eq!(out_p, out_n);
        assert_eq!(seen_p, seen_n);
        assert_eq!(counted, seen_p.len() as u64);
    }

    /// `now_event` calls made while handling an event at time T fire at
    /// T, *after* every event already queued for T that was scheduled
    /// earlier — the tie-break the parallel engine must reproduce.
    #[test]
    fn now_event_fires_after_earlier_same_time_events() {
        struct Chainer {
            seen: Vec<Ev>,
        }
        impl EventHandler<Ev> for Chainer {
            fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
                if event == Ev::Ping(0) {
                    // Queued behind Ping(1)/Ping(2), which were scheduled
                    // for this same instant before this handler ran.
                    sched.now_event(Ev::Ping(99));
                }
                self.seen.push(event);
            }
        }
        let mut eng = Engine::new();
        let t = SimTime::from_ns(7);
        eng.schedule_at(t, Ev::Ping(0));
        eng.schedule_at(t, Ev::Ping(1));
        eng.schedule_at(t, Ev::Ping(2));
        let mut w = Chainer { seen: vec![] };
        eng.run(&mut w);
        assert_eq!(
            w.seen,
            vec![Ev::Ping(0), Ev::Ping(1), Ev::Ping(2), Ev::Ping(99)]
        );
        assert_eq!(eng.now(), t);
    }

    /// A `now_event` scheduled by a handler firing exactly at the horizon
    /// still executes: horizon semantics are "events stamped at the
    /// horizon fire", including same-timestamp chains.
    #[test]
    fn now_event_chain_at_horizon_still_fires() {
        struct AtHorizon {
            fired: Vec<Ev>,
        }
        impl EventHandler<Ev> for AtHorizon {
            fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
                if event == Ev::Ping(0) {
                    sched.now_event(Ev::Stop);
                }
                self.fired.push(event);
            }
        }
        let horizon = SimTime::from_ns(25);
        let mut eng = Engine::new();
        eng.schedule_at(horizon, Ev::Ping(0));
        // An event strictly beyond the horizon stays pending.
        eng.schedule_at(SimTime::from_ns(26), Ev::Ping(1));
        let mut w = AtHorizon { fired: vec![] };
        let out = eng.run_until(&mut w, horizon, u64::MAX);
        assert_eq!(out, RunOutcome::HorizonReached);
        assert_eq!(w.fired, vec![Ev::Ping(0), Ev::Stop]);
        assert_eq!(eng.pending(), 1);
    }

    /// Deep same-timestamp chains execute FIFO: each `now_event` goes to
    /// the back of the current instant's queue.
    #[test]
    fn same_timestamp_chains_are_fifo() {
        struct Deep {
            seen: Vec<u32>,
        }
        impl EventHandler<Ev> for Deep {
            fn handle(&mut self, event: Ev, sched: &mut Scheduler<Ev>) {
                if let Ev::Ping(n) = event {
                    self.seen.push(n);
                    if n < 5 {
                        sched.now_event(Ev::Ping(n + 10));
                        sched.now_event(Ev::Ping(n + 1));
                    }
                }
            }
        }
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, Ev::Ping(0));
        let mut w = Deep { seen: vec![] };
        eng.run(&mut w);
        // Breadth-first through the instant: 0 spawns (10, 1); 10 is
        // inert; 1 spawns (11, 2); and so on.
        assert_eq!(w.seen, vec![0, 10, 1, 11, 2, 12, 3, 13, 4, 14, 5]);
        assert_eq!(eng.now(), SimTime::ZERO);
    }

    /// Two identical runs produce identical event sequences (determinism).
    #[test]
    fn determinism() {
        let run = || {
            let mut eng = Engine::new();
            eng.schedule_at(SimTime::ZERO, Ev::Ping(0));
            eng.schedule_at(SimTime::ZERO, Ev::Ping(7));
            let mut w = Recorder {
                seen: vec![],
                chain: 9,
            };
            eng.run(&mut w);
            w.seen
        };
        assert_eq!(run(), run());
    }
}
