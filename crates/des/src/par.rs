//! Conservative parallel discrete-event execution over sharded queues.
//!
//! ## Model
//!
//! The event space is partitioned into **shards** by a caller-supplied
//! [`ShardMap`] (the network layer maps torus regions to shards). Each
//! shard owns its own priority queue and its own world state; a handler
//! running on shard *s* may schedule events for any shard, but every
//! **cross-shard** event must be scheduled at least [`ShardMap::lookahead`]
//! after the current time. That bound is exactly the paper's premise
//! turned inward: Anton's fixed, known minimum link latency means a node
//! cannot affect a remote node sooner than the wire allows — so a shard
//! cannot affect another shard sooner than the minimum cross-shard event
//! latency, and events closer than that are causally independent.
//!
//! Execution proceeds in **windows**. With `T` the global minimum pending
//! event time and `L` the lookahead, every shard may safely execute all
//! of its events in `[T, T + L)` without hearing from its neighbors:
//! any cross-shard event generated inside the window lands at or after
//! `T + L` (asserted at runtime). Cross-shard events are staged in
//! outboxes and exchanged at window boundaries.
//!
//! ## Determinism
//!
//! Every event carries a **birth key** `(birth_time, origin_shard, seq)`
//! assigned when it is scheduled: `birth_time` is the simulated time of
//! the scheduling handler, `origin_shard` the shard that scheduled it
//! (0 for pre-run seeds), and `seq` a per-shard schedule counter. Events
//! execute in `(time, birth_key)` order, a total order independent of
//! thread interleaving. Because shard worlds are disjoint, a shard's
//! execution depends only on its own event sequence — which the window
//! protocol makes identical whatever the worker count — so an N-thread
//! run is bit-identical to the 1-thread run, which in turn executes in
//! the *global* `(time, birth_key)` order like the sequential
//! [`Engine`](crate::Engine) does (with the shard-aware tie-break).

use crate::engine::{EventHandler, RunOutcome, Scheduler};
use crate::profile::{
    Heartbeat, ParProfile, TelemetryConfig, WindowSample, WorkerProfile, DEFAULT_SAMPLE_CAP,
};
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as MemOrd};
use std::sync::Mutex;
use std::time::Instant;

/// Partition of the event space, plus the causality bound that makes
/// conservative windows safe.
pub trait ShardMap<E>: Sync {
    /// Number of shards. Fixed for the life of a run — and, crucially,
    /// independent of the worker-thread count, so the event partition
    /// (and therefore every birth key) is identical at any thread count.
    fn shard_count(&self) -> usize;

    /// The shard that executes `event`.
    fn shard_of(&self, event: &E) -> usize;

    /// Minimum delay of any cross-shard event: a handler executing at
    /// time `t` may only schedule events for *other* shards at or after
    /// `t + lookahead()`. Violations panic at schedule time.
    fn lookahead(&self) -> SimDuration;
}

/// Common executor interface over the sequential [`Engine`](crate::Engine)
/// (`W = world`) and the parallel [`ParEngine`] (`W = [world per shard]`).
pub trait Executor<E, W: ?Sized> {
    /// Run until the queue drains, `horizon` passes, or `max_events`
    /// events have executed. Events stamped exactly at the horizon fire.
    fn run_until_on(&mut self, world: &mut W, horizon: SimTime, max_events: u64) -> RunOutcome;

    /// Time of the last event processed.
    fn now(&self) -> SimTime;

    /// Total events processed so far.
    fn events_processed(&self) -> u64;

    /// Events currently pending.
    fn pending(&self) -> usize;
}

impl<E, W: EventHandler<E>> Executor<E, W> for crate::Engine<E> {
    fn run_until_on(&mut self, world: &mut W, horizon: SimTime, max_events: u64) -> RunOutcome {
        self.run_until(world, horizon, max_events)
    }

    fn now(&self) -> SimTime {
        crate::Engine::now(self)
    }

    fn events_processed(&self) -> u64 {
        crate::Engine::events_processed(self)
    }

    fn pending(&self) -> usize {
        crate::Engine::pending(self)
    }
}

/// The deterministic total-order tie-break: where and when an event was
/// born. Seeds use origin 0; events scheduled by shard `s` use `s + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct BirthKey {
    time: SimTime,
    origin: u32,
    seq: u64,
}

/// A scheduled event: fires at `at`; ties in time break by birth key.
struct ParScheduled<E> {
    at: SimTime,
    birth: BirthKey,
    event: E,
}

impl<E> PartialEq for ParScheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.birth == other.birth
    }
}
impl<E> Eq for ParScheduled<E> {}
impl<E> PartialOrd for ParScheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ParScheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted: earliest (at, birth) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.birth.cmp(&self.birth))
    }
}

/// One shard's queue plus its deterministic counters.
struct Shard<E> {
    queue: BinaryHeap<ParScheduled<E>>,
    /// Per-shard schedule counter feeding birth keys.
    birth_seq: u64,
    /// Time of the last event this shard executed.
    last_at: SimTime,
}

impl<E> Shard<E> {
    fn new() -> Shard<E> {
        Shard {
            queue: BinaryHeap::new(),
            birth_seq: 0,
            last_at: SimTime::ZERO,
        }
    }

    fn head_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|h| h.at)
    }
}

/// The conservative parallel event engine: one queue per shard, windowed
/// execution, deterministic at any worker count. See the module docs for
/// the protocol and the determinism argument.
pub struct ParEngine<E, M> {
    map: M,
    threads: usize,
    shards: Vec<Shard<E>>,
    /// Seeds (pre-run scheduled events) number from a single counter.
    seed_seq: u64,
    events_processed: u64,
    now: SimTime,
    /// `Some(sample_cap)` when runtime profiling is enabled.
    profiling: Option<usize>,
    /// Accumulated profile across `run_until` calls (profiling enabled).
    profile: Option<ParProfile>,
    /// Live heartbeat configuration, if any.
    telemetry: Option<TelemetryConfig>,
}

impl<E: Send, M: ShardMap<E>> ParEngine<E, M> {
    /// Build an engine over `map`'s shards, executing with `threads`
    /// workers (clamped to the shard count; 1 runs the sequential
    /// global-order reference executor).
    pub fn new(map: M, threads: usize) -> ParEngine<E, M> {
        let n = map.shard_count();
        assert!(n > 0, "shard map must define at least one shard");
        assert!(
            n == 1 || map.lookahead() > SimDuration::ZERO,
            "multi-shard execution requires a positive lookahead"
        );
        ParEngine {
            map,
            threads: threads.max(1),
            shards: (0..n).map(|_| Shard::new()).collect(),
            seed_seq: 0,
            events_processed: 0,
            now: SimTime::ZERO,
            profiling: None,
            profile: None,
            telemetry: None,
        }
    }

    /// Enable runtime profiling with the default per-worker window-sample
    /// cap. Profiling captures wall-clock phase accounting per worker and
    /// deterministic event/window/traffic counts per shard; it never
    /// touches event ordering, so simulated results are bit-identical
    /// with profiling on or off.
    pub fn enable_profiling(&mut self) {
        self.enable_profiling_with_cap(DEFAULT_SAMPLE_CAP);
    }

    /// Enable runtime profiling, retaining at most `sample_cap` window
    /// samples per worker (`0` keeps summary counters only).
    pub fn enable_profiling_with_cap(&mut self, sample_cap: usize) {
        self.profiling = Some(sample_cap);
    }

    /// The accumulated runtime profile, if profiling was enabled before
    /// a run.
    pub fn profile(&self) -> Option<&ParProfile> {
        self.profile.as_ref()
    }

    /// Take the accumulated profile, leaving the accumulator empty for
    /// subsequent runs.
    pub fn take_profile(&mut self) -> Option<ParProfile> {
        self.profile.take()
    }

    /// Stream live [`Heartbeat`]s during runs: at window boundaries, once
    /// at least `period` of wall time has passed since the previous beat,
    /// a snapshot (window rate, events/s, per-shard occupancy, ETA) is
    /// handed to `sink`. Telemetry reads coordination state the protocol
    /// already publishes — it cannot perturb simulated results.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry = Some(cfg);
    }

    /// Disable live telemetry.
    pub fn disable_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// The shard map in force.
    pub fn map(&self) -> &M {
        &self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads the run methods will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Time of the last event processed (max across shards).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events currently pending across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }

    /// Seed an event at absolute time `at`, routed by the shard map.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let shard = self.map.shard_of(&event);
        self.schedule_at_shard(shard, at, event);
    }

    /// Seed an event on an explicit shard (for broadcast-style kickoff
    /// events whose shard the map cannot derive from the value alone).
    pub fn schedule_at_shard(&mut self, shard: usize, at: SimTime, event: E) {
        assert!(at >= self.now, "causality violation");
        let birth = BirthKey {
            time: self.now,
            origin: 0,
            seq: self.seed_seq,
        };
        self.seed_seq += 1;
        self.shards[shard]
            .queue
            .push(ParScheduled { at, birth, event });
    }

    /// Run until every shard's queue drains. Panics if the run stops for
    /// any other reason.
    pub fn run<W: EventHandler<E> + Send>(&mut self, worlds: &mut [W]) {
        match self.run_until(worlds, SimTime(u64::MAX), u64::MAX) {
            RunOutcome::Drained => {}
            other => unreachable!("unbounded run ended with {other:?}"),
        }
    }

    /// Run until drained, past `horizon`, or `max_events` processed.
    /// Events stamped exactly at the horizon fire (same boundary rule as
    /// [`Engine::run_until`](crate::Engine::run_until)). The event budget
    /// is checked at window boundaries — deterministically, at the same
    /// points whatever the thread count.
    ///
    /// `worlds` holds one world per shard; worlds must be disjoint (no
    /// shared mutable state) for the determinism guarantee to hold.
    pub fn run_until<W: EventHandler<E> + Send>(
        &mut self,
        worlds: &mut [W],
        horizon: SimTime,
        max_events: u64,
    ) -> RunOutcome {
        assert_eq!(
            worlds.len(),
            self.shards.len(),
            "one world per shard required"
        );
        let nworkers = self.threads.min(self.shards.len());
        let t0 = Instant::now();
        let mut run_prof = self
            .profiling
            .map(|cap| ParProfile::new(nworkers, self.shards.len(), cap));
        let outcome = if nworkers <= 1 {
            self.run_merged(worlds, horizon, max_events, &mut run_prof, t0)
        } else {
            self.run_windowed(worlds, horizon, max_events, nworkers, &mut run_prof, t0)
        };
        if let Some(mut p) = run_prof {
            p.wall_ns = elapsed_ns(t0);
            match &mut self.profile {
                None => self.profile = Some(p),
                Some(acc) => acc.absorb(&p),
            }
        }
        self.now = self
            .shards
            .iter()
            .map(|s| s.last_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        outcome
    }

    /// Exclusive end of the window starting at `t`: one lookahead out,
    /// clamped so events exactly at the horizon still fire.
    fn window_end(t: SimTime, look: SimDuration, horizon: SimTime) -> SimTime {
        let by_look = t.0.saturating_add(look.0.max(1));
        SimTime(by_look.min(horizon.0.saturating_add(1)))
    }

    /// The 1-thread reference executor: global `(time, birth)` order
    /// across all shards, window-granular horizon/budget checks. This is
    /// the "sequential engine" the windowed executor must match
    /// bit-for-bit. Profiling and telemetry hooks fire at window
    /// boundaries only, exactly like the windowed executor's.
    fn run_merged<W: EventHandler<E>>(
        &mut self,
        worlds: &mut [W],
        horizon: SimTime,
        max_events: u64,
        run_prof: &mut Option<ParProfile>,
        t0: Instant,
    ) -> RunOutcome {
        let look = if self.shards.len() == 1 {
            SimDuration(u64::MAX)
        } else {
            self.map.lookahead()
        };
        let loop_start = run_prof.is_some().then(|| elapsed_ns(t0));
        let mut wp = run_prof.as_ref().map(|_| WorkerProfile {
            worker: 0,
            first_shard: 0,
            shards: self.shards.len(),
            ..Default::default()
        });
        let already = self.events_processed;
        let mut beat = self.telemetry.clone().map(|cfg| BeatState::new(cfg, t0));
        let outcome = loop {
            let Some(t) = self.shards.iter().filter_map(|s| s.head_time()).min() else {
                break RunOutcome::Drained;
            };
            if t > horizon {
                break RunOutcome::HorizonReached;
            }
            if self.events_processed >= max_events {
                break RunOutcome::BudgetExhausted;
            }
            if let Some(b) = beat.as_mut() {
                let windows = wp.as_ref().map_or(b.windows_seen, |w| w.windows);
                b.maybe_emit(t, windows, self.events_processed - already, horizon, || {
                    self.shards.iter().map(|s| s.queue.len() as u64).collect()
                });
                b.windows_seen += 1;
            }
            let w_end = Self::window_end(t, look, horizon);
            let exec_start = wp.is_some().then(|| elapsed_ns(t0));
            let mut window_events = 0u64;
            // Global minimum (at, birth) head below the window end.
            while let Some(sidx) = self
                .shards
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.queue.peek().map(|h| ((h.at, h.birth), i)))
                .filter(|((at, _), _)| *at < w_end)
                .min()
                .map(|(_, i)| i)
            {
                let ev = self.shards[sidx].queue.pop().expect("peeked");
                self.shards[sidx].last_at = ev.at;
                let born = ev.at;
                let mut sched = Scheduler::fresh(born);
                worlds[sidx].handle(ev.event, &mut sched);
                self.events_processed += 1;
                window_events += 1;
                if let Some(p) = run_prof.as_mut() {
                    p.shard_events[sidx] += 1;
                }
                for (at, event) in sched.into_pending() {
                    let birth = BirthKey {
                        time: born,
                        origin: sidx as u32 + 1,
                        seq: self.shards[sidx].birth_seq,
                    };
                    self.shards[sidx].birth_seq += 1;
                    let dst = self.map.shard_of(&event);
                    if dst != sidx {
                        assert!(
                            at >= born + look,
                            "lookahead violation: shard {sidx} scheduled a \
                             cross-shard event at {at}, less than {look} after {born}"
                        );
                        if let Some(p) = run_prof.as_mut() {
                            p.traffic[sidx * p.shards + dst] += 1;
                        }
                    }
                    self.shards[dst]
                        .queue
                        .push(ParScheduled { at, birth, event });
                }
            }
            if let (Some(w), Some(start)) = (wp.as_mut(), exec_start) {
                let exec_ns = elapsed_ns(t0).saturating_sub(start);
                w.busy_ns += exec_ns;
                w.windows += 1;
                w.active_windows += u64::from(window_events > 0);
                w.events += window_events;
                let cap = run_prof.as_ref().map_or(0, |p| p.sample_cap);
                if w.samples.len() < cap {
                    w.samples.push(WindowSample {
                        window: w.windows - 1,
                        start_ns: start,
                        exec_ns,
                        events: window_events,
                        sim_ps: t.as_ps(),
                    });
                }
            }
        };
        if let (Some(p), Some(mut w), Some(start)) = (run_prof.as_mut(), wp, loop_start) {
            w.loop_ns = elapsed_ns(t0).saturating_sub(start);
            p.windows = w.windows;
            p.events = w.events;
            // All shards execute on the single worker; attribute its
            // busy time to shards by their event share (exact per-shard
            // wall spans are only meaningful with one worker per block).
            if w.events > 0 {
                for (s, &ev) in p.shard_events.clone().iter().enumerate() {
                    p.shard_busy_ns[s] = (w.busy_ns as u128 * ev as u128 / w.events as u128) as u64;
                }
            }
            p.workers.push(w);
        }
        outcome
    }

    /// The windowed multi-worker executor. Shards are block-partitioned
    /// across persistent scoped workers; two spin-barrier crossings per
    /// window (import+reduce, execute).
    fn run_windowed<W: EventHandler<E> + Send>(
        &mut self,
        worlds: &mut [W],
        horizon: SimTime,
        max_events: u64,
        nworkers: usize,
        run_prof: &mut Option<ParProfile>,
        t0: Instant,
    ) -> RunOutcome {
        let nshards = self.shards.len();
        let look = self.map.lookahead();
        let already = self.events_processed;

        // Block partition: worker w owns shards [bounds[w], bounds[w+1]).
        let bounds: Vec<usize> = (0..=nworkers).map(|w| w * nshards / nworkers).collect();

        let coord = Coordination::<E> {
            nshards,
            barrier: SpinBarrier::new(nworkers),
            poison: AtomicBool::new(false),
            heads: (0..nworkers).map(|_| AtomicU64::new(u64::MAX)).collect(),
            executed: (0..nworkers).map(|_| AtomicU64::new(0)).collect(),
            outboxes: (0..nshards)
                .map(|_| (0..nshards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            pending: (0..nshards).map(|_| AtomicU64::new(0)).collect(),
            track_pending: self.telemetry.is_some(),
        };

        let prof_cap = run_prof.as_ref().map(|p| p.sample_cap);
        let telemetry = self.telemetry.clone();
        let shards = std::mem::take(&mut self.shards);
        let map = &self.map;

        // Carve (shards, worlds) into per-worker chunks.
        let mut shard_chunks: Vec<Vec<Shard<E>>> = Vec::with_capacity(nworkers);
        {
            let mut rest = shards;
            for w in (0..nworkers).rev() {
                shard_chunks.push(rest.split_off(bounds[w]));
            }
            shard_chunks.reverse();
        }

        let (outcome, shards_back, total_executed) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nworkers);
            let mut world_rest = worlds;
            for (w, chunk) in shard_chunks.into_iter().enumerate() {
                let (mine, rest) = world_rest.split_at_mut(bounds[w + 1] - bounds[w]);
                world_rest = rest;
                let co = &coord;
                let first_shard = bounds[w];
                let opts = WorkerOpts {
                    prof_cap,
                    t0,
                    // Worker 0 owns the heartbeat; others stay silent.
                    telemetry: if w == 0 { telemetry.clone() } else { None },
                };
                handles.push(scope.spawn(move || {
                    worker_loop(
                        w,
                        first_shard,
                        chunk,
                        mine,
                        map,
                        look,
                        horizon,
                        max_events,
                        co,
                        opts,
                    )
                }));
            }
            let mut outcome = None;
            let mut shards_back: Vec<Shard<E>> = Vec::with_capacity(nshards);
            let mut total = 0u64;
            // Join in spawn order, so worker profiles merge in worker
            // order — the deterministic merge the profile docs promise.
            for h in handles {
                let (out, chunk, executed, wout) = h.join().expect("parallel DES worker panicked");
                // Every worker reaches the identical decision; keep one.
                outcome.get_or_insert(out);
                debug_assert_eq!(outcome, Some(out));
                if let (Some(p), Some(wo)) = (run_prof.as_mut(), wout) {
                    let first = wo.wp.first_shard;
                    for (i, &ev) in wo.shard_events.iter().enumerate() {
                        p.shard_events[first + i] += ev;
                    }
                    for (i, &b) in wo.shard_busy_ns.iter().enumerate() {
                        p.shard_busy_ns[first + i] += b;
                    }
                    for (i, &tr) in wo.traffic.iter().enumerate() {
                        p.traffic[(first + i / nshards) * nshards + i % nshards] += tr;
                    }
                    // Every worker participates in every window.
                    p.windows = p.windows.max(wo.wp.windows);
                    p.events += wo.wp.events;
                    p.workers.push(wo.wp);
                }
                shards_back.extend(chunk);
                total += executed;
            }
            (outcome.expect("at least one worker"), shards_back, total)
        });

        self.shards = shards_back;
        self.events_processed = already + total_executed;
        outcome
    }
}

/// Monotonic wall nanoseconds since `t0`, saturating at `u64::MAX`.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Heartbeat throttle: tracks the last emission and computes rates over
/// the interval since. Shared by the merged executor (main thread) and
/// worker 0 of the windowed executor.
struct BeatState {
    cfg: TelemetryConfig,
    t0: Instant,
    last_emit_ns: u64,
    last_events: u64,
    last_windows: u64,
    /// Simulated time of the first window, anchoring progress/ETA.
    first_sim: Option<u64>,
    /// Window counter used when profiling is off.
    windows_seen: u64,
}

impl BeatState {
    fn new(cfg: TelemetryConfig, t0: Instant) -> BeatState {
        BeatState {
            cfg,
            t0,
            last_emit_ns: 0,
            last_events: 0,
            last_windows: 0,
            first_sim: None,
            windows_seen: 0,
        }
    }

    /// Emit a heartbeat if at least one period elapsed since the last.
    /// `pending` is only invoked on emission, keeping the steady-state
    /// cost to one `Instant` read per window.
    fn maybe_emit(
        &mut self,
        t: SimTime,
        windows: u64,
        events: u64,
        horizon: SimTime,
        pending: impl FnOnce() -> Vec<u64>,
    ) {
        if self.first_sim.is_none() {
            self.first_sim = Some(t.0);
        }
        let now_ns = elapsed_ns(self.t0);
        if now_ns.saturating_sub(self.last_emit_ns) < self.cfg.period.as_nanos() as u64 {
            return;
        }
        let dt = now_ns.saturating_sub(self.last_emit_ns).max(1) as f64 / 1e9;
        let first = self.first_sim.unwrap_or(t.0);
        // Unbounded runs pass a sentinel horizon (at or beyond
        // u64::MAX / 2): suppress progress and ETA for those.
        let finite = horizon.0 < u64::MAX / 2;
        let progress = finite.then(|| {
            let span = horizon.0.saturating_sub(first).max(1) as f64;
            (t.0.saturating_sub(first) as f64 / span).min(1.0)
        });
        let eta_sec = (finite && t.0 > first && now_ns > 0)
            .then(|| {
                let sim_per_sec = (t.0 - first) as f64 / (now_ns as f64 / 1e9);
                horizon.0.saturating_sub(t.0) as f64 / sim_per_sec
            })
            .filter(|e| e.is_finite());
        let beat = Heartbeat {
            wall_ms: now_ns as f64 / 1e6,
            sim_ps: t.0,
            windows,
            events,
            events_per_sec: events.saturating_sub(self.last_events) as f64 / dt,
            windows_per_sec: windows.saturating_sub(self.last_windows) as f64 / dt,
            shard_pending: pending(),
            progress,
            eta_sec,
        };
        self.cfg.sink.emit(&beat);
        self.last_emit_ns = now_ns;
        self.last_events = events;
        self.last_windows = windows;
    }
}

/// Per-worker run options: profiling sample cap (None = profiling off),
/// the run's wall-clock epoch, and the telemetry config (worker 0 only).
struct WorkerOpts {
    prof_cap: Option<usize>,
    t0: Instant,
    telemetry: Option<TelemetryConfig>,
}

/// Profiling output one worker carries back to the engine at join time.
/// Shard-indexed vectors use *local* indices (0 = the worker's first
/// owned shard); the engine re-bases them when merging.
struct WorkerOut {
    wp: WorkerProfile,
    /// Events executed per owned shard.
    shard_events: Vec<u64>,
    /// Wall busy time per owned shard.
    shard_busy_ns: Vec<u64>,
    /// Cross-shard traffic rows for owned shards, row-major
    /// `local_src * nshards + dst`.
    traffic: Vec<u64>,
}

impl<E: Send, M: ShardMap<E>, W: EventHandler<E> + Send> Executor<E, [W]> for ParEngine<E, M> {
    fn run_until_on(&mut self, worlds: &mut [W], horizon: SimTime, max_events: u64) -> RunOutcome {
        self.run_until(worlds, horizon, max_events)
    }

    fn now(&self) -> SimTime {
        ParEngine::now(self)
    }

    fn events_processed(&self) -> u64 {
        ParEngine::events_processed(self)
    }

    fn pending(&self) -> usize {
        ParEngine::pending(self)
    }
}

/// Shared state coordinating the workers of one windowed run.
struct Coordination<E> {
    nshards: usize,
    barrier: SpinBarrier,
    poison: AtomicBool,
    /// Per-worker minimum pending event time (`u64::MAX` = drained).
    heads: Vec<AtomicU64>,
    /// Per-worker cumulative executed-event count.
    executed: Vec<AtomicU64>,
    /// `outboxes[src][dst]`: cross-shard events staged during a window,
    /// drained by `dst`'s worker at the next boundary. Lock contention is
    /// two short critical sections per cell per window.
    outboxes: Vec<Vec<Mutex<Vec<ParScheduled<E>>>>>,
    /// Per-shard pending-queue depth, published in phase 1 when
    /// `track_pending` is set so worker 0's heartbeat can report
    /// occupancy without touching other workers' queues.
    pending: Vec<AtomicU64>,
    /// Whether workers publish `pending` (telemetry enabled).
    track_pending: bool,
}

/// One worker: owns a contiguous block of shards (and their worlds) for
/// the whole run. Returns the run outcome, the shard block (queues and
/// counters survive for a later resume), its executed-event count, and
/// its profiling output when profiling is on.
///
/// Profiling cost discipline: `Instant` reads happen per *phase* per
/// window (import end, barrier exits, per-shard execute spans), never per
/// event; per-event profiling work is limited to local integer
/// increments behind an `Option` branch.
#[allow(clippy::too_many_arguments)]
fn worker_loop<E: Send, W: EventHandler<E>, M: ShardMap<E>>(
    widx: usize,
    first_shard: usize,
    mut shards: Vec<Shard<E>>,
    worlds: &mut [W],
    map: &M,
    look: SimDuration,
    horizon: SimTime,
    max_events: u64,
    co: &Coordination<E>,
    opts: WorkerOpts,
) -> (RunOutcome, Vec<Shard<E>>, u64, Option<WorkerOut>) {
    // If this worker panics (handler bug, lookahead violation), poison
    // the barrier so the others panic out instead of spinning forever.
    let _guard = PoisonGuard(&co.poison);
    let t0 = opts.t0;
    let loop_start = opts.prof_cap.map(|_| elapsed_ns(t0));
    let mut out = opts.prof_cap.map(|cap| {
        (
            WorkerOut {
                wp: WorkerProfile {
                    worker: widx,
                    first_shard,
                    shards: shards.len(),
                    ..Default::default()
                },
                shard_events: vec![0; shards.len()],
                shard_busy_ns: vec![0; shards.len()],
                traffic: vec![0; shards.len() * co.nshards],
            },
            cap,
        )
    });
    let mut beat = opts.telemetry.map(|cfg| BeatState::new(cfg, t0));
    let mut executed_total: u64 = 0;
    let mut prev_w_end = SimTime::ZERO;
    let outcome = loop {
        // Phase 1: import cross-shard events staged in the previous
        // window, then publish this block's minimum head and event count.
        let phase_start = out.is_some().then(|| elapsed_ns(t0));
        for (i, shard) in shards.iter_mut().enumerate() {
            let dst = first_shard + i;
            for src in 0..co.nshards {
                let mut staged = co.outboxes[src][dst].lock().expect("outbox poisoned");
                for item in staged.drain(..) {
                    debug_assert!(
                        item.at >= prev_w_end,
                        "conservative window violated by an import at {}",
                        item.at
                    );
                    shard.queue.push(item);
                }
            }
        }
        if co.track_pending {
            for (i, shard) in shards.iter().enumerate() {
                co.pending[first_shard + i].store(shard.queue.len() as u64, MemOrd::Relaxed);
            }
        }
        let local_min = shards
            .iter()
            .filter_map(|s| s.head_time())
            .min()
            .map_or(u64::MAX, |t| t.0);
        co.heads[widx].store(local_min, MemOrd::SeqCst);
        co.executed[widx].store(executed_total, MemOrd::SeqCst);
        let merge_end = out.is_some().then(|| elapsed_ns(t0));
        co.barrier.wait(&co.poison);
        if let (Some((o, _)), Some(ps), Some(me)) = (out.as_mut(), phase_start, merge_end) {
            o.wp.merge_ns += me.saturating_sub(ps);
            o.wp.barrier_publish_ns += elapsed_ns(t0).saturating_sub(me);
        }

        // Phase 2: every worker independently computes the identical
        // window decision from the published snapshot.
        let t = co
            .heads
            .iter()
            .map(|h| h.load(MemOrd::SeqCst))
            .min()
            .expect("at least one worker");
        let total: u64 = co.executed.iter().map(|h| h.load(MemOrd::SeqCst)).sum();
        if t == u64::MAX {
            break RunOutcome::Drained;
        }
        if t > horizon.0 {
            break RunOutcome::HorizonReached;
        }
        if total >= max_events {
            break RunOutcome::BudgetExhausted;
        }
        if let Some(b) = beat.as_mut() {
            let windows = out.as_ref().map_or(b.windows_seen, |(o, _)| o.wp.windows);
            b.maybe_emit(SimTime(t), windows, total, horizon, || {
                co.pending.iter().map(|p| p.load(MemOrd::Relaxed)).collect()
            });
            b.windows_seen += 1;
        }
        let w_end = ParEngine::<E, M>::window_end(SimTime(t), look, horizon);

        // Phase 3: execute every owned event inside [t, w_end), staging
        // cross-shard events into the outboxes.
        let exec_start = out.is_some().then(|| elapsed_ns(t0));
        let mut window_events = 0u64;
        for (i, shard) in shards.iter_mut().enumerate() {
            let sidx = first_shard + i;
            let shard_start = out.is_some().then(|| elapsed_ns(t0));
            let mut shard_executed = 0u64;
            while shard.head_time().is_some_and(|h| h < w_end) {
                let ev = shard.queue.pop().expect("peeked");
                shard.last_at = ev.at;
                let born = ev.at;
                let mut sched = Scheduler::fresh(born);
                worlds[i].handle(ev.event, &mut sched);
                executed_total += 1;
                shard_executed += 1;
                for (at, event) in sched.into_pending() {
                    let birth = BirthKey {
                        time: born,
                        origin: sidx as u32 + 1,
                        seq: shard.birth_seq,
                    };
                    shard.birth_seq += 1;
                    let dst = map.shard_of(&event);
                    let item = ParScheduled { at, birth, event };
                    if dst == sidx {
                        shard.queue.push(item);
                    } else {
                        assert!(
                            at >= born + look,
                            "lookahead violation: shard {sidx} scheduled a \
                             cross-shard event at {at}, less than {look} after {born}"
                        );
                        if let Some((o, _)) = out.as_mut() {
                            o.traffic[i * co.nshards + dst] += 1;
                        }
                        co.outboxes[sidx][dst]
                            .lock()
                            .expect("outbox poisoned")
                            .push(item);
                    }
                }
            }
            if let (Some((o, _)), Some(ss)) = (out.as_mut(), shard_start) {
                o.shard_events[i] += shard_executed;
                o.shard_busy_ns[i] += elapsed_ns(t0).saturating_sub(ss);
            }
            window_events += shard_executed;
        }
        let exec_end = out.is_some().then(|| elapsed_ns(t0));
        if let (Some((o, cap)), Some(es), Some(ee)) = (out.as_mut(), exec_start, exec_end) {
            let exec_ns = ee.saturating_sub(es);
            o.wp.busy_ns += exec_ns;
            o.wp.windows += 1;
            o.wp.active_windows += u64::from(window_events > 0);
            o.wp.events += window_events;
            if o.wp.samples.len() < *cap {
                o.wp.samples.push(WindowSample {
                    window: o.wp.windows - 1,
                    start_ns: es,
                    exec_ns,
                    events: window_events,
                    sim_ps: t,
                });
            }
        }
        prev_w_end = w_end;
        co.barrier.wait(&co.poison);
        if let (Some((o, _)), Some(ee)) = (out.as_mut(), exec_end) {
            o.wp.barrier_window_ns += elapsed_ns(t0).saturating_sub(ee);
        }
    };
    if let (Some((o, _)), Some(start)) = (out.as_mut(), loop_start) {
        o.wp.loop_ns = elapsed_ns(t0).saturating_sub(start);
    }
    (outcome, shards, executed_total, out.map(|(o, _)| o))
}

/// A reusable spin barrier (std's `Barrier` parks threads; windows are
/// microseconds apart, so spinning is the right trade). Poison-aware:
/// when a sibling panics, waiters panic out instead of hanging.
struct SpinBarrier {
    total: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            total,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self, poison: &AtomicBool) {
        let gen = self.generation.load(MemOrd::SeqCst);
        if self.arrived.fetch_add(1, MemOrd::SeqCst) + 1 == self.total {
            self.arrived.store(0, MemOrd::SeqCst);
            self.generation.fetch_add(1, MemOrd::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(MemOrd::SeqCst) == gen {
                if poison.load(MemOrd::SeqCst) {
                    panic!("parallel DES worker aborted: a sibling worker panicked");
                }
                // Spin briefly for the common in-cache handoff, then
                // yield: with more workers than cores a pure spin burns
                // whole scheduler quanta waiting for a descheduled peer.
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Sets the poison flag if dropped during a panic unwind.
struct PoisonGuard<'a>(&'a AtomicBool);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, MemOrd::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy sharded machine: `nshards` counters passing tokens. Local
    /// hops may be arbitrarily fast; ring hops to the next shard respect
    /// the lookahead.
    const LOOK: SimDuration = SimDuration::from_ns(50);

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Token {
        shard: usize,
        hops_left: u32,
        tag: u64,
    }

    struct RingMap {
        n: usize,
    }

    impl ShardMap<Token> for RingMap {
        fn shard_count(&self) -> usize {
            self.n
        }
        fn shard_of(&self, ev: &Token) -> usize {
            ev.shard
        }
        fn lookahead(&self) -> SimDuration {
            LOOK
        }
    }

    /// Per-shard world: records (time, tag) pairs; forwards tokens.
    struct RingWorld {
        shard: usize,
        nshards: usize,
        log: Vec<(u64, u64)>,
    }

    impl EventHandler<Token> for RingWorld {
        fn handle(&mut self, ev: Token, sched: &mut Scheduler<Token>) {
            assert_eq!(ev.shard, self.shard, "event routed to the wrong shard");
            self.log.push((sched.now().as_ps(), ev.tag));
            if ev.hops_left == 0 {
                return;
            }
            // A fast local bounce (well under the lookahead) ...
            sched.after(
                SimDuration::from_ps(7),
                Token {
                    shard: self.shard,
                    hops_left: 0,
                    tag: ev.tag * 1000 + 1,
                },
            );
            // ... and a ring hop to the next shard at exactly the bound.
            sched.after(
                LOOK,
                Token {
                    shard: (self.shard + 1) % self.nshards,
                    hops_left: ev.hops_left - 1,
                    tag: ev.tag + 1,
                },
            );
        }
    }

    fn run_ring(threads: usize, nshards: usize, tokens: u32) -> (Vec<Vec<(u64, u64)>>, u64) {
        let mut eng = ParEngine::new(RingMap { n: nshards }, threads);
        let mut worlds: Vec<RingWorld> = (0..nshards)
            .map(|s| RingWorld {
                shard: s,
                nshards,
                log: Vec::new(),
            })
            .collect();
        for k in 0..tokens {
            eng.schedule_at(
                SimTime::from_ns(k as u64),
                Token {
                    shard: (k as usize) % nshards,
                    hops_left: 20,
                    tag: 10_000 * k as u64,
                },
            );
        }
        eng.run(&mut worlds);
        (
            worlds.into_iter().map(|w| w.log).collect(),
            eng.events_processed(),
        )
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        let (seq, n1) = run_ring(1, 4, 6);
        for threads in [2, 3, 4, 8] {
            let (par, np) = run_ring(threads, 4, 6);
            assert_eq!(seq, par, "{threads}-thread run diverged");
            assert_eq!(n1, np);
        }
    }

    #[test]
    fn horizon_and_budget_stop_consistently() {
        let run = |threads: usize, horizon: SimTime, budget: u64| {
            let nshards = 3;
            let mut eng = ParEngine::new(RingMap { n: nshards }, threads);
            let mut worlds: Vec<RingWorld> = (0..nshards)
                .map(|s| RingWorld {
                    shard: s,
                    nshards,
                    log: Vec::new(),
                })
                .collect();
            eng.schedule_at(
                SimTime::ZERO,
                Token {
                    shard: 0,
                    hops_left: 30,
                    tag: 0,
                },
            );
            let out = eng.run_until(&mut worlds, horizon, budget);
            let logs: Vec<_> = worlds.into_iter().map(|w| w.log).collect();
            (out, logs, eng.events_processed(), eng.pending())
        };
        // An event scheduled exactly at the horizon fires in both
        // executors (50 ns hops: the token lands at multiples of 50 ns).
        let h = SimTime::from_ns(150);
        let a = run(1, h, u64::MAX);
        let b = run(4, h, u64::MAX);
        assert_eq!(a, b);
        assert_eq!(a.0, RunOutcome::HorizonReached);
        assert!(a.1.iter().flatten().any(|&(t, _)| t == h.as_ps()));
        // Budget exhaustion is window-granular but thread-count-invariant.
        let c = run(1, SimTime(u64::MAX), 9);
        let d = run(4, SimTime(u64::MAX), 9);
        assert_eq!(c, d);
        assert_eq!(c.0, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn drained_run_reports_now_and_counts() {
        let nshards = 2;
        let mut eng = ParEngine::new(RingMap { n: nshards }, 2);
        let mut worlds: Vec<RingWorld> = (0..nshards)
            .map(|s| RingWorld {
                shard: s,
                nshards,
                log: Vec::new(),
            })
            .collect();
        eng.schedule_at(
            SimTime::ZERO,
            Token {
                shard: 0,
                hops_left: 4,
                tag: 0,
            },
        );
        eng.run(&mut worlds);
        // 5 ring arrivals + 4 local bounces (the last arrival has
        // hops_left == 0 and spawns nothing).
        assert_eq!(eng.events_processed(), 9);
        assert_eq!(eng.pending(), 0);
        // Last event: the final ring arrival at 4×50 ns (the last bounce
        // fires earlier, at 3×50 ns + 7 ps).
        assert_eq!(eng.now(), SimTime(4 * 50_000));
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn undeclared_cross_shard_event_panics() {
        struct Cheater;
        impl EventHandler<Token> for Cheater {
            fn handle(&mut self, ev: Token, sched: &mut Scheduler<Token>) {
                if ev.hops_left > 0 {
                    // Cross-shard with a delay below the declared bound.
                    sched.after(
                        SimDuration::from_ns(1),
                        Token {
                            shard: 1,
                            hops_left: 0,
                            tag: 0,
                        },
                    );
                }
            }
        }
        let mut eng = ParEngine::new(RingMap { n: 2 }, 1);
        let mut worlds = vec![Cheater, Cheater];
        eng.schedule_at(
            SimTime::ZERO,
            Token {
                shard: 0,
                hops_left: 1,
                tag: 0,
            },
        );
        eng.run(&mut worlds);
    }

    fn run_ring_profiled(
        threads: usize,
        nshards: usize,
        tokens: u32,
    ) -> (Vec<Vec<(u64, u64)>>, ParProfile) {
        let mut eng = ParEngine::new(RingMap { n: nshards }, threads);
        eng.enable_profiling();
        let mut worlds: Vec<RingWorld> = (0..nshards)
            .map(|s| RingWorld {
                shard: s,
                nshards,
                log: Vec::new(),
            })
            .collect();
        for k in 0..tokens {
            eng.schedule_at(
                SimTime::from_ns(k as u64),
                Token {
                    shard: (k as usize) % nshards,
                    hops_left: 20,
                    tag: 10_000 * k as u64,
                },
            );
        }
        eng.run(&mut worlds);
        let prof = eng.take_profile().expect("profiling was enabled");
        (worlds.into_iter().map(|w| w.log).collect(), prof)
    }

    #[test]
    fn profiling_perturbs_nothing_and_event_counts_are_thread_invariant() {
        // Profiling on must not change the simulated results...
        let (plain, _) = run_ring(1, 4, 6);
        let (seq, p1) = run_ring_profiled(1, 4, 6);
        assert_eq!(plain, seq, "profiling changed the simulation");
        // ...and the event-level profile fields are deterministic:
        // identical at any thread count, like every simulated observable.
        for threads in [2, 4] {
            let (par, pn) = run_ring_profiled(threads, 4, 6);
            assert_eq!(seq, par, "{threads}-thread profiled run diverged");
            assert_eq!(p1.windows, pn.windows, "window count diverged");
            assert_eq!(p1.events, pn.events);
            assert_eq!(p1.shard_events, pn.shard_events);
            assert_eq!(p1.traffic, pn.traffic);
            assert_eq!(pn.threads, threads.min(4));
            assert_eq!(pn.workers.len(), threads.min(4));
        }
        // Basic shape: events tally, workers account for all shards.
        assert_eq!(p1.events, p1.shard_events.iter().sum::<u64>());
        assert_eq!(p1.cross_shard_events(), p1.traffic.iter().sum::<u64>());
        for s in 0..4 {
            assert_eq!(p1.traffic_between(s, s), 0, "diagonal must be empty");
        }
    }

    #[test]
    fn worker_phase_accounting_telescopes_to_loop_time() {
        let (_, prof) = run_ring_profiled(4, 4, 8);
        assert_eq!(prof.workers.len(), 4);
        for w in &prof.workers {
            // The named phases are disjoint sub-spans of the loop, so
            // busy + merge + barriers never exceeds loop time, and the
            // residual accessor closes the sum exactly.
            let named = w.busy_ns + w.merge_ns + w.barrier_publish_ns + w.barrier_window_ns;
            assert!(named <= w.loop_ns, "phases exceed loop: {w:?}");
            assert_eq!(named + w.windowing_ns(), w.loop_ns);
            assert_eq!(w.windows, prof.windows);
        }
        // Every worker's loop fits inside the run's wall clock.
        for w in &prof.workers {
            assert!(w.loop_ns <= prof.wall_ns);
        }
    }

    #[test]
    fn telemetry_heartbeats_stream_during_runs() {
        use std::sync::{Arc, Mutex};
        #[derive(Default)]
        struct Capture(Mutex<Vec<Heartbeat>>);
        impl crate::profile::TelemetrySink for Capture {
            fn emit(&self, beat: &Heartbeat) {
                self.0.lock().unwrap().push(beat.clone());
            }
        }
        let run = |threads: usize| {
            let nshards = 3;
            let sink = Arc::new(Capture::default());
            let mut eng = ParEngine::new(RingMap { n: nshards }, threads);
            eng.enable_telemetry(TelemetryConfig {
                period: std::time::Duration::ZERO,
                sink: sink.clone(),
            });
            let mut worlds: Vec<RingWorld> = (0..nshards)
                .map(|s| RingWorld {
                    shard: s,
                    nshards,
                    log: Vec::new(),
                })
                .collect();
            eng.schedule_at(
                SimTime::ZERO,
                Token {
                    shard: 0,
                    hops_left: 30,
                    tag: 0,
                },
            );
            let out = eng.run_until(&mut worlds, SimTime::from_ns(1400), u64::MAX);
            assert_eq!(out, RunOutcome::HorizonReached);
            let beats = sink.0.lock().unwrap().clone();
            (beats, worlds.into_iter().map(|w| w.log).collect::<Vec<_>>())
        };
        let (beats1, log1) = run(1);
        let (beats3, log3) = run(3);
        assert_eq!(log1, log3, "telemetry perturbed the simulation");
        for beats in [&beats1, &beats3] {
            // Zero period: a beat per window boundary.
            assert!(!beats.is_empty(), "no heartbeats with a zero period");
            for b in beats {
                assert_eq!(b.shard_pending.len(), 3);
                let line = b.to_json_line();
                assert!(line.starts_with("{\"type\":\"heartbeat\""));
                // Finite horizon: progress must be reported and sane.
                let p = b.progress.expect("finite horizon implies progress");
                assert!((0.0..=1.0).contains(&p), "progress {p} out of range");
            }
            // Simulated time and event counts advance monotonically.
            for pair in beats.windows(2) {
                assert!(pair[1].sim_ps >= pair[0].sim_ps);
                assert!(pair[1].events >= pair[0].events);
            }
        }
    }

    #[test]
    fn executor_trait_unifies_engines() {
        fn drive<X: Executor<Token, [RingWorld]> + ?Sized>(
            x: &mut X,
            worlds: &mut [RingWorld],
        ) -> RunOutcome {
            x.run_until_on(worlds, SimTime(u64::MAX), u64::MAX)
        }
        let mut eng = ParEngine::new(RingMap { n: 2 }, 2);
        let mut worlds: Vec<RingWorld> = (0..2)
            .map(|s| RingWorld {
                shard: s,
                nshards: 2,
                log: Vec::new(),
            })
            .collect();
        eng.schedule_at(
            SimTime::ZERO,
            Token {
                shard: 0,
                hops_left: 3,
                tag: 0,
            },
        );
        assert_eq!(drive(&mut eng, &mut worlds), RunOutcome::Drained);
        assert_eq!(Executor::<Token, [RingWorld]>::pending(&eng), 0);
    }
}
