//! Conservative parallel discrete-event execution over sharded queues.
//!
//! ## Model
//!
//! The event space is partitioned into **shards** by a caller-supplied
//! [`ShardMap`] (the network layer maps torus regions to shards). Each
//! shard owns its own priority queue and its own world state; a handler
//! running on shard *s* may schedule events for any shard, but every
//! **cross-shard** event must be scheduled at least [`ShardMap::lookahead`]
//! after the current time. That bound is exactly the paper's premise
//! turned inward: Anton's fixed, known minimum link latency means a node
//! cannot affect a remote node sooner than the wire allows — so a shard
//! cannot affect another shard sooner than the minimum cross-shard event
//! latency, and events closer than that are causally independent.
//!
//! Execution proceeds in **windows**. With `T` the global minimum pending
//! event time and `L` the lookahead, every shard may safely execute all
//! of its events in `[T, T + L)` without hearing from its neighbors:
//! any cross-shard event generated inside the window lands at or after
//! `T + L` (asserted at runtime). Cross-shard events are staged in
//! outboxes and exchanged at window boundaries.
//!
//! In the default [`LookaheadMode::Adaptive`], the uniform `T + L` end is
//! replaced per shard `b` by the minimum over *other live* shards `a` of
//! `head(a) + dist(a, b)`, where `dist` is the min-plus closure of the
//! per-pair [`LookaheadMatrix`]: shard pairs coupled only through slow
//! paths get windows far wider than the single cheapest link allows, and
//! a shard whose peers have drained runs clear to the horizon instead of
//! spinning at the barrier (demand-driven window extension). Every
//! per-pair bound is at least the global one, so each adaptive window
//! executes a superset of the uniform window starting at the same `T` —
//! same events, same per-shard order, fewer barriers.
//!
//! ## Determinism
//!
//! Every event carries a **birth key** `(birth_time, origin_shard, seq)`
//! assigned when it is scheduled: `birth_time` is the simulated time of
//! the scheduling handler, `origin_shard` the shard that scheduled it
//! (0 for pre-run seeds), and `seq` a per-shard schedule counter. Events
//! execute in `(time, birth_key)` order, a total order independent of
//! thread interleaving. Because shard worlds are disjoint, a shard's
//! execution depends only on its own event sequence — which the window
//! protocol makes identical whatever the worker count — so an N-thread
//! run is bit-identical to the 1-thread run, which in turn executes in
//! the *global* `(time, birth_key)` order like the sequential
//! [`Engine`](crate::Engine) does (with the shard-aware tie-break).

use crate::calendar::{CalendarQueue, EventArena};
use crate::engine::{EventHandler, RunOutcome, Scheduler};
use crate::profile::{
    Heartbeat, ParProfile, TelemetryConfig, WindowSample, WorkerProfile, DEFAULT_SAMPLE_CAP,
};
use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as MemOrd};
use std::sync::Mutex;
use std::time::Instant;

/// Partition of the event space, plus the causality bound that makes
/// conservative windows safe.
pub trait ShardMap<E>: Sync {
    /// Number of shards. Fixed for the life of a run — and, crucially,
    /// independent of the worker-thread count, so the event partition
    /// (and therefore every birth key) is identical at any thread count.
    fn shard_count(&self) -> usize;

    /// The shard that executes `event`.
    fn shard_of(&self, event: &E) -> usize;

    /// Minimum delay of any cross-shard event: a handler executing at
    /// time `t` may only schedule events for *other* shards at or after
    /// `t + lookahead()`. Violations panic at schedule time.
    fn lookahead(&self) -> SimDuration;

    /// Per-pair minimum cross-shard latencies. The default is the uniform
    /// matrix at [`ShardMap::lookahead`]; maps that know the topology
    /// (the network layer's slab plans) override this with per-pair
    /// bounds, widening windows between shards only coupled through slow
    /// paths. Every finite entry must be at least `lookahead()` — the
    /// engine validates this at construction, because the runtime
    /// cross-shard assertion checks the per-pair bound in both modes.
    fn lookahead_matrix(&self) -> LookaheadMatrix {
        LookaheadMatrix::uniform(self.shard_count(), self.lookahead())
    }
}

/// Common executor interface over the sequential [`Engine`](crate::Engine)
/// (`W = world`) and the parallel [`ParEngine`] (`W = [world per shard]`).
pub trait Executor<E, W: ?Sized> {
    /// Run until the queue drains, `horizon` passes, or `max_events`
    /// events have executed. Events stamped exactly at the horizon fire.
    fn run_until_on(&mut self, world: &mut W, horizon: SimTime, max_events: u64) -> RunOutcome;

    /// Time of the last event processed.
    fn now(&self) -> SimTime;

    /// Total events processed so far.
    fn events_processed(&self) -> u64;

    /// Events currently pending.
    fn pending(&self) -> usize;
}

impl<E, W: EventHandler<E>> Executor<E, W> for crate::Engine<E> {
    fn run_until_on(&mut self, world: &mut W, horizon: SimTime, max_events: u64) -> RunOutcome {
        self.run_until(world, horizon, max_events)
    }

    fn now(&self) -> SimTime {
        crate::Engine::now(self)
    }

    fn events_processed(&self) -> u64 {
        crate::Engine::events_processed(self)
    }

    fn pending(&self) -> usize {
        crate::Engine::pending(self)
    }
}

/// Which window bound the engine applies per shard per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookaheadMode {
    /// Classic uniform windows: every shard runs to `T + lookahead()`,
    /// the single global bound. Kept as the comparison baseline and for
    /// maps whose matrix adds nothing over the global bound.
    Global,
    /// Per-shard windows from the lookahead matrix: shard `b` runs to the
    /// minimum over other live shards `a` of `head(a) + dist(a, b)`.
    /// Never narrower than a Global window at the same start time, and
    /// bit-identical in simulated results (the window partition is a pure
    /// function of published heads and the static matrix, so it is the
    /// same at every thread count and in the merged reference executor).
    #[default]
    Adaptive,
}

impl std::fmt::Display for LookaheadMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LookaheadMode::Global => "global",
            LookaheadMode::Adaptive => "adaptive",
        })
    }
}

/// Per-shard-pair minimum cross-shard event latency, row-major in
/// picoseconds. `u64::MAX` marks a pair with no direct path (no single
/// event may cross it); the diagonal is unused. The engine takes the
/// min-plus closure ([`LookaheadMatrix::closure_ps`]) to bound multi-hop
/// relays, so `set` only needs the *direct* single-event bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookaheadMatrix {
    shards: usize,
    direct: Vec<u64>,
}

impl LookaheadMatrix {
    /// A matrix declaring every ordered pair directly reachable at
    /// exactly `look` — the classic single-bound model.
    pub fn uniform(shards: usize, look: SimDuration) -> LookaheadMatrix {
        let mut m = LookaheadMatrix::unreachable(shards);
        for a in 0..shards {
            for b in 0..shards {
                if a != b {
                    m.direct[a * shards + b] = look.0;
                }
            }
        }
        m
    }

    /// A matrix declaring no pair directly reachable; build topology up
    /// with [`LookaheadMatrix::set`].
    pub fn unreachable(shards: usize) -> LookaheadMatrix {
        assert!(shards > 0, "a lookahead matrix needs at least one shard");
        let mut direct = vec![u64::MAX; shards * shards];
        for a in 0..shards {
            direct[a * shards + a] = 0;
        }
        LookaheadMatrix { shards, direct }
    }

    /// Declare the minimum latency of a single event crossing
    /// `src -> dst`. Ignored for `src == dst` (local events are unbounded
    /// by construction).
    pub fn set(&mut self, src: usize, dst: usize, bound: SimDuration) {
        if src != dst {
            self.direct[src * self.shards + dst] = bound.0;
        }
    }

    /// Number of shards the matrix covers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The direct bound for `src -> dst` in picoseconds (`u64::MAX` if
    /// unreachable, `0` on the diagonal).
    pub fn direct_ps(&self, src: usize, dst: usize) -> u64 {
        self.direct[src * self.shards + dst]
    }

    /// The direct bound for `src -> dst`, `None` if the pair has no
    /// direct path.
    pub fn direct(&self, src: usize, dst: usize) -> Option<SimDuration> {
        match self.direct_ps(src, dst) {
            u64::MAX => None,
            ps => Some(SimDuration(ps)),
        }
    }

    /// The smallest off-diagonal direct bound — the tightest coupling in
    /// the machine, which is what a single global lookahead must assume
    /// everywhere. `None` if no pair is directly reachable.
    pub fn min_direct(&self) -> Option<SimDuration> {
        (0..self.shards * self.shards)
            .filter(|i| i / self.shards != i % self.shards)
            .map(|i| self.direct[i])
            .filter(|&d| d != u64::MAX)
            .min()
            .map(SimDuration)
    }

    /// Min-plus (Floyd–Warshall) closure of the direct bounds: entry
    /// `a * shards + b` is the minimum total latency of *any* event chain
    /// carrying influence from shard `a` into shard `b`, relays included.
    /// `u64::MAX` means no chain exists; the diagonal is `0`.
    pub fn closure_ps(&self) -> Vec<u64> {
        let n = self.shards;
        let mut dist = self.direct.clone();
        for a in 0..n {
            dist[a * n + a] = 0;
        }
        for k in 0..n {
            for a in 0..n {
                let dak = dist[a * n + k];
                if dak == u64::MAX {
                    continue;
                }
                for b in 0..n {
                    let dkb = dist[k * n + b];
                    if dkb == u64::MAX {
                        continue;
                    }
                    let via = dak.saturating_add(dkb);
                    if via < dist[a * n + b] {
                        dist[a * n + b] = via;
                    }
                }
            }
        }
        dist
    }
}

/// The deterministic total-order tie-break: where and when an event was
/// born. Seeds use origin 0; events scheduled by shard `s` use `s + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct BirthKey {
    time: SimTime,
    origin: u32,
    seq: u64,
}

/// A staged cross-shard event in flight between windows: fires at `at`;
/// ties in time break by birth key. Queue ordering itself lives in the
/// per-shard [`CalendarQueue`], which keys on `(at, birth)`.
struct ParScheduled<E> {
    at: SimTime,
    birth: BirthKey,
    event: E,
}

/// One shard's queue plus its deterministic counters. The queue holds
/// 4-byte arena handles keyed by `(at, birth)`; payloads live in the
/// arena and move exactly twice (in at schedule, out at execute).
struct Shard<E> {
    queue: CalendarQueue<BirthKey, u32>,
    arena: EventArena<E>,
    /// Per-shard schedule counter feeding birth keys.
    birth_seq: u64,
    /// Time of the last event this shard executed.
    last_at: SimTime,
}

impl<E> Shard<E> {
    fn new() -> Shard<E> {
        Shard {
            queue: CalendarQueue::new(),
            arena: EventArena::new(),
            birth_seq: 0,
            last_at: SimTime::ZERO,
        }
    }

    fn push(&mut self, at: SimTime, birth: BirthKey, event: E) {
        let handle = self.arena.insert(event);
        self.queue.push(at, birth, handle);
    }

    fn pop(&mut self) -> Option<(SimTime, BirthKey, E)> {
        self.queue
            .pop()
            .map(|(at, birth, handle)| (at, birth, self.arena.take(handle)))
    }

    fn peek(&mut self) -> Option<(SimTime, BirthKey)> {
        self.queue.peek_key()
    }

    /// Head time in picoseconds, `u64::MAX` when drained — the exact
    /// value published to the coordination snapshot.
    fn head_ps(&mut self) -> u64 {
        self.queue.peek_at().map_or(u64::MAX, |t| t.0)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// The conservative parallel event engine: one queue per shard, windowed
/// execution, deterministic at any worker count. See the module docs for
/// the protocol and the determinism argument.
pub struct ParEngine<E, M> {
    map: M,
    threads: usize,
    shards: Vec<Shard<E>>,
    /// Which window bound each run applies.
    mode: LookaheadMode,
    /// The map's per-pair direct bounds (validated at construction).
    matrix: LookaheadMatrix,
    /// Min-plus closure of `matrix`, feeding adaptive window ends.
    dist: Vec<u64>,
    /// Seeds (pre-run scheduled events) number from a single counter.
    seed_seq: u64,
    events_processed: u64,
    now: SimTime,
    /// `Some(sample_cap)` when runtime profiling is enabled.
    profiling: Option<usize>,
    /// Accumulated profile across `run_until` calls (profiling enabled).
    profile: Option<ParProfile>,
    /// Live heartbeat configuration, if any.
    telemetry: Option<TelemetryConfig>,
}

impl<E: Send, M: ShardMap<E>> ParEngine<E, M> {
    /// Build an engine over `map`'s shards, executing with `threads`
    /// workers (clamped to the shard count; 1 runs the sequential
    /// global-order reference executor).
    pub fn new(map: M, threads: usize) -> ParEngine<E, M> {
        let n = map.shard_count();
        assert!(n > 0, "shard map must define at least one shard");
        assert!(
            n == 1 || map.lookahead() > SimDuration::ZERO,
            "multi-shard execution requires a positive lookahead"
        );
        let matrix = map.lookahead_matrix();
        assert_eq!(
            matrix.shards(),
            n,
            "lookahead matrix must cover every shard"
        );
        // Both modes assert cross-shard events against the per-pair
        // bounds, and Global-mode windows span the single global bound —
        // so every finite pair bound must be positive and no tighter than
        // the global one, or a matrix-legal event could land inside a
        // Global window.
        let floor = map.lookahead().0;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let d = matrix.direct_ps(a, b);
                assert!(
                    d == u64::MAX || (d > 0 && d >= floor),
                    "lookahead matrix entry {a}->{b} ({d} ps) is below the \
                     global bound ({floor} ps)"
                );
            }
        }
        let dist = matrix.closure_ps();
        ParEngine {
            map,
            threads: threads.max(1),
            shards: (0..n).map(|_| Shard::new()).collect(),
            mode: LookaheadMode::default(),
            matrix,
            dist,
            seed_seq: 0,
            events_processed: 0,
            now: SimTime::ZERO,
            profiling: None,
            profile: None,
            telemetry: None,
        }
    }

    /// Select the window bound for subsequent runs. Simulated results are
    /// bit-identical in both modes; only the window partition (and hence
    /// barrier count and wall time) changes.
    pub fn set_lookahead_mode(&mut self, mode: LookaheadMode) {
        self.mode = mode;
    }

    /// The window bound mode in force.
    pub fn lookahead_mode(&self) -> LookaheadMode {
        self.mode
    }

    /// The validated per-pair lookahead matrix.
    pub fn lookahead_matrix(&self) -> &LookaheadMatrix {
        &self.matrix
    }

    /// The window policy a run applies: the mode plus owned copies of the
    /// static bounds, so workers can consult it while the engine's shard
    /// state is carved up.
    fn window_policy(&self) -> WindowPolicy {
        WindowPolicy {
            mode: self.mode,
            look_ps: self.map.lookahead().0,
            nshards: self.shards.len(),
            direct: self.matrix.direct.clone(),
            dist: self.dist.clone(),
        }
    }

    /// Enable runtime profiling with the default per-worker window-sample
    /// cap. Profiling captures wall-clock phase accounting per worker and
    /// deterministic event/window/traffic counts per shard; it never
    /// touches event ordering, so simulated results are bit-identical
    /// with profiling on or off.
    pub fn enable_profiling(&mut self) {
        self.enable_profiling_with_cap(DEFAULT_SAMPLE_CAP);
    }

    /// Enable runtime profiling, retaining at most `sample_cap` window
    /// samples per worker (`0` keeps summary counters only).
    pub fn enable_profiling_with_cap(&mut self, sample_cap: usize) {
        self.profiling = Some(sample_cap);
    }

    /// The accumulated runtime profile, if profiling was enabled before
    /// a run.
    pub fn profile(&self) -> Option<&ParProfile> {
        self.profile.as_ref()
    }

    /// Take the accumulated profile, leaving the accumulator empty for
    /// subsequent runs.
    pub fn take_profile(&mut self) -> Option<ParProfile> {
        self.profile.take()
    }

    /// Stream live [`Heartbeat`]s during runs: at window boundaries, once
    /// at least `period` of wall time has passed since the previous beat,
    /// a snapshot (window rate, events/s, per-shard occupancy, ETA) is
    /// handed to `sink`. Telemetry reads coordination state the protocol
    /// already publishes — it cannot perturb simulated results.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry = Some(cfg);
    }

    /// Disable live telemetry.
    pub fn disable_telemetry(&mut self) {
        self.telemetry = None;
    }

    /// The shard map in force.
    pub fn map(&self) -> &M {
        &self.map
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads the run methods will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Time of the last event processed (max across shards).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Events currently pending across all shards.
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Seed an event at absolute time `at`, routed by the shard map.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let shard = self.map.shard_of(&event);
        self.schedule_at_shard(shard, at, event);
    }

    /// Seed an event on an explicit shard (for broadcast-style kickoff
    /// events whose shard the map cannot derive from the value alone).
    pub fn schedule_at_shard(&mut self, shard: usize, at: SimTime, event: E) {
        assert!(at >= self.now, "causality violation");
        let birth = BirthKey {
            time: self.now,
            origin: 0,
            seq: self.seed_seq,
        };
        self.seed_seq += 1;
        self.shards[shard].push(at, birth, event);
    }

    /// Run until every shard's queue drains. Panics if the run stops for
    /// any other reason.
    pub fn run<W: EventHandler<E> + Send>(&mut self, worlds: &mut [W]) {
        match self.run_until(worlds, SimTime(u64::MAX), u64::MAX) {
            RunOutcome::Drained => {}
            other => unreachable!("unbounded run ended with {other:?}"),
        }
    }

    /// Run until drained, past `horizon`, or `max_events` processed.
    /// Events stamped exactly at the horizon fire (same boundary rule as
    /// [`Engine::run_until`](crate::Engine::run_until)). The event budget
    /// is checked at window boundaries — deterministically, at the same
    /// points whatever the thread count.
    ///
    /// `worlds` holds one world per shard; worlds must be disjoint (no
    /// shared mutable state) for the determinism guarantee to hold.
    pub fn run_until<W: EventHandler<E> + Send>(
        &mut self,
        worlds: &mut [W],
        horizon: SimTime,
        max_events: u64,
    ) -> RunOutcome {
        assert_eq!(
            worlds.len(),
            self.shards.len(),
            "one world per shard required"
        );
        let nworkers = self.threads.min(self.shards.len());
        let t0 = Instant::now();
        let mut run_prof = self
            .profiling
            .map(|cap| ParProfile::new(nworkers, self.shards.len(), cap));
        let outcome = if nworkers <= 1 {
            self.run_merged(worlds, horizon, max_events, &mut run_prof, t0)
        } else {
            self.run_windowed(worlds, horizon, max_events, nworkers, &mut run_prof, t0)
        };
        if let Some(mut p) = run_prof {
            p.wall_ns = elapsed_ns(t0);
            match &mut self.profile {
                None => self.profile = Some(p),
                Some(acc) => acc.absorb(&p),
            }
        }
        self.now = self
            .shards
            .iter()
            .map(|s| s.last_at)
            .max()
            .unwrap_or(SimTime::ZERO);
        outcome
    }

    /// The 1-thread reference executor: global `(time, birth)` order
    /// across all shards, window-granular horizon/budget checks. This is
    /// the "sequential engine" the windowed executor must match
    /// bit-for-bit: it computes the identical per-shard window ends from
    /// the identical head snapshot, so each window executes the identical
    /// event set. Profiling and telemetry hooks fire at window boundaries
    /// only, exactly like the windowed executor's.
    fn run_merged<W: EventHandler<E>>(
        &mut self,
        worlds: &mut [W],
        horizon: SimTime,
        max_events: u64,
        run_prof: &mut Option<ParProfile>,
        t0: Instant,
    ) -> RunOutcome {
        let policy = self.window_policy();
        let nshards = self.shards.len();
        let loop_start = run_prof.is_some().then(|| elapsed_ns(t0));
        let mut wp = run_prof.as_ref().map(|_| WorkerProfile {
            worker: 0,
            first_shard: 0,
            shards: nshards,
            ..Default::default()
        });
        let already = self.events_processed;
        let mut beat = self.telemetry.clone().map(|cfg| BeatState::new(cfg, t0));
        let mut heads = vec![u64::MAX; nshards];
        let mut ends = vec![0u64; nshards];
        // Per-shard "this window reached past the global bound" flags.
        let mut recovered = vec![false; nshards];
        let outcome = loop {
            for (i, s) in self.shards.iter_mut().enumerate() {
                heads[i] = s.head_ps();
            }
            let t = *heads.iter().min().expect("at least one shard");
            if t == u64::MAX {
                break RunOutcome::Drained;
            }
            if t > horizon.0 {
                break RunOutcome::HorizonReached;
            }
            if self.events_processed >= max_events {
                break RunOutcome::BudgetExhausted;
            }
            if let Some(b) = beat.as_mut() {
                let windows = wp.as_ref().map_or(b.windows_seen, |w| w.windows);
                b.maybe_emit(
                    SimTime(t),
                    windows,
                    self.events_processed - already,
                    horizon,
                    || self.shards.iter().map(|s| s.len() as u64).collect(),
                );
                b.windows_seen += 1;
            }
            for (b, end) in ends.iter_mut().enumerate() {
                *end = policy.shard_end(&heads, b, t, horizon);
            }
            let g_end = policy.global_end(t, horizon);
            let exec_start = wp.is_some().then(|| elapsed_ns(t0));
            let mut window_events = 0u64;
            // Global minimum (at, birth) head below its shard's end.
            while let Some((_, sidx)) = self
                .shards
                .iter_mut()
                .enumerate()
                .filter_map(|(i, s)| s.peek().map(|h| (h, i)))
                .filter(|((at, _), i)| at.0 < ends[*i])
                .min()
            {
                let (at, _birth, event) = self.shards[sidx].pop().expect("peeked");
                self.shards[sidx].last_at = at;
                let born = at;
                let mut sched = Scheduler::fresh(born);
                worlds[sidx].handle(event, &mut sched);
                self.events_processed += 1;
                window_events += 1;
                if let Some(p) = run_prof.as_mut() {
                    p.shard_events[sidx] += 1;
                }
                if wp.is_some() && policy.mode == LookaheadMode::Adaptive && at.0 >= g_end {
                    recovered[sidx] = true;
                    if let Some(w) = wp.as_mut() {
                        w.recovered_events += 1;
                    }
                }
                for (eat, event) in sched.into_pending() {
                    let birth = BirthKey {
                        time: born,
                        origin: sidx as u32 + 1,
                        seq: self.shards[sidx].birth_seq,
                    };
                    self.shards[sidx].birth_seq += 1;
                    let dst = self.map.shard_of(&event);
                    if dst != sidx {
                        policy.assert_cross(sidx, dst, born, eat);
                        if let Some(p) = run_prof.as_mut() {
                            p.traffic[sidx * p.shards + dst] += 1;
                        }
                    }
                    self.shards[dst].push(eat, birth, event);
                }
            }
            if let (Some(w), Some(start)) = (wp.as_mut(), exec_start) {
                let exec_ns = elapsed_ns(t0).saturating_sub(start);
                w.busy_ns += exec_ns;
                w.windows += 1;
                w.active_windows += u64::from(window_events > 0);
                w.events += window_events;
                for f in recovered.iter_mut() {
                    w.extended_shard_windows += u64::from(*f);
                    *f = false;
                }
                let cap = run_prof.as_ref().map_or(0, |p| p.sample_cap);
                if w.samples.len() < cap {
                    w.samples.push(WindowSample {
                        window: w.windows - 1,
                        start_ns: start,
                        exec_ns,
                        events: window_events,
                        sim_ps: t,
                    });
                }
            }
        };
        if let (Some(p), Some(mut w), Some(start)) = (run_prof.as_mut(), wp, loop_start) {
            w.loop_ns = elapsed_ns(t0).saturating_sub(start);
            p.windows = w.windows;
            p.events = w.events;
            p.recovered_events = w.recovered_events;
            p.extended_shard_windows = w.extended_shard_windows;
            // All shards execute on the single worker; attribute its
            // busy time to shards by their event share (exact per-shard
            // wall spans are only meaningful with one worker per block).
            if w.events > 0 {
                for (s, &ev) in p.shard_events.clone().iter().enumerate() {
                    p.shard_busy_ns[s] = (w.busy_ns as u128 * ev as u128 / w.events as u128) as u64;
                }
            }
            p.workers.push(w);
        }
        outcome
    }

    /// The windowed multi-worker executor. Shards are block-partitioned
    /// across persistent scoped workers; two spin-barrier crossings per
    /// window (import+reduce, execute).
    fn run_windowed<W: EventHandler<E> + Send>(
        &mut self,
        worlds: &mut [W],
        horizon: SimTime,
        max_events: u64,
        nworkers: usize,
        run_prof: &mut Option<ParProfile>,
        t0: Instant,
    ) -> RunOutcome {
        let nshards = self.shards.len();
        let policy = self.window_policy();
        let already = self.events_processed;

        // Block partition: worker w owns shards [bounds[w], bounds[w+1]).
        let bounds: Vec<usize> = (0..=nworkers).map(|w| w * nshards / nworkers).collect();

        let coord = Coordination::<E> {
            nshards,
            barrier: SpinBarrier::new(nworkers),
            poison: AtomicBool::new(false),
            heads: (0..nshards).map(|_| AtomicU64::new(u64::MAX)).collect(),
            executed: (0..nworkers).map(|_| AtomicU64::new(0)).collect(),
            outboxes: (0..nshards * nshards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
            outbox_full: (0..nshards * nshards)
                .map(|_| AtomicBool::new(false))
                .collect(),
            pending: (0..nshards).map(|_| AtomicU64::new(0)).collect(),
            track_pending: self.telemetry.is_some(),
        };

        let prof_cap = run_prof.as_ref().map(|p| p.sample_cap);
        let telemetry = self.telemetry.clone();
        let shards = std::mem::take(&mut self.shards);
        let map = &self.map;

        // Carve (shards, worlds) into per-worker chunks.
        let mut shard_chunks: Vec<Vec<Shard<E>>> = Vec::with_capacity(nworkers);
        {
            let mut rest = shards;
            for w in (0..nworkers).rev() {
                shard_chunks.push(rest.split_off(bounds[w]));
            }
            shard_chunks.reverse();
        }

        let (outcome, shards_back, total_executed) = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nworkers);
            let mut world_rest = worlds;
            for (w, chunk) in shard_chunks.into_iter().enumerate() {
                let (mine, rest) = world_rest.split_at_mut(bounds[w + 1] - bounds[w]);
                world_rest = rest;
                let co = &coord;
                let pol = &policy;
                let first_shard = bounds[w];
                let opts = WorkerOpts {
                    prof_cap,
                    t0,
                    // Worker 0 owns the heartbeat; others stay silent.
                    telemetry: if w == 0 { telemetry.clone() } else { None },
                };
                handles.push(scope.spawn(move || {
                    worker_loop(
                        w,
                        first_shard,
                        chunk,
                        mine,
                        map,
                        pol,
                        horizon,
                        max_events,
                        co,
                        opts,
                    )
                }));
            }
            let mut outcome = None;
            let mut shards_back: Vec<Shard<E>> = Vec::with_capacity(nshards);
            let mut total = 0u64;
            // Join in spawn order, so worker profiles merge in worker
            // order — the deterministic merge the profile docs promise.
            for h in handles {
                let (out, chunk, executed, wout) = h.join().expect("parallel DES worker panicked");
                // Every worker reaches the identical decision; keep one.
                outcome.get_or_insert(out);
                debug_assert_eq!(outcome, Some(out));
                if let (Some(p), Some(wo)) = (run_prof.as_mut(), wout) {
                    let first = wo.wp.first_shard;
                    for (i, &ev) in wo.shard_events.iter().enumerate() {
                        p.shard_events[first + i] += ev;
                    }
                    for (i, &b) in wo.shard_busy_ns.iter().enumerate() {
                        p.shard_busy_ns[first + i] += b;
                    }
                    for (i, &tr) in wo.traffic.iter().enumerate() {
                        p.traffic[(first + i / nshards) * nshards + i % nshards] += tr;
                    }
                    // Every worker participates in every window.
                    p.windows = p.windows.max(wo.wp.windows);
                    p.events += wo.wp.events;
                    p.recovered_events += wo.wp.recovered_events;
                    p.extended_shard_windows += wo.wp.extended_shard_windows;
                    p.workers.push(wo.wp);
                }
                shards_back.extend(chunk);
                total += executed;
            }
            (outcome.expect("at least one worker"), shards_back, total)
        });

        self.shards = shards_back;
        self.events_processed = already + total_executed;
        outcome
    }
}

/// The per-window bound calculator a run applies: the mode plus owned
/// copies of the static per-pair bounds, shared read-only by every
/// worker. All arithmetic is in picoseconds with `u64::MAX` as the
/// unreachable/drained sentinel.
struct WindowPolicy {
    mode: LookaheadMode,
    /// The single global bound ([`ShardMap::lookahead`]).
    look_ps: u64,
    nshards: usize,
    /// Direct per-pair bounds, row-major (`u64::MAX` = unreachable).
    direct: Vec<u64>,
    /// Min-plus closure of `direct`.
    dist: Vec<u64>,
}

impl WindowPolicy {
    /// Exclusive end of a uniform window starting at `t`: one global
    /// lookahead out, clamped so events exactly at the horizon still
    /// fire. A single shard has no cross-shard constraint at all.
    fn global_end(&self, t: u64, horizon: SimTime) -> u64 {
        let look = if self.nshards == 1 {
            u64::MAX
        } else {
            self.look_ps.max(1)
        };
        t.saturating_add(look).min(horizon.0.saturating_add(1))
    }

    /// Exclusive end of shard `b`'s window given the published heads.
    ///
    /// Adaptive soundness: any event a live shard `a` can ever deliver
    /// into `b` — directly or through any relay chain — fires at or after
    /// `head(a) + dist(a, b)`, because every event `a` executes this
    /// window is at `head(a)` or later and every hop adds at least its
    /// direct bound (asserted at schedule time). Taking the min over
    /// *other* live shards therefore bounds everything `b` cannot yet
    /// know about; `b`'s own events never constrain `b`. Drained shards
    /// (`head == u64::MAX`) impose no bound — that is the demand-driven
    /// window extension, decided purely from the published snapshot so it
    /// is identical at every thread count. Since `dist >= look` entrywise
    /// and every live head is `>= t`, the result is never below
    /// [`WindowPolicy::global_end`]; the shard holding the minimum head
    /// always gets an end past its own head, so every window progresses.
    fn shard_end(&self, heads: &[u64], b: usize, t: u64, horizon: SimTime) -> u64 {
        match self.mode {
            LookaheadMode::Global => self.global_end(t, horizon),
            LookaheadMode::Adaptive => {
                let n = self.nshards;
                if n == 1 {
                    return self.global_end(t, horizon);
                }
                let mut end = u64::MAX;
                for (a, &head) in heads.iter().enumerate() {
                    if a == b || head == u64::MAX {
                        continue;
                    }
                    end = end.min(head.saturating_add(self.dist[a * n + b]));
                }
                end.min(horizon.0.saturating_add(1))
            }
        }
    }

    /// Panic unless a cross-shard event born at `born` on `src` and
    /// firing at `at` on `dst` respects the declared direct bound. This
    /// guards both modes: it is what makes every window end provably
    /// conservative.
    fn assert_cross(&self, src: usize, dst: usize, born: SimTime, at: SimTime) {
        let bound = self.direct[src * self.nshards + dst];
        if bound == u64::MAX {
            panic!(
                "lookahead violation: shard {src} scheduled an event at {at} for \
                 shard {dst}, a pair the lookahead matrix declares unreachable"
            );
        }
        assert!(
            at.0 >= born.0.saturating_add(bound),
            "lookahead violation: shard {src} scheduled a cross-shard event \
             at {at}, less than {} after {born}",
            SimDuration(bound)
        );
    }
}

/// Monotonic wall nanoseconds since `t0`, saturating at `u64::MAX`.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Heartbeat throttle: tracks the last emission and computes rates over
/// the interval since. Shared by the merged executor (main thread) and
/// worker 0 of the windowed executor.
struct BeatState {
    cfg: TelemetryConfig,
    t0: Instant,
    last_emit_ns: u64,
    last_events: u64,
    last_windows: u64,
    /// Simulated time of the first window, anchoring progress/ETA.
    first_sim: Option<u64>,
    /// Window counter used when profiling is off.
    windows_seen: u64,
}

impl BeatState {
    fn new(cfg: TelemetryConfig, t0: Instant) -> BeatState {
        BeatState {
            cfg,
            t0,
            last_emit_ns: 0,
            last_events: 0,
            last_windows: 0,
            first_sim: None,
            windows_seen: 0,
        }
    }

    /// Emit a heartbeat if at least one period elapsed since the last.
    /// `pending` is only invoked on emission, keeping the steady-state
    /// cost to one `Instant` read per window.
    fn maybe_emit(
        &mut self,
        t: SimTime,
        windows: u64,
        events: u64,
        horizon: SimTime,
        pending: impl FnOnce() -> Vec<u64>,
    ) {
        if self.first_sim.is_none() {
            self.first_sim = Some(t.0);
        }
        let now_ns = elapsed_ns(self.t0);
        if now_ns.saturating_sub(self.last_emit_ns) < self.cfg.period.as_nanos() as u64 {
            return;
        }
        let dt = now_ns.saturating_sub(self.last_emit_ns).max(1) as f64 / 1e9;
        let first = self.first_sim.unwrap_or(t.0);
        // Unbounded runs pass a sentinel horizon (at or beyond
        // u64::MAX / 2): suppress progress and ETA for those.
        let finite = horizon.0 < u64::MAX / 2;
        let progress = finite.then(|| {
            let span = horizon.0.saturating_sub(first).max(1) as f64;
            (t.0.saturating_sub(first) as f64 / span).min(1.0)
        });
        let eta_sec = (finite && t.0 > first && now_ns > 0)
            .then(|| {
                let sim_per_sec = (t.0 - first) as f64 / (now_ns as f64 / 1e9);
                horizon.0.saturating_sub(t.0) as f64 / sim_per_sec
            })
            .filter(|e| e.is_finite());
        let beat = Heartbeat {
            wall_ms: now_ns as f64 / 1e6,
            sim_ps: t.0,
            windows,
            events,
            events_per_sec: events.saturating_sub(self.last_events) as f64 / dt,
            windows_per_sec: windows.saturating_sub(self.last_windows) as f64 / dt,
            shard_pending: pending(),
            progress,
            eta_sec,
        };
        self.cfg.sink.emit(&beat);
        self.last_emit_ns = now_ns;
        self.last_events = events;
        self.last_windows = windows;
    }
}

/// Per-worker run options: profiling sample cap (None = profiling off),
/// the run's wall-clock epoch, and the telemetry config (worker 0 only).
struct WorkerOpts {
    prof_cap: Option<usize>,
    t0: Instant,
    telemetry: Option<TelemetryConfig>,
}

/// Profiling output one worker carries back to the engine at join time.
/// Shard-indexed vectors use *local* indices (0 = the worker's first
/// owned shard); the engine re-bases them when merging.
struct WorkerOut {
    wp: WorkerProfile,
    /// Events executed per owned shard.
    shard_events: Vec<u64>,
    /// Wall busy time per owned shard.
    shard_busy_ns: Vec<u64>,
    /// Cross-shard traffic rows for owned shards, row-major
    /// `local_src * nshards + dst`.
    traffic: Vec<u64>,
}

impl<E: Send, M: ShardMap<E>, W: EventHandler<E> + Send> Executor<E, [W]> for ParEngine<E, M> {
    fn run_until_on(&mut self, worlds: &mut [W], horizon: SimTime, max_events: u64) -> RunOutcome {
        self.run_until(worlds, horizon, max_events)
    }

    fn now(&self) -> SimTime {
        ParEngine::now(self)
    }

    fn events_processed(&self) -> u64 {
        ParEngine::events_processed(self)
    }

    fn pending(&self) -> usize {
        ParEngine::pending(self)
    }
}

/// Shared state coordinating the workers of one windowed run.
struct Coordination<E> {
    nshards: usize,
    barrier: SpinBarrier,
    poison: AtomicBool,
    /// Per-*shard* head time (`u64::MAX` = drained), published in phase 1
    /// — the snapshot every worker derives the identical per-shard window
    /// ends from.
    heads: Vec<AtomicU64>,
    /// Per-worker cumulative executed-event count.
    executed: Vec<AtomicU64>,
    /// Flattened `src * nshards + dst`: cross-shard events staged during
    /// a window, drained by `dst`'s worker at the next boundary. Senders
    /// batch locally and take each lock once per touched cell per window;
    /// importers skip cells whose `outbox_full` flag is clear without
    /// locking at all.
    outboxes: Vec<Mutex<Vec<ParScheduled<E>>>>,
    /// One dirty flag per outbox cell (see `outboxes`).
    outbox_full: Vec<AtomicBool>,
    /// Per-shard pending-queue depth, published in phase 1 when
    /// `track_pending` is set so worker 0's heartbeat can report
    /// occupancy without touching other workers' queues.
    pending: Vec<AtomicU64>,
    /// Whether workers publish `pending` (telemetry enabled).
    track_pending: bool,
}

/// One worker: owns a contiguous block of shards (and their worlds) for
/// the whole run. Returns the run outcome, the shard block (queues and
/// counters survive for a later resume), its executed-event count, and
/// its profiling output when profiling is on.
///
/// Profiling cost discipline: `Instant` reads happen per *phase* per
/// window (import end, barrier exits, per-shard execute spans), never per
/// event; per-event profiling work is limited to local integer
/// increments behind an `Option` branch.
#[allow(clippy::too_many_arguments)]
fn worker_loop<E: Send, W: EventHandler<E>, M: ShardMap<E>>(
    widx: usize,
    first_shard: usize,
    mut shards: Vec<Shard<E>>,
    worlds: &mut [W],
    map: &M,
    policy: &WindowPolicy,
    horizon: SimTime,
    max_events: u64,
    co: &Coordination<E>,
    opts: WorkerOpts,
) -> (RunOutcome, Vec<Shard<E>>, u64, Option<WorkerOut>) {
    // If this worker panics (handler bug, lookahead violation), poison
    // the barrier so the others panic out instead of spinning forever.
    let _guard = PoisonGuard(&co.poison);
    let t0 = opts.t0;
    let nshards = co.nshards;
    let loop_start = opts.prof_cap.map(|_| elapsed_ns(t0));
    let mut out = opts.prof_cap.map(|cap| {
        (
            WorkerOut {
                wp: WorkerProfile {
                    worker: widx,
                    first_shard,
                    shards: shards.len(),
                    ..Default::default()
                },
                shard_events: vec![0; shards.len()],
                shard_busy_ns: vec![0; shards.len()],
                traffic: vec![0; shards.len() * co.nshards],
            },
            cap,
        )
    });
    let mut beat = opts.telemetry.map(|cfg| BeatState::new(cfg, t0));
    let mut executed_total: u64 = 0;
    // Exclusive end of each owned shard's previous window; imports must
    // land at or after it or the window protocol was violated.
    let mut prev_ends = vec![0u64; shards.len()];
    // Sender-local outbox staging, one cell per (owned shard, dst):
    // events batch here during execution and flush with a single
    // lock + append per touched cell per window.
    let mut stage: Vec<Vec<ParScheduled<E>>> =
        (0..shards.len() * nshards).map(|_| Vec::new()).collect();
    let mut touched: Vec<usize> = Vec::new();
    let mut heads_buf = vec![u64::MAX; nshards];
    let outcome = loop {
        // Phase 1: import cross-shard events staged in the previous
        // window, then publish per-shard heads and this worker's event
        // count.
        let phase_start = out.is_some().then(|| elapsed_ns(t0));
        for (i, shard) in shards.iter_mut().enumerate() {
            let dst = first_shard + i;
            for src in 0..nshards {
                if !co.outbox_full[src * nshards + dst].swap(false, MemOrd::Acquire) {
                    continue;
                }
                let mut staged = co.outboxes[src * nshards + dst]
                    .lock()
                    .expect("outbox poisoned");
                for item in staged.drain(..) {
                    debug_assert!(
                        item.at.0 >= prev_ends[i],
                        "conservative window violated by an import at {}",
                        item.at
                    );
                    shard.push(item.at, item.birth, item.event);
                }
            }
            co.heads[dst].store(shard.head_ps(), MemOrd::SeqCst);
        }
        if co.track_pending {
            for (i, shard) in shards.iter().enumerate() {
                co.pending[first_shard + i].store(shard.len() as u64, MemOrd::Relaxed);
            }
        }
        co.executed[widx].store(executed_total, MemOrd::SeqCst);
        let merge_end = out.is_some().then(|| elapsed_ns(t0));
        co.barrier.wait(&co.poison);
        if let (Some((o, _)), Some(ps), Some(me)) = (out.as_mut(), phase_start, merge_end) {
            o.wp.merge_ns += me.saturating_sub(ps);
            o.wp.barrier_publish_ns += elapsed_ns(t0).saturating_sub(me);
        }

        // Phase 2: every worker independently computes the identical
        // window decision from the published per-shard head snapshot.
        for (s, h) in heads_buf.iter_mut().enumerate() {
            *h = co.heads[s].load(MemOrd::SeqCst);
        }
        let t = *heads_buf.iter().min().expect("at least one shard");
        let total: u64 = co.executed.iter().map(|h| h.load(MemOrd::SeqCst)).sum();
        if t == u64::MAX {
            break RunOutcome::Drained;
        }
        if t > horizon.0 {
            break RunOutcome::HorizonReached;
        }
        if total >= max_events {
            break RunOutcome::BudgetExhausted;
        }
        if let Some(b) = beat.as_mut() {
            let windows = out.as_ref().map_or(b.windows_seen, |(o, _)| o.wp.windows);
            b.maybe_emit(SimTime(t), windows, total, horizon, || {
                co.pending.iter().map(|p| p.load(MemOrd::Relaxed)).collect()
            });
            b.windows_seen += 1;
        }
        let g_end = policy.global_end(t, horizon);

        // Phase 3: execute each owned shard to its own window end,
        // staging cross-shard events locally and flushing per cell.
        let exec_start = out.is_some().then(|| elapsed_ns(t0));
        let mut window_events = 0u64;
        for (i, shard) in shards.iter_mut().enumerate() {
            let sidx = first_shard + i;
            let end_i = policy.shard_end(&heads_buf, sidx, t, horizon);
            let shard_start = out.is_some().then(|| elapsed_ns(t0));
            let mut shard_executed = 0u64;
            let mut recovered_here = false;
            while shard.head_ps() < end_i {
                let (at, _birth, event) = shard.pop().expect("nonempty below end");
                shard.last_at = at;
                let born = at;
                let mut sched = Scheduler::fresh(born);
                worlds[i].handle(event, &mut sched);
                executed_total += 1;
                shard_executed += 1;
                if out.is_some() && policy.mode == LookaheadMode::Adaptive && at.0 >= g_end {
                    recovered_here = true;
                    if let Some((o, _)) = out.as_mut() {
                        o.wp.recovered_events += 1;
                    }
                }
                for (eat, event) in sched.into_pending() {
                    let birth = BirthKey {
                        time: born,
                        origin: sidx as u32 + 1,
                        seq: shard.birth_seq,
                    };
                    shard.birth_seq += 1;
                    let dst = map.shard_of(&event);
                    if dst == sidx {
                        shard.push(eat, birth, event);
                    } else {
                        policy.assert_cross(sidx, dst, born, eat);
                        if let Some((o, _)) = out.as_mut() {
                            o.traffic[i * nshards + dst] += 1;
                        }
                        let cell = i * nshards + dst;
                        if stage[cell].is_empty() {
                            touched.push(cell);
                        }
                        stage[cell].push(ParScheduled {
                            at: eat,
                            birth,
                            event,
                        });
                    }
                }
            }
            prev_ends[i] = end_i;
            if recovered_here {
                if let Some((o, _)) = out.as_mut() {
                    o.wp.extended_shard_windows += 1;
                }
            }
            if let (Some((o, _)), Some(ss)) = (out.as_mut(), shard_start) {
                o.shard_events[i] += shard_executed;
                o.shard_busy_ns[i] += elapsed_ns(t0).saturating_sub(ss);
            }
            window_events += shard_executed;
        }
        // Flush staged cross-shard events: one lock + append per touched
        // cell, then raise its dirty flag for the importer.
        for &cell in &touched {
            let flat = (first_shard + cell / nshards) * nshards + cell % nshards;
            co.outboxes[flat]
                .lock()
                .expect("outbox poisoned")
                .append(&mut stage[cell]);
            co.outbox_full[flat].store(true, MemOrd::Release);
        }
        touched.clear();
        let exec_end = out.is_some().then(|| elapsed_ns(t0));
        if let (Some((o, cap)), Some(es), Some(ee)) = (out.as_mut(), exec_start, exec_end) {
            let exec_ns = ee.saturating_sub(es);
            o.wp.busy_ns += exec_ns;
            o.wp.windows += 1;
            o.wp.active_windows += u64::from(window_events > 0);
            o.wp.events += window_events;
            if o.wp.samples.len() < *cap {
                o.wp.samples.push(WindowSample {
                    window: o.wp.windows - 1,
                    start_ns: es,
                    exec_ns,
                    events: window_events,
                    sim_ps: t,
                });
            }
        }
        co.barrier.wait(&co.poison);
        if let (Some((o, _)), Some(ee)) = (out.as_mut(), exec_end) {
            o.wp.barrier_window_ns += elapsed_ns(t0).saturating_sub(ee);
        }
    };
    if let (Some((o, _)), Some(start)) = (out.as_mut(), loop_start) {
        o.wp.loop_ns = elapsed_ns(t0).saturating_sub(start);
    }
    (outcome, shards, executed_total, out.map(|(o, _)| o))
}

/// A reusable spin barrier (std's `Barrier` parks threads; windows are
/// microseconds apart, so spinning is the right trade). Poison-aware:
/// when a sibling panics, waiters panic out instead of hanging.
struct SpinBarrier {
    total: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(total: usize) -> SpinBarrier {
        SpinBarrier {
            total,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self, poison: &AtomicBool) {
        let gen = self.generation.load(MemOrd::SeqCst);
        if self.arrived.fetch_add(1, MemOrd::SeqCst) + 1 == self.total {
            self.arrived.store(0, MemOrd::SeqCst);
            self.generation.fetch_add(1, MemOrd::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.generation.load(MemOrd::SeqCst) == gen {
                if poison.load(MemOrd::SeqCst) {
                    panic!("parallel DES worker aborted: a sibling worker panicked");
                }
                // Spin briefly for the common in-cache handoff, then
                // yield: with more workers than cores a pure spin burns
                // whole scheduler quanta waiting for a descheduled peer.
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Sets the poison flag if dropped during a panic unwind.
struct PoisonGuard<'a>(&'a AtomicBool);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, MemOrd::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy sharded machine: `nshards` counters passing tokens. Local
    /// hops may be arbitrarily fast; ring hops to the next shard respect
    /// the lookahead.
    const LOOK: SimDuration = SimDuration::from_ns(50);

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Token {
        shard: usize,
        hops_left: u32,
        tag: u64,
    }

    struct RingMap {
        n: usize,
    }

    impl ShardMap<Token> for RingMap {
        fn shard_count(&self) -> usize {
            self.n
        }
        fn shard_of(&self, ev: &Token) -> usize {
            ev.shard
        }
        fn lookahead(&self) -> SimDuration {
            LOOK
        }
    }

    /// Per-shard world: records (time, tag) pairs; forwards tokens.
    struct RingWorld {
        shard: usize,
        nshards: usize,
        log: Vec<(u64, u64)>,
    }

    impl EventHandler<Token> for RingWorld {
        fn handle(&mut self, ev: Token, sched: &mut Scheduler<Token>) {
            assert_eq!(ev.shard, self.shard, "event routed to the wrong shard");
            self.log.push((sched.now().as_ps(), ev.tag));
            if ev.hops_left == 0 {
                return;
            }
            // A fast local bounce (well under the lookahead) ...
            sched.after(
                SimDuration::from_ps(7),
                Token {
                    shard: self.shard,
                    hops_left: 0,
                    tag: ev.tag * 1000 + 1,
                },
            );
            // ... and a ring hop to the next shard at exactly the bound.
            sched.after(
                LOOK,
                Token {
                    shard: (self.shard + 1) % self.nshards,
                    hops_left: ev.hops_left - 1,
                    tag: ev.tag + 1,
                },
            );
        }
    }

    fn run_ring(threads: usize, nshards: usize, tokens: u32) -> (Vec<Vec<(u64, u64)>>, u64) {
        let mut eng = ParEngine::new(RingMap { n: nshards }, threads);
        let mut worlds: Vec<RingWorld> = (0..nshards)
            .map(|s| RingWorld {
                shard: s,
                nshards,
                log: Vec::new(),
            })
            .collect();
        for k in 0..tokens {
            eng.schedule_at(
                SimTime::from_ns(k as u64),
                Token {
                    shard: (k as usize) % nshards,
                    hops_left: 20,
                    tag: 10_000 * k as u64,
                },
            );
        }
        eng.run(&mut worlds);
        (
            worlds.into_iter().map(|w| w.log).collect(),
            eng.events_processed(),
        )
    }

    #[test]
    fn thread_counts_agree_bit_for_bit() {
        let (seq, n1) = run_ring(1, 4, 6);
        for threads in [2, 3, 4, 8] {
            let (par, np) = run_ring(threads, 4, 6);
            assert_eq!(seq, par, "{threads}-thread run diverged");
            assert_eq!(n1, np);
        }
    }

    #[test]
    fn horizon_and_budget_stop_consistently() {
        let run = |threads: usize, horizon: SimTime, budget: u64| {
            let nshards = 3;
            let mut eng = ParEngine::new(RingMap { n: nshards }, threads);
            let mut worlds: Vec<RingWorld> = (0..nshards)
                .map(|s| RingWorld {
                    shard: s,
                    nshards,
                    log: Vec::new(),
                })
                .collect();
            eng.schedule_at(
                SimTime::ZERO,
                Token {
                    shard: 0,
                    hops_left: 30,
                    tag: 0,
                },
            );
            let out = eng.run_until(&mut worlds, horizon, budget);
            let logs: Vec<_> = worlds.into_iter().map(|w| w.log).collect();
            (out, logs, eng.events_processed(), eng.pending())
        };
        // An event scheduled exactly at the horizon fires in both
        // executors (50 ns hops: the token lands at multiples of 50 ns).
        let h = SimTime::from_ns(150);
        let a = run(1, h, u64::MAX);
        let b = run(4, h, u64::MAX);
        assert_eq!(a, b);
        assert_eq!(a.0, RunOutcome::HorizonReached);
        assert!(a.1.iter().flatten().any(|&(t, _)| t == h.as_ps()));
        // Budget exhaustion is window-granular but thread-count-invariant.
        let c = run(1, SimTime(u64::MAX), 9);
        let d = run(4, SimTime(u64::MAX), 9);
        assert_eq!(c, d);
        assert_eq!(c.0, RunOutcome::BudgetExhausted);
    }

    #[test]
    fn drained_run_reports_now_and_counts() {
        let nshards = 2;
        let mut eng = ParEngine::new(RingMap { n: nshards }, 2);
        let mut worlds: Vec<RingWorld> = (0..nshards)
            .map(|s| RingWorld {
                shard: s,
                nshards,
                log: Vec::new(),
            })
            .collect();
        eng.schedule_at(
            SimTime::ZERO,
            Token {
                shard: 0,
                hops_left: 4,
                tag: 0,
            },
        );
        eng.run(&mut worlds);
        // 5 ring arrivals + 4 local bounces (the last arrival has
        // hops_left == 0 and spawns nothing).
        assert_eq!(eng.events_processed(), 9);
        assert_eq!(eng.pending(), 0);
        // Last event: the final ring arrival at 4×50 ns (the last bounce
        // fires earlier, at 3×50 ns + 7 ps).
        assert_eq!(eng.now(), SimTime(4 * 50_000));
    }

    #[test]
    #[should_panic(expected = "lookahead violation")]
    fn undeclared_cross_shard_event_panics() {
        struct Cheater;
        impl EventHandler<Token> for Cheater {
            fn handle(&mut self, ev: Token, sched: &mut Scheduler<Token>) {
                if ev.hops_left > 0 {
                    // Cross-shard with a delay below the declared bound.
                    sched.after(
                        SimDuration::from_ns(1),
                        Token {
                            shard: 1,
                            hops_left: 0,
                            tag: 0,
                        },
                    );
                }
            }
        }
        let mut eng = ParEngine::new(RingMap { n: 2 }, 1);
        let mut worlds = vec![Cheater, Cheater];
        eng.schedule_at(
            SimTime::ZERO,
            Token {
                shard: 0,
                hops_left: 1,
                tag: 0,
            },
        );
        eng.run(&mut worlds);
    }

    fn run_ring_profiled(
        threads: usize,
        nshards: usize,
        tokens: u32,
    ) -> (Vec<Vec<(u64, u64)>>, ParProfile) {
        let mut eng = ParEngine::new(RingMap { n: nshards }, threads);
        eng.enable_profiling();
        let mut worlds: Vec<RingWorld> = (0..nshards)
            .map(|s| RingWorld {
                shard: s,
                nshards,
                log: Vec::new(),
            })
            .collect();
        for k in 0..tokens {
            eng.schedule_at(
                SimTime::from_ns(k as u64),
                Token {
                    shard: (k as usize) % nshards,
                    hops_left: 20,
                    tag: 10_000 * k as u64,
                },
            );
        }
        eng.run(&mut worlds);
        let prof = eng.take_profile().expect("profiling was enabled");
        (worlds.into_iter().map(|w| w.log).collect(), prof)
    }

    #[test]
    fn profiling_perturbs_nothing_and_event_counts_are_thread_invariant() {
        // Profiling on must not change the simulated results...
        let (plain, _) = run_ring(1, 4, 6);
        let (seq, p1) = run_ring_profiled(1, 4, 6);
        assert_eq!(plain, seq, "profiling changed the simulation");
        // ...and the event-level profile fields are deterministic:
        // identical at any thread count, like every simulated observable.
        for threads in [2, 4] {
            let (par, pn) = run_ring_profiled(threads, 4, 6);
            assert_eq!(seq, par, "{threads}-thread profiled run diverged");
            assert_eq!(p1.windows, pn.windows, "window count diverged");
            assert_eq!(p1.events, pn.events);
            assert_eq!(p1.shard_events, pn.shard_events);
            assert_eq!(p1.traffic, pn.traffic);
            assert_eq!(pn.threads, threads.min(4));
            assert_eq!(pn.workers.len(), threads.min(4));
        }
        // Basic shape: events tally, workers account for all shards.
        assert_eq!(p1.events, p1.shard_events.iter().sum::<u64>());
        assert_eq!(p1.cross_shard_events(), p1.traffic.iter().sum::<u64>());
        for s in 0..4 {
            assert_eq!(p1.traffic_between(s, s), 0, "diagonal must be empty");
        }
    }

    #[test]
    fn worker_phase_accounting_telescopes_to_loop_time() {
        let (_, prof) = run_ring_profiled(4, 4, 8);
        assert_eq!(prof.workers.len(), 4);
        for w in &prof.workers {
            // The named phases are disjoint sub-spans of the loop, so
            // busy + merge + barriers never exceeds loop time, and the
            // residual accessor closes the sum exactly.
            let named = w.busy_ns + w.merge_ns + w.barrier_publish_ns + w.barrier_window_ns;
            assert!(named <= w.loop_ns, "phases exceed loop: {w:?}");
            assert_eq!(named + w.windowing_ns(), w.loop_ns);
            assert_eq!(w.windows, prof.windows);
        }
        // Every worker's loop fits inside the run's wall clock.
        for w in &prof.workers {
            assert!(w.loop_ns <= prof.wall_ns);
        }
    }

    #[test]
    fn telemetry_heartbeats_stream_during_runs() {
        use std::sync::{Arc, Mutex};
        #[derive(Default)]
        struct Capture(Mutex<Vec<Heartbeat>>);
        impl crate::profile::TelemetrySink for Capture {
            fn emit(&self, beat: &Heartbeat) {
                self.0.lock().unwrap().push(beat.clone());
            }
        }
        let run = |threads: usize| {
            let nshards = 3;
            let sink = Arc::new(Capture::default());
            let mut eng = ParEngine::new(RingMap { n: nshards }, threads);
            eng.enable_telemetry(TelemetryConfig {
                period: std::time::Duration::ZERO,
                sink: sink.clone(),
            });
            let mut worlds: Vec<RingWorld> = (0..nshards)
                .map(|s| RingWorld {
                    shard: s,
                    nshards,
                    log: Vec::new(),
                })
                .collect();
            eng.schedule_at(
                SimTime::ZERO,
                Token {
                    shard: 0,
                    hops_left: 30,
                    tag: 0,
                },
            );
            let out = eng.run_until(&mut worlds, SimTime::from_ns(1400), u64::MAX);
            assert_eq!(out, RunOutcome::HorizonReached);
            let beats = sink.0.lock().unwrap().clone();
            (beats, worlds.into_iter().map(|w| w.log).collect::<Vec<_>>())
        };
        let (beats1, log1) = run(1);
        let (beats3, log3) = run(3);
        assert_eq!(log1, log3, "telemetry perturbed the simulation");
        for beats in [&beats1, &beats3] {
            // Zero period: a beat per window boundary.
            assert!(!beats.is_empty(), "no heartbeats with a zero period");
            for b in beats {
                assert_eq!(b.shard_pending.len(), 3);
                let line = b.to_json_line();
                assert!(line.starts_with("{\"type\":\"heartbeat\""));
                // Finite horizon: progress must be reported and sane.
                let p = b.progress.expect("finite horizon implies progress");
                assert!((0.0..=1.0).contains(&p), "progress {p} out of range");
            }
            // Simulated time and event counts advance monotonically.
            for pair in beats.windows(2) {
                assert!(pair[1].sim_ps >= pair[0].sim_ps);
                assert!(pair[1].events >= pair[0].events);
            }
        }
    }

    #[test]
    fn executor_trait_unifies_engines() {
        fn drive<X: Executor<Token, [RingWorld]> + ?Sized>(
            x: &mut X,
            worlds: &mut [RingWorld],
        ) -> RunOutcome {
            x.run_until_on(worlds, SimTime(u64::MAX), u64::MAX)
        }
        let mut eng = ParEngine::new(RingMap { n: 2 }, 2);
        let mut worlds: Vec<RingWorld> = (0..2)
            .map(|s| RingWorld {
                shard: s,
                nshards: 2,
                log: Vec::new(),
            })
            .collect();
        eng.schedule_at(
            SimTime::ZERO,
            Token {
                shard: 0,
                hops_left: 3,
                tag: 0,
            },
        );
        assert_eq!(drive(&mut eng, &mut worlds), RunOutcome::Drained);
        assert_eq!(Executor::<Token, [RingWorld]>::pending(&eng), 0);
    }

    #[test]
    fn lookahead_matrix_closure_covers_relays() {
        // A directed 4-ring: only a -> a+1 is directly reachable.
        let mut m = LookaheadMatrix::unreachable(4);
        for a in 0..4 {
            m.set(a, (a + 1) % 4, LOOK);
        }
        assert_eq!(m.min_direct(), Some(LOOK));
        assert_eq!(m.direct(0, 2), None);
        let dist = m.closure_ps();
        for a in 0..4usize {
            for b in 0..4usize {
                let hops = ((b + 4 - a) % 4) as u64;
                assert_eq!(dist[a * 4 + b], hops * LOOK.0, "closure {a}->{b}");
            }
        }
        // Uniform matrices close to themselves.
        let u = LookaheadMatrix::uniform(3, LOOK);
        let du = u.closure_ps();
        for a in 0..3usize {
            for b in 0..3usize {
                let want = if a == b { 0 } else { LOOK.0 };
                assert_eq!(du[a * 3 + b], want);
            }
        }
    }

    #[test]
    #[should_panic(expected = "below the global bound")]
    fn matrix_tighter_than_global_bound_is_rejected() {
        struct BadMap;
        impl ShardMap<Token> for BadMap {
            fn shard_count(&self) -> usize {
                2
            }
            fn shard_of(&self, ev: &Token) -> usize {
                ev.shard
            }
            fn lookahead(&self) -> SimDuration {
                LOOK
            }
            fn lookahead_matrix(&self) -> LookaheadMatrix {
                // Claims a pair tighter than the global bound: a
                // matrix-legal event could then land inside a Global
                // window, so construction must refuse it.
                LookaheadMatrix::uniform(2, SimDuration::from_ns(1))
            }
        }
        let _ = ParEngine::<Token, _>::new(BadMap, 2);
    }

    fn run_ring_mode(
        threads: usize,
        nshards: usize,
        tokens: u32,
        mode: LookaheadMode,
    ) -> (Vec<Vec<(u64, u64)>>, ParProfile) {
        let mut eng = ParEngine::new(RingMap { n: nshards }, threads);
        eng.set_lookahead_mode(mode);
        eng.enable_profiling();
        let mut worlds: Vec<RingWorld> = (0..nshards)
            .map(|s| RingWorld {
                shard: s,
                nshards,
                log: Vec::new(),
            })
            .collect();
        for k in 0..tokens {
            eng.schedule_at(
                SimTime::from_ns(k as u64),
                Token {
                    shard: (k as usize) % nshards,
                    hops_left: 20,
                    tag: 10_000 * k as u64,
                },
            );
        }
        eng.run(&mut worlds);
        let prof = eng.take_profile().expect("profiling was enabled");
        (worlds.into_iter().map(|w| w.log).collect(), prof)
    }

    #[test]
    fn adaptive_and_global_modes_agree_bit_for_bit() {
        let (g1, pg1) = run_ring_mode(1, 4, 6, LookaheadMode::Global);
        let (a1, pa1) = run_ring_mode(1, 4, 6, LookaheadMode::Adaptive);
        assert_eq!(g1, a1, "window bound changed simulated results");
        // Under the global bound nothing is ever recovered, by
        // construction; adaptive widening must not lose any window either
        // (every adaptive end is >= the global end at the same start).
        assert_eq!(pg1.recovered_events, 0);
        assert_eq!(pg1.extended_shard_windows, 0);
        assert!(
            pa1.windows <= pg1.windows,
            "adaptive windows {} > global windows {}",
            pa1.windows,
            pg1.windows
        );
        for threads in [2, 3, 4, 8] {
            for (mode, seq, pseq) in [
                (LookaheadMode::Global, &g1, &pg1),
                (LookaheadMode::Adaptive, &a1, &pa1),
            ] {
                let (par, pp) = run_ring_mode(threads, 4, 6, mode);
                assert_eq!(seq, &par, "{threads}-thread {mode} run diverged");
                assert_eq!(pseq.windows, pp.windows, "{mode} window count diverged");
                assert_eq!(pseq.events, pp.events);
                assert_eq!(
                    pseq.recovered_events, pp.recovered_events,
                    "{threads}-thread {mode} recovered count diverged"
                );
                assert_eq!(pseq.extended_shard_windows, pp.extended_shard_windows);
            }
        }
    }

    /// A map that knows the ring topology: only `a -> a+1` is directly
    /// reachable, so the closure gives distant pairs multi-hop bounds and
    /// adaptive windows stretch far past the single global lookahead.
    struct MatrixRingMap {
        n: usize,
    }

    impl ShardMap<Token> for MatrixRingMap {
        fn shard_count(&self) -> usize {
            self.n
        }
        fn shard_of(&self, ev: &Token) -> usize {
            ev.shard
        }
        fn lookahead(&self) -> SimDuration {
            LOOK
        }
        fn lookahead_matrix(&self) -> LookaheadMatrix {
            let mut m = LookaheadMatrix::unreachable(self.n);
            for a in 0..self.n {
                m.set(a, (a + 1) % self.n, LOOK);
            }
            m
        }
    }

    /// A world with a dense *local* event chain (20 ns steps, well under
    /// the 50 ns global bound) that occasionally sends a slow ring hop
    /// forward. Two such chains on ring-distant shards are exactly the
    /// shape adaptive windows exploit: the global bound forces a barrier
    /// every 50 ns although the shards cannot affect each other for
    /// 100+ ns.
    struct ChainWorld {
        shard: usize,
        nshards: usize,
        log: Vec<(u64, u64)>,
    }

    impl EventHandler<Token> for ChainWorld {
        fn handle(&mut self, ev: Token, sched: &mut Scheduler<Token>) {
            self.log.push((sched.now().as_ps(), ev.tag));
            if ev.hops_left == 0 {
                return;
            }
            sched.after(
                SimDuration::from_ns(20),
                Token {
                    shard: self.shard,
                    hops_left: ev.hops_left - 1,
                    tag: ev.tag + 1,
                },
            );
            if ev.hops_left % 7 == 0 {
                sched.after(
                    SimDuration::from_ns(200),
                    Token {
                        shard: (self.shard + 1) % self.nshards,
                        hops_left: 0,
                        tag: ev.tag + 1000,
                    },
                );
            }
        }
    }

    #[test]
    fn matrix_map_recovers_windows_and_stays_exact() {
        let run = |threads: usize, mode: LookaheadMode| {
            let nshards = 4;
            let mut eng = ParEngine::new(MatrixRingMap { n: nshards }, threads);
            eng.set_lookahead_mode(mode);
            eng.enable_profiling();
            let mut worlds: Vec<ChainWorld> = (0..nshards)
                .map(|s| ChainWorld {
                    shard: s,
                    nshards,
                    log: Vec::new(),
                })
                .collect();
            for (shard, t_ns, tag) in [(0usize, 0u64, 0u64), (2, 3, 5_000_000)] {
                eng.schedule_at(
                    SimTime::from_ns(t_ns),
                    Token {
                        shard,
                        hops_left: 40,
                        tag,
                    },
                );
            }
            eng.run(&mut worlds);
            let prof = eng.take_profile().expect("profiling was enabled");
            (worlds.into_iter().map(|w| w.log).collect::<Vec<_>>(), prof)
        };
        let (g, pg) = run(1, LookaheadMode::Global);
        let (a, pa) = run(1, LookaheadMode::Adaptive);
        // The matrix changes window bounds, never results.
        assert_eq!(g, a);
        // The per-pair bounds genuinely recover deferred work here.
        assert!(
            pa.windows < pg.windows,
            "matrix map should need fewer windows ({} vs {})",
            pa.windows,
            pg.windows
        );
        assert!(pa.recovered_events > 0, "no events recovered");
        assert!(pa.extended_shard_windows > 0);
        assert_eq!(pg.recovered_events, 0);
        for threads in [2, 4] {
            let (ap, pap) = run(threads, LookaheadMode::Adaptive);
            assert_eq!(a, ap, "{threads}-thread adaptive matrix run diverged");
            assert_eq!(pa.windows, pap.windows);
            assert_eq!(pa.recovered_events, pap.recovered_events);
            assert_eq!(pa.extended_shard_windows, pap.extended_shard_windows);
        }
    }

    #[test]
    #[should_panic(expected = "unreachable")]
    fn event_across_unreachable_pair_panics() {
        // RingWorld only sends a -> a+1; sending backwards crosses a pair
        // the matrix declares unreachable.
        struct BackwardsWorld;
        impl EventHandler<Token> for BackwardsWorld {
            fn handle(&mut self, ev: Token, sched: &mut Scheduler<Token>) {
                if ev.hops_left > 0 {
                    sched.after(
                        SimDuration::from_ns(500),
                        Token {
                            shard: 2,
                            hops_left: 0,
                            tag: 0,
                        },
                    );
                }
            }
        }
        let mut eng = ParEngine::new(MatrixRingMap { n: 4 }, 1);
        let mut worlds = vec![
            BackwardsWorld,
            BackwardsWorld,
            BackwardsWorld,
            BackwardsWorld,
        ];
        eng.schedule_at_shard(
            3,
            SimTime::ZERO,
            Token {
                shard: 3,
                hops_left: 1,
                tag: 0,
            },
        );
        eng.run(&mut worlds);
    }
}
