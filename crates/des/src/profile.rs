//! Runtime profiling and live telemetry for the parallel DES executor.
//!
//! The paper's method is exact accounting: every nanosecond of the 162 ns
//! end-to-end path is attributed to a named stage, and the stages
//! telescope to the total. This module applies the same discipline to the
//! *runtime that runs the simulation*: when an N-thread
//! [`ParEngine`](crate::par::ParEngine) run falls short of N× speedup,
//! the gap must decompose into named, measured components — shard load
//! imbalance, barrier crossings, window/lookahead inefficiency, and
//! cross-shard merge work — with nothing left dark.
//!
//! Two kinds of numbers live side by side in a [`ParProfile`]:
//!
//! - **Event-level counts** (windows, events per shard, the cross-shard
//!   outbox traffic matrix) are *deterministic*: they are a pure function
//!   of the simulated workload and the shard plan, bit-identical at any
//!   thread count — tested like every other simulated observable.
//! - **Wall-clock spans** (busy, barrier-wait, outbox-import, window
//!   samples) are host-dependent by nature. They are captured with
//!   thread-local counters — two `Instant` reads per phase per *window*,
//!   never per event — and merged deterministically (worker order, then
//!   shard order) after the run, so enabling profiling perturbs neither
//!   the simulation (asserted by fingerprint tests) nor, measurably, the
//!   wall clock.
//!
//! [`Heartbeat`] is the live half: during a run, worker 0 periodically
//! snapshots window rate, event throughput, per-shard queue occupancy,
//! and an ETA, and hands the snapshot to a [`TelemetrySink`] (JSON lines
//! on stderr by default) so multi-minute benches are no longer silent.

use crate::time::SimTime;
use std::fmt::Write as _;
use std::sync::Arc;

/// Default cap on retained per-window samples per worker (the summary
/// counters are always exact; samples only feed trace export).
pub const DEFAULT_SAMPLE_CAP: usize = 4096;

/// One window's execute phase as one worker saw it. Offsets are wall
/// nanoseconds since the enclosing `run_until` began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSample {
    /// Window index within the run (0-based, global — every worker
    /// executes the same window sequence).
    pub window: u64,
    /// Wall-clock offset of this worker's execute phase start.
    pub start_ns: u64,
    /// Wall-clock length of this worker's execute phase.
    pub exec_ns: u64,
    /// Events this worker executed in the window.
    pub events: u64,
    /// Simulated time at the window start (the global minimum head).
    pub sim_ps: u64,
}

/// One worker's accounting for a run: wall-clock time split into the
/// named phases of the window protocol, plus event/window counts. The
/// phases partition the worker's loop time, so
/// `busy + merge + barrier_publish + barrier_window + residue == loop`
/// — the telescoping the speedup attribution relies on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker index (block-partition order).
    pub worker: usize,
    /// First shard this worker owns.
    pub first_shard: usize,
    /// Number of shards this worker owns.
    pub shards: usize,
    /// Total wall time inside the worker loop.
    pub loop_ns: u64,
    /// Wall time executing events (the useful work).
    pub busy_ns: u64,
    /// Wall time draining cross-shard outboxes into owned queues.
    pub merge_ns: u64,
    /// Wall time waiting at the publish barrier (after import + head
    /// publication — crossing cost plus skew from uneven import work).
    pub barrier_publish_ns: u64,
    /// Wall time waiting at the post-execute barrier: this worker
    /// finished its window slice while others were still executing —
    /// the direct measure of shard load imbalance.
    pub barrier_window_ns: u64,
    /// Windows this worker participated in (== the run's window count).
    pub windows: u64,
    /// Windows in which this worker executed at least one event.
    pub active_windows: u64,
    /// Events this worker executed.
    pub events: u64,
    /// Events executed at or past the uniform global-bound window end —
    /// work an adaptive window recovered that a global window would have
    /// deferred behind another barrier crossing. Deterministic; always 0
    /// in [`LookaheadMode::Global`](crate::par::LookaheadMode::Global).
    pub recovered_events: u64,
    /// Per-shard windows in which at least one event was recovered (one
    /// shard extending once in one window counts once). Deterministic.
    pub extended_shard_windows: u64,
    /// Retained per-window samples (capped; see
    /// [`ParProfile::sample_cap`]).
    pub samples: Vec<WindowSample>,
}

impl WorkerProfile {
    /// Loop time not attributed to a named phase: window-decision
    /// computation, heartbeat emission, and loop bookkeeping.
    pub fn windowing_ns(&self) -> u64 {
        self.loop_ns.saturating_sub(
            self.busy_ns + self.merge_ns + self.barrier_publish_ns + self.barrier_window_ns,
        )
    }

    fn absorb(&mut self, other: &WorkerProfile, cap: usize) {
        self.loop_ns += other.loop_ns;
        self.busy_ns += other.busy_ns;
        self.merge_ns += other.merge_ns;
        self.barrier_publish_ns += other.barrier_publish_ns;
        self.barrier_window_ns += other.barrier_window_ns;
        self.windows += other.windows;
        self.active_windows += other.active_windows;
        self.events += other.events;
        self.recovered_events += other.recovered_events;
        self.extended_shard_windows += other.extended_shard_windows;
        let room = cap.saturating_sub(self.samples.len());
        self.samples
            .extend(other.samples.iter().take(room).copied());
    }
}

/// The merged profile of one or more `run_until` calls on a
/// [`ParEngine`](crate::par::ParEngine): per-worker wall-clock phase
/// accounting, per-shard event totals, and the cross-shard traffic
/// matrix. Built from thread-local counters, merged in worker order —
/// the merge itself is deterministic; wall-clock *values* are not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParProfile {
    /// Worker threads the profiled run(s) actually used.
    pub threads: usize,
    /// Shard count of the engine.
    pub shards: usize,
    /// Wall time of the profiled `run_until` call(s), measured around
    /// the whole dispatch (including worker spawn/join).
    pub wall_ns: u64,
    /// Windows executed (deterministic, thread-count invariant).
    pub windows: u64,
    /// Events executed (deterministic).
    pub events: u64,
    /// Events recovered by adaptive window extension — executed past the
    /// uniform global-bound end of their window (deterministic; 0 under
    /// the global bound).
    pub recovered_events: u64,
    /// Per-shard windows that executed at least one recovered event
    /// (deterministic).
    pub extended_shard_windows: u64,
    /// Per-worker phase accounting, worker order.
    pub workers: Vec<WorkerProfile>,
    /// Events executed per shard (deterministic).
    pub shard_events: Vec<u64>,
    /// Wall busy time per shard.
    pub shard_busy_ns: Vec<u64>,
    /// Cross-shard events staged through the outboxes, row-major
    /// `src * shards + dst` (deterministic; the diagonal is always 0 —
    /// shard-local events never touch an outbox).
    pub traffic: Vec<u64>,
    /// Cap on retained [`WindowSample`]s per worker.
    pub sample_cap: usize,
}

impl ParProfile {
    pub(crate) fn new(threads: usize, shards: usize, sample_cap: usize) -> ParProfile {
        ParProfile {
            threads,
            shards,
            wall_ns: 0,
            windows: 0,
            events: 0,
            recovered_events: 0,
            extended_shard_windows: 0,
            workers: Vec::new(),
            shard_events: vec![0; shards],
            shard_busy_ns: vec![0; shards],
            traffic: vec![0; shards * shards],
            sample_cap,
        }
    }

    /// Cross-shard events staged from `src` to `dst` during profiled
    /// runs.
    pub fn traffic_between(&self, src: usize, dst: usize) -> u64 {
        self.traffic[src * self.shards + dst]
    }

    /// Total cross-shard events (the whole matrix; the diagonal is 0).
    pub fn cross_shard_events(&self) -> u64 {
        self.traffic.iter().sum()
    }

    /// Mean events per window across the run (the windowing efficiency:
    /// how much work one lookahead window amortizes over its two barrier
    /// crossings).
    pub fn events_per_window(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.events as f64 / self.windows as f64
        }
    }

    /// Mean events per shard per window — the lookahead efficiency in
    /// the conservative-parallel-DES sense: how many causally
    /// independent events each shard finds inside one lookahead.
    pub fn lookahead_efficiency(&self) -> f64 {
        if self.windows == 0 || self.shards == 0 {
            0.0
        } else {
            self.events as f64 / (self.windows as f64 * self.shards as f64)
        }
    }

    /// Event-count imbalance across shards in percent:
    /// `100 · (max/mean − 1)`. Zero means perfectly balanced shards;
    /// deterministic, so it is safe to commit to a bench baseline.
    pub fn shard_imbalance_pct(&self) -> f64 {
        let max = self.shard_events.iter().copied().max().unwrap_or(0);
        let total: u64 = self.shard_events.iter().sum();
        if total == 0 || self.shards == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.shards as f64;
        100.0 * (max as f64 / mean - 1.0)
    }

    /// Fold another run's profile into this one (same engine, later
    /// `run_until` call).
    pub(crate) fn absorb(&mut self, other: &ParProfile) {
        debug_assert_eq!(self.shards, other.shards);
        self.threads = self.threads.max(other.threads);
        self.wall_ns += other.wall_ns;
        self.windows += other.windows;
        self.events += other.events;
        self.recovered_events += other.recovered_events;
        self.extended_shard_windows += other.extended_shard_windows;
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize_with(other.workers.len(), WorkerProfile::default);
        }
        for (mine, theirs) in self.workers.iter_mut().zip(&other.workers) {
            mine.worker = theirs.worker;
            mine.first_shard = theirs.first_shard;
            mine.shards = theirs.shards;
            mine.absorb(theirs, self.sample_cap);
        }
        for (a, b) in self.shard_events.iter_mut().zip(&other.shard_events) {
            *a += b;
        }
        for (a, b) in self.shard_busy_ns.iter_mut().zip(&other.shard_busy_ns) {
            *a += b;
        }
        for (a, b) in self.traffic.iter_mut().zip(&other.traffic) {
            *a += b;
        }
    }
}

/// One live telemetry snapshot, emitted at window boundaries by worker 0
/// while a run is in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct Heartbeat {
    /// Wall milliseconds since the run began.
    pub wall_ms: f64,
    /// Simulated time at the current window start, picoseconds.
    pub sim_ps: u64,
    /// Windows executed so far.
    pub windows: u64,
    /// Events executed so far.
    pub events: u64,
    /// Event throughput since the previous heartbeat (events/s).
    pub events_per_sec: f64,
    /// Window rate since the previous heartbeat (windows/s).
    pub windows_per_sec: f64,
    /// Pending-event queue depth per shard (occupancy snapshot).
    pub shard_pending: Vec<u64>,
    /// Fraction of simulated time covered, when a finite horizon is set.
    pub progress: Option<f64>,
    /// Estimated wall seconds to the horizon at the current rate, when a
    /// finite horizon is set and time has advanced.
    pub eta_sec: Option<f64>,
}

impl Heartbeat {
    /// Render as one JSON object on one line (the JSON-lines streaming
    /// format; keys are fixed, so downstream `jq` pipelines are stable).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(160);
        let _ = write!(
            s,
            "{{\"type\":\"heartbeat\",\"wall_ms\":{:.1},\"sim_us\":{:.3},\
             \"windows\":{},\"events\":{},\"events_per_sec\":{:.0},\
             \"windows_per_sec\":{:.0},\"shard_pending\":[",
            self.wall_ms,
            SimTime(self.sim_ps).as_us_f64(),
            self.windows,
            self.events,
            self.events_per_sec,
            self.windows_per_sec,
        );
        for (i, p) in self.shard_pending.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{p}");
        }
        s.push(']');
        if let Some(p) = self.progress {
            let _ = write!(s, ",\"progress\":{:.4}", p);
        }
        if let Some(e) = self.eta_sec {
            let _ = write!(s, ",\"eta_sec\":{:.1}", e);
        }
        s.push('}');
        s
    }
}

/// Where heartbeats go. Implementations must tolerate being called from
/// a worker thread while the simulation is mid-window.
pub trait TelemetrySink: Send + Sync {
    /// Deliver one snapshot.
    fn emit(&self, beat: &Heartbeat);
}

/// The default sink: one JSON line per heartbeat on stderr.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrTelemetry;

impl TelemetrySink for StderrTelemetry {
    fn emit(&self, beat: &Heartbeat) {
        eprintln!("{}", beat.to_json_line());
    }
}

/// Live-telemetry configuration: emit a [`Heartbeat`] to `sink` whenever
/// at least `period` of wall time has passed since the last one (checked
/// at window boundaries, so a single enormous window emits late rather
/// than mid-window).
#[derive(Clone)]
pub struct TelemetryConfig {
    /// Minimum wall time between heartbeats.
    pub period: std::time::Duration,
    /// Destination for heartbeats.
    pub sink: Arc<dyn TelemetrySink>,
}

impl std::fmt::Debug for TelemetryConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryConfig")
            .field("period", &self.period)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_json_line_shape() {
        let b = Heartbeat {
            wall_ms: 1234.56,
            sim_ps: 162_000,
            windows: 10,
            events: 420,
            events_per_sec: 1e6,
            windows_per_sec: 2e4,
            shard_pending: vec![3, 0, 7],
            progress: Some(0.5),
            eta_sec: Some(2.0),
        };
        let line = b.to_json_line();
        assert!(line.starts_with("{\"type\":\"heartbeat\""), "{line}");
        assert!(line.contains("\"shard_pending\":[3,0,7]"), "{line}");
        assert!(line.contains("\"eta_sec\":2.0"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn profile_derived_metrics() {
        let mut p = ParProfile::new(4, 2, 8);
        p.windows = 10;
        p.events = 40;
        p.shard_events = vec![30, 10];
        p.traffic = vec![0, 5, 3, 0];
        assert_eq!(p.events_per_window(), 4.0);
        assert_eq!(p.lookahead_efficiency(), 2.0);
        assert_eq!(p.cross_shard_events(), 8);
        assert_eq!(p.traffic_between(0, 1), 5);
        // max 30 vs mean 20 -> 50%.
        assert!((p.shard_imbalance_pct() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = ParProfile::new(2, 2, 4);
        a.windows = 3;
        a.events = 5;
        a.shard_events = vec![2, 3];
        let mut w = WorkerProfile {
            worker: 0,
            shards: 2,
            busy_ns: 10,
            loop_ns: 30,
            merge_ns: 5,
            barrier_publish_ns: 5,
            barrier_window_ns: 5,
            windows: 3,
            active_windows: 2,
            events: 5,
            ..Default::default()
        };
        w.samples.push(WindowSample {
            window: 0,
            start_ns: 0,
            exec_ns: 10,
            events: 5,
            sim_ps: 0,
        });
        a.workers.push(w);
        let b = a.clone();
        a.absorb(&b);
        assert_eq!(a.windows, 6);
        assert_eq!(a.events, 10);
        assert_eq!(a.shard_events, vec![4, 6]);
        assert_eq!(a.workers[0].busy_ns, 20);
        assert_eq!(a.workers[0].windowing_ns(), 10);
        assert_eq!(a.workers[0].samples.len(), 2);
    }
}
