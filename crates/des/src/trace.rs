//! Activity tracing — the software analogue of Anton's on-chip logic
//! analyzer (paper §IV.C, Figure 13).
//!
//! Components record *intervals* of activity tagged with a track id and an
//! activity kind. The tracer can then report per-track utilization over a
//! window and render a coarse ASCII timeline like the paper's Figure 13.

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifies one horizontal track in the trace (e.g. "torus X+ links",
/// "Tensilica cores", "HTIS units"). Tracks aggregate all units of a class,
/// as in the paper's figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub u16);

/// What a unit was doing during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Activity {
    /// Transferring data (links) or computing (cores).
    Busy,
    /// Stalled waiting for data (the paper renders this light gray).
    Stalled,
}

/// One recorded interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// The track (component class) this interval belongs to.
    pub track: TrackId,
    /// What the unit was doing.
    pub activity: Activity,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (≥ start).
    pub end: SimTime,
    /// Free-form phase tag (e.g. "position send", "FFT"). Index into the
    /// tracer's label table to keep intervals `Copy`.
    pub label: u16,
}

/// Interval recorder.
#[derive(Debug, Default)]
pub struct Tracer {
    intervals: Vec<Interval>,
    track_names: BTreeMap<TrackId, String>,
    labels: Vec<String>,
    enabled: bool,
}

impl Tracer {
    /// A tracer that records (tracing costs memory; disable for big sweeps).
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            ..Default::default()
        }
    }

    /// A tracer that drops everything.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether intervals are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register a human-readable name for a track.
    pub fn name_track(&mut self, track: TrackId, name: impl Into<String>) {
        self.track_names.insert(track, name.into());
    }

    /// Intern a label string, returning its id.
    pub fn intern_label(&mut self, label: &str) -> u16 {
        if let Some(i) = self.labels.iter().position(|l| l == label) {
            return i as u16;
        }
        self.labels.push(label.to_owned());
        (self.labels.len() - 1) as u16
    }

    /// Record an interval. Zero-length intervals are kept (they mark
    /// instantaneous events) but contribute nothing to utilization.
    pub fn record(
        &mut self,
        track: TrackId,
        activity: Activity,
        start: SimTime,
        end: SimTime,
        label: u16,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(end >= start);
        self.intervals.push(Interval {
            track,
            activity,
            start,
            end,
            label,
        });
    }

    /// All recorded intervals, in recording order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Label text by id.
    pub fn label(&self, id: u16) -> &str {
        &self.labels[id as usize]
    }

    /// Total busy time on `track` within `[from, to)`, clipped.
    pub fn busy_time(&self, track: TrackId, from: SimTime, to: SimTime) -> SimDuration {
        self.clipped_total(track, Activity::Busy, from, to)
    }

    /// Total stalled time on `track` within `[from, to)`, clipped.
    pub fn stalled_time(&self, track: TrackId, from: SimTime, to: SimTime) -> SimDuration {
        self.clipped_total(track, Activity::Stalled, from, to)
    }

    fn clipped_total(
        &self,
        track: TrackId,
        activity: Activity,
        from: SimTime,
        to: SimTime,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for iv in &self.intervals {
            if iv.track != track || iv.activity != activity {
                continue;
            }
            let s = iv.start.max(from);
            let e = iv.end.min(to);
            if e > s {
                total += e - s;
            }
        }
        total
    }

    /// Emit a CSV of all intervals: `track,name,activity,start_ns,end_ns,label`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("track,name,activity,start_ns,end_ns,label\n");
        for iv in &self.intervals {
            let name = self
                .track_names
                .get(&iv.track)
                .map(String::as_str)
                .unwrap_or("");
            let act = match iv.activity {
                Activity::Busy => "busy",
                Activity::Stalled => "stalled",
            };
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{}\n",
                iv.track.0,
                name,
                act,
                iv.start.as_ns_f64(),
                iv.end.as_ns_f64(),
                self.labels
                    .get(iv.label as usize)
                    .map(String::as_str)
                    .unwrap_or("")
            ));
        }
        out
    }

    /// Render a coarse ASCII timeline: one row per named track, `cols`
    /// character cells spanning `[from, to)`. `#` = busy, `.` = stalled
    /// (only), ` ` = idle. Busy wins over stalled in a cell.
    pub fn ascii_timeline(&self, from: SimTime, to: SimTime, cols: usize) -> String {
        assert!(to > from && cols > 0);
        let span = (to - from).as_ps();
        let cell = (span as f64 / cols as f64).max(1.0);
        let mut out = String::new();
        let width = self
            .track_names
            .values()
            .map(|n| n.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for (&track, name) in &self.track_names {
            let mut row = vec![b' '; cols];
            for iv in &self.intervals {
                if iv.track != track {
                    continue;
                }
                let s = iv.start.max(from);
                let e = iv.end.min(to);
                if e <= s {
                    continue;
                }
                let c0 = ((s.as_ps() - from.as_ps()) as f64 / cell) as usize;
                let c1 = (((e.as_ps() - from.as_ps()) as f64 / cell).ceil() as usize).min(cols);
                for c in row.iter_mut().take(c1).skip(c0.min(cols)) {
                    match iv.activity {
                        Activity::Busy => *c = b'#',
                        Activity::Stalled => {
                            if *c == b' ' {
                                *c = b'.';
                            }
                        }
                    }
                }
            }
            out.push_str(&format!(
                "{:>width$} |{}|\n",
                name,
                String::from_utf8(row).expect("ascii"),
                width = width
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn busy_time_clips_to_window() {
        let mut tr = Tracer::enabled();
        let lbl = tr.intern_label("x");
        tr.record(TrackId(0), Activity::Busy, t(10), t(30), lbl);
        tr.record(TrackId(0), Activity::Busy, t(50), t(60), lbl);
        tr.record(TrackId(1), Activity::Busy, t(0), t(100), lbl);
        // Window [20, 55): 10 ns of the first + 5 ns of the second.
        assert_eq!(tr.busy_time(TrackId(0), t(20), t(55)), SimDuration::from_ns(15));
        // Other activity kind on same track counts separately.
        tr.record(TrackId(0), Activity::Stalled, t(30), t(50), lbl);
        assert_eq!(
            tr.stalled_time(TrackId(0), t(0), t(100)),
            SimDuration::from_ns(20)
        );
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::disabled();
        let lbl = tr.intern_label("x");
        tr.record(TrackId(0), Activity::Busy, t(0), t(10), lbl);
        assert!(tr.intervals().is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn label_interning_dedupes() {
        let mut tr = Tracer::enabled();
        let a = tr.intern_label("FFT");
        let b = tr.intern_label("FFT");
        let c = tr.intern_label("positions");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(tr.label(c), "positions");
    }

    #[test]
    fn csv_output_contains_rows() {
        let mut tr = Tracer::enabled();
        tr.name_track(TrackId(3), "X+ links");
        let lbl = tr.intern_label("position send");
        tr.record(TrackId(3), Activity::Busy, t(1), t(2), lbl);
        let csv = tr.to_csv();
        assert!(csv.contains("3,X+ links,busy,1.000,2.000,position send"));
    }

    #[test]
    fn ascii_timeline_marks_cells() {
        let mut tr = Tracer::enabled();
        tr.name_track(TrackId(0), "TS");
        let lbl = tr.intern_label("w");
        tr.record(TrackId(0), Activity::Busy, t(0), t(50), lbl);
        tr.record(TrackId(0), Activity::Stalled, t(50), t(100), lbl);
        let art = tr.ascii_timeline(t(0), t(100), 10);
        assert!(art.contains("#####"));
        assert!(art.contains("....."));
    }
}
