//! Activity tracing — the software analogue of Anton's on-chip logic
//! analyzer (paper §IV.C, Figure 13).
//!
//! Components record *intervals* of activity tagged with a track id and an
//! activity kind. The tracer can then report per-track utilization over a
//! window and render a coarse ASCII timeline like the paper's Figure 13.

use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifies one horizontal track in the trace (e.g. "torus X+ links",
/// "Tensilica cores", "HTIS units"). Tracks aggregate all units of a class,
/// as in the paper's figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub u16);

/// What a unit was doing during an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Activity {
    /// Transferring data (links) or computing (cores).
    Busy,
    /// Stalled waiting for data (the paper renders this light gray).
    Stalled,
}

/// One recorded interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// The track (component class) this interval belongs to.
    pub track: TrackId,
    /// What the unit was doing.
    pub activity: Activity,
    /// Interval start.
    pub start: SimTime,
    /// Interval end (≥ start).
    pub end: SimTime,
    /// Free-form phase tag (e.g. "position send", "FFT"). Index into the
    /// tracer's label table to keep intervals `Copy`.
    pub label: u16,
}

impl Interval {
    /// The portion of this interval inside `[from, to)`, or `None` if it
    /// falls outside (or clips to zero length). Every windowed query
    /// goes through this, so intervals that straddle the window boundary
    /// contribute only their in-window portion — never their full
    /// length.
    #[inline]
    pub fn clip(&self, from: SimTime, to: SimTime) -> Option<(SimTime, SimTime)> {
        let s = self.start.max(from);
        let e = self.end.min(to);
        (e > s).then_some((s, e))
    }
}

/// Interval recorder.
#[derive(Debug, Default)]
pub struct Tracer {
    intervals: Vec<Interval>,
    track_names: BTreeMap<TrackId, String>,
    /// Units aggregated per track (e.g. 512 links on the "X links"
    /// track); divides utilization. Missing means 1.
    track_units: BTreeMap<TrackId, u64>,
    labels: Vec<String>,
    enabled: bool,
}

impl Tracer {
    /// A tracer that records (tracing costs memory; disable for big sweeps).
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            ..Default::default()
        }
    }

    /// A tracer that drops everything.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether intervals are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Register a human-readable name for a track.
    pub fn name_track(&mut self, track: TrackId, name: impl Into<String>) {
        self.track_names.insert(track, name.into());
    }

    /// Register how many hardware units a track aggregates (e.g. 512
    /// torus links). Utilization divides by this; unset tracks count as
    /// a single unit.
    pub fn set_track_units(&mut self, track: TrackId, units: u64) {
        assert!(units > 0, "a track aggregates at least one unit");
        self.track_units.insert(track, units);
    }

    /// Units aggregated by `track` (1 if never set).
    pub fn track_units(&self, track: TrackId) -> u64 {
        self.track_units.get(&track).copied().unwrap_or(1)
    }

    /// The named tracks, in id order, with their names.
    pub fn tracks(&self) -> impl Iterator<Item = (TrackId, &str)> {
        self.track_names.iter().map(|(t, n)| (*t, n.as_str()))
    }

    /// A track's registered name, if any.
    pub fn track_name(&self, track: TrackId) -> Option<&str> {
        self.track_names.get(&track).map(String::as_str)
    }

    /// The interned label table, in id order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Intern a label string, returning its id.
    pub fn intern_label(&mut self, label: &str) -> u16 {
        if let Some(i) = self.labels.iter().position(|l| l == label) {
            return i as u16;
        }
        self.labels.push(label.to_owned());
        (self.labels.len() - 1) as u16
    }

    /// Record an interval. Zero-length intervals are kept (they mark
    /// instantaneous events) but contribute nothing to utilization.
    pub fn record(
        &mut self,
        track: TrackId,
        activity: Activity,
        start: SimTime,
        end: SimTime,
        label: u16,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(end >= start);
        self.intervals.push(Interval {
            track,
            activity,
            start,
            end,
            label,
        });
    }

    /// All recorded intervals, in recording order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Label text by id.
    pub fn label(&self, id: u16) -> &str {
        &self.labels[id as usize]
    }

    /// Total busy time on `track` within `[from, to)`, clipped.
    pub fn busy_time(&self, track: TrackId, from: SimTime, to: SimTime) -> SimDuration {
        self.clipped_total(track, Activity::Busy, from, to)
    }

    /// Total stalled time on `track` within `[from, to)`, clipped.
    pub fn stalled_time(&self, track: TrackId, from: SimTime, to: SimTime) -> SimDuration {
        self.clipped_total(track, Activity::Stalled, from, to)
    }

    fn clipped_total(
        &self,
        track: TrackId,
        activity: Activity,
        from: SimTime,
        to: SimTime,
    ) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for iv in &self.intervals {
            if iv.track != track || iv.activity != activity {
                continue;
            }
            if let Some((s, e)) = iv.clip(from, to) {
                total += e - s;
            }
        }
        total
    }

    /// Mean busy fraction of `track` over `[from, to)`: clipped busy
    /// time divided by the window span times the track's unit count.
    /// Intervals straddling the window edges contribute only their
    /// in-window portion.
    pub fn utilization(&self, track: TrackId, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from, "empty utilization window");
        let busy = self.busy_time(track, from, to).as_ps() as f64;
        let span = (to - from).as_ps() as f64;
        busy / (span * self.track_units(track) as f64)
    }

    /// Time-binned busy fractions of `track` over `[from, to)`: the
    /// window is split into `nbins` equal bins and each returns its
    /// clipped busy time divided by the bin span times the track's
    /// unit count — the utilization time series congestion telemetry
    /// plots. Intervals straddling bin edges are split between bins,
    /// so the bins sum to [`Tracer::busy_time`] exactly.
    pub fn utilization_bins(
        &self,
        track: TrackId,
        from: SimTime,
        to: SimTime,
        nbins: usize,
    ) -> Vec<f64> {
        assert!(to > from, "empty utilization window");
        assert!(nbins > 0, "need at least one bin");
        let span_ps = (to - from).as_ps();
        let units = self.track_units(track) as f64;
        // Bin b covers [edge(b), edge(b+1)) relative to `from`; the
        // floored edges tile the window exactly.
        let edge = |b: usize| b as u64 * span_ps / nbins as u64;
        let mut busy = vec![0u64; nbins];
        for iv in &self.intervals {
            if iv.track != track || iv.activity != Activity::Busy {
                continue;
            }
            if let Some((s, e)) = iv.clip(from, to) {
                let (s, e) = ((s - from).as_ps(), (e - from).as_ps());
                // Conservative candidate range (±1 bin for edge
                // rounding); out-of-overlap candidates contribute 0.
                let first = ((s * nbins as u64 / span_ps) as usize).saturating_sub(1);
                let last =
                    (((e.saturating_sub(1)) * nbins as u64 / span_ps) as usize + 1).min(nbins - 1);
                for (b, slot) in busy.iter_mut().enumerate().take(last + 1).skip(first) {
                    let lo = edge(b).max(s);
                    let hi = edge(b + 1).min(e);
                    *slot += hi.saturating_sub(lo);
                }
            }
        }
        busy.iter()
            .enumerate()
            .map(|(b, &v)| {
                let bin_span = (edge(b + 1) - edge(b)) as f64;
                if bin_span == 0.0 {
                    0.0
                } else {
                    v as f64 / (bin_span * units)
                }
            })
            .collect()
    }

    /// Busy time on `track` within `[from, to)` broken down by phase
    /// label, in label-id order (clipped like
    /// [`Tracer::busy_time`]). Labels with no busy time are omitted.
    pub fn busy_by_label(
        &self,
        track: TrackId,
        from: SimTime,
        to: SimTime,
    ) -> Vec<(u16, SimDuration)> {
        let mut by_label: BTreeMap<u16, SimDuration> = BTreeMap::new();
        for iv in &self.intervals {
            if iv.track != track || iv.activity != Activity::Busy {
                continue;
            }
            if let Some((s, e)) = iv.clip(from, to) {
                *by_label.entry(iv.label).or_insert(SimDuration::ZERO) += e - s;
            }
        }
        by_label.into_iter().collect()
    }

    /// Emit a CSV of all intervals: `track,name,activity,start_ns,end_ns,label`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("track,name,activity,start_ns,end_ns,label\n");
        for iv in &self.intervals {
            let name = self
                .track_names
                .get(&iv.track)
                .map(String::as_str)
                .unwrap_or("");
            let act = match iv.activity {
                Activity::Busy => "busy",
                Activity::Stalled => "stalled",
            };
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{}\n",
                iv.track.0,
                name,
                act,
                iv.start.as_ns_f64(),
                iv.end.as_ns_f64(),
                self.labels
                    .get(iv.label as usize)
                    .map(String::as_str)
                    .unwrap_or("")
            ));
        }
        out
    }

    /// Render a coarse ASCII timeline: one row per named track, `cols`
    /// character cells spanning `[from, to)`. `#` = busy, `.` = stalled
    /// (only), ` ` = idle. Busy wins over stalled in a cell.
    pub fn ascii_timeline(&self, from: SimTime, to: SimTime, cols: usize) -> String {
        assert!(to > from && cols > 0);
        let span = (to - from).as_ps();
        let cell = (span as f64 / cols as f64).max(1.0);
        let mut out = String::new();
        let width = self
            .track_names
            .values()
            .map(|n| n.len())
            .max()
            .unwrap_or(4)
            .max(4);
        for (&track, name) in &self.track_names {
            let mut row = vec![b' '; cols];
            for iv in &self.intervals {
                if iv.track != track {
                    continue;
                }
                let Some((s, e)) = iv.clip(from, to) else {
                    continue;
                };
                let c0 = ((s.as_ps() - from.as_ps()) as f64 / cell) as usize;
                let c1 = (((e.as_ps() - from.as_ps()) as f64 / cell).ceil() as usize).min(cols);
                for c in row.iter_mut().take(c1).skip(c0.min(cols)) {
                    match iv.activity {
                        Activity::Busy => *c = b'#',
                        Activity::Stalled => {
                            if *c == b' ' {
                                *c = b'.';
                            }
                        }
                    }
                }
            }
            out.push_str(&format!(
                "{:>width$} |{}|\n",
                name,
                String::from_utf8(row).expect("ascii"),
                width = width
            ));
        }
        out
    }
}

/// Streaming, bounded-memory utilization bins: the O(nbins)-per-track
/// counterpart of [`Tracer::utilization_bins`] for 100×-scale runs,
/// where keeping every [`Interval`] is O(events).
///
/// Busy spans are deposited into fixed time bins as they are recorded
/// and then dropped; the bin math (floored edges that tile the window
/// exactly, straddling spans split between bins) is identical to the
/// offline tracer query, and the conservation test pins the two to the
/// same picosecond totals. Two accumulators over the same window merge
/// by element-wise add, so per-shard tracing folds deterministically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinnedUtilization {
    from: SimTime,
    to: SimTime,
    nbins: usize,
    busy: BTreeMap<TrackId, Vec<u64>>,
    units: BTreeMap<TrackId, u64>,
}

impl BinnedUtilization {
    /// New accumulator splitting `[from, to)` into `nbins` equal bins.
    pub fn new(from: SimTime, to: SimTime, nbins: usize) -> BinnedUtilization {
        assert!(to > from, "empty utilization window");
        assert!(nbins > 0, "need at least one bin");
        BinnedUtilization {
            from,
            to,
            nbins,
            busy: BTreeMap::new(),
            units: BTreeMap::new(),
        }
    }

    /// The accumulation window.
    pub fn window(&self) -> (SimTime, SimTime) {
        (self.from, self.to)
    }

    /// Number of bins.
    pub fn nbins(&self) -> usize {
        self.nbins
    }

    /// Declare how many parallel units `track` aggregates (defaults
    /// to 1), matching [`Tracer::set_track_units`].
    pub fn set_track_units(&mut self, track: TrackId, units: u64) {
        self.units.insert(track, units.max(1));
    }

    #[inline]
    fn edge(&self, b: usize) -> u64 {
        b as u64 * (self.to - self.from).as_ps() / self.nbins as u64
    }

    /// Deposit one activity span. Only [`Activity::Busy`] counts toward
    /// utilization (mirroring the offline query); the span is clipped
    /// to the window and split across the bins it straddles.
    pub fn record(&mut self, track: TrackId, activity: Activity, start: SimTime, end: SimTime) {
        if activity != Activity::Busy {
            return;
        }
        let s = start.max(self.from);
        let e = end.min(self.to);
        if e <= s {
            return;
        }
        let span_ps = (self.to - self.from).as_ps();
        let (s, e) = ((s - self.from).as_ps(), (e - self.from).as_ps());
        let nbins = self.nbins;
        let first = ((s * nbins as u64 / span_ps) as usize).saturating_sub(1);
        let last = (((e.saturating_sub(1)) * nbins as u64 / span_ps) as usize + 1).min(nbins - 1);
        let slots = self.busy.entry(track).or_insert_with(|| vec![0u64; nbins]);
        for (b, slot) in slots.iter_mut().enumerate().take(last + 1).skip(first) {
            let lo = (b as u64 * span_ps / nbins as u64).max(s);
            let hi = ((b + 1) as u64 * span_ps / nbins as u64).min(e);
            *slot += hi.saturating_sub(lo);
        }
    }

    /// Per-bin busy picoseconds of `track` (all zeros if never seen).
    pub fn busy_ps(&self, track: TrackId) -> Vec<u64> {
        self.busy
            .get(&track)
            .cloned()
            .unwrap_or_else(|| vec![0; self.nbins])
    }

    /// Total busy time deposited for `track` (sums the bins exactly).
    pub fn busy_time(&self, track: TrackId) -> SimDuration {
        SimDuration::from_ps(self.busy.get(&track).map_or(0, |v| v.iter().sum()))
    }

    /// Per-bin busy fractions, normalized by bin span × track units —
    /// the same series [`Tracer::utilization_bins`] computes offline.
    pub fn fractions(&self, track: TrackId) -> Vec<f64> {
        let units = self.units.get(&track).copied().unwrap_or(1) as f64;
        let busy = self.busy_ps(track);
        (0..self.nbins)
            .map(|b| {
                let bin_span = (self.edge(b + 1) - self.edge(b)) as f64;
                if bin_span == 0.0 {
                    0.0
                } else {
                    busy[b] as f64 / (bin_span * units)
                }
            })
            .collect()
    }

    /// Tracks that deposited busy time, id order.
    pub fn tracks(&self) -> impl Iterator<Item = TrackId> + '_ {
        self.busy.keys().copied()
    }

    /// Merge another accumulator over the *same* window and bin count
    /// (asserted): element-wise add, commutative and associative.
    pub fn merge(&mut self, other: &BinnedUtilization) {
        assert_eq!(
            (self.from, self.to, self.nbins),
            (other.from, other.to, other.nbins),
            "merging utilization bins over different windows"
        );
        for (track, theirs) in &other.busy {
            let slots = self
                .busy
                .entry(*track)
                .or_insert_with(|| vec![0u64; self.nbins]);
            for (a, b) in slots.iter_mut().zip(theirs) {
                *a += b;
            }
        }
        for (track, units) in &other.units {
            let u = self.units.entry(*track).or_insert(1);
            *u = (*u).max(*units);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn busy_time_clips_to_window() {
        let mut tr = Tracer::enabled();
        let lbl = tr.intern_label("x");
        tr.record(TrackId(0), Activity::Busy, t(10), t(30), lbl);
        tr.record(TrackId(0), Activity::Busy, t(50), t(60), lbl);
        tr.record(TrackId(1), Activity::Busy, t(0), t(100), lbl);
        // Window [20, 55): 10 ns of the first + 5 ns of the second.
        assert_eq!(
            tr.busy_time(TrackId(0), t(20), t(55)),
            SimDuration::from_ns(15)
        );
        // Other activity kind on same track counts separately.
        tr.record(TrackId(0), Activity::Stalled, t(30), t(50), lbl);
        assert_eq!(
            tr.stalled_time(TrackId(0), t(0), t(100)),
            SimDuration::from_ns(20)
        );
    }

    /// Regression for window-straddling intervals: an interval larger
    /// than the query window must contribute exactly the window span,
    /// not its full length — in busy time, utilization, and the
    /// per-label breakdown alike.
    #[test]
    fn straddling_interval_clips_to_window() {
        let mut tr = Tracer::enabled();
        let lbl = tr.intern_label("send");
        // 100 ns interval; query a 20 ns window strictly inside it.
        tr.record(TrackId(0), Activity::Busy, t(0), t(100), lbl);
        assert_eq!(
            tr.busy_time(TrackId(0), t(40), t(60)),
            SimDuration::from_ns(20)
        );
        assert_eq!(tr.utilization(TrackId(0), t(40), t(60)), 1.0);
        assert_eq!(
            tr.busy_by_label(TrackId(0), t(40), t(60)),
            vec![(lbl, SimDuration::from_ns(20))]
        );
        // Window overlapping only the tail.
        assert_eq!(
            tr.busy_time(TrackId(0), t(90), t(200)),
            SimDuration::from_ns(10)
        );
        // Window entirely outside.
        assert_eq!(tr.busy_time(TrackId(0), t(200), t(300)), SimDuration::ZERO);
    }

    /// Binned utilization splits straddling intervals between bins and
    /// conserves total busy time exactly, including when the window
    /// span does not divide evenly by the bin count.
    #[test]
    fn utilization_bins_conserve_busy_time() {
        let mut tr = Tracer::enabled();
        let lbl = tr.intern_label("x");
        // [10, 30) busy, then [50, 60): 30 ns total in [0, 100).
        tr.record(TrackId(0), Activity::Busy, t(10), t(30), lbl);
        tr.record(TrackId(0), Activity::Busy, t(50), t(60), lbl);
        // 4 bins of 25 ns: [0,25) holds 15 ns, [25,50) 5 ns, [50,75) 10 ns.
        let bins = tr.utilization_bins(TrackId(0), t(0), t(100), 4);
        assert_eq!(bins, vec![0.6, 0.2, 0.4, 0.0]);
        // Bins weighted by span sum to busy_time exactly.
        let busy = tr.busy_time(TrackId(0), t(0), t(100));
        let recon: f64 = bins.iter().map(|u| u * 25_000.0).sum();
        assert_eq!(recon, busy.as_ps() as f64);
        // Uneven split (100 ns into 3 bins) still conserves the total.
        let bins3 = tr.utilization_bins(TrackId(0), t(0), t(100), 3);
        let span = 100_000u64;
        let recon3: f64 = bins3
            .iter()
            .enumerate()
            .map(|(b, u)| {
                let w = ((b as u64 + 1) * span / 3 - b as u64 * span / 3) as f64;
                u * w
            })
            .sum();
        assert!((recon3 - busy.as_ps() as f64).abs() < 1e-6);
        // A single bin reproduces plain utilization.
        let one = tr.utilization_bins(TrackId(0), t(0), t(100), 1);
        assert_eq!(one, vec![tr.utilization(TrackId(0), t(0), t(100))]);
        // Track units divide each bin, same as utilization().
        tr.set_track_units(TrackId(0), 2);
        let halved = tr.utilization_bins(TrackId(0), t(0), t(100), 4);
        assert_eq!(halved, vec![0.3, 0.1, 0.2, 0.0]);
    }

    #[test]
    fn utilization_divides_by_track_units() {
        let mut tr = Tracer::enabled();
        let lbl = tr.intern_label("x");
        tr.set_track_units(TrackId(2), 4);
        // Two of four units busy for the whole window → 50%.
        tr.record(TrackId(2), Activity::Busy, t(0), t(10), lbl);
        tr.record(TrackId(2), Activity::Busy, t(0), t(10), lbl);
        assert_eq!(tr.utilization(TrackId(2), t(0), t(10)), 0.5);
        assert_eq!(tr.track_units(TrackId(2)), 4);
        assert_eq!(tr.track_units(TrackId(9)), 1);
    }

    #[test]
    fn tracks_and_labels_are_enumerable() {
        let mut tr = Tracer::enabled();
        tr.name_track(TrackId(1), "cores");
        tr.name_track(TrackId(0), "links");
        let names: Vec<_> = tr.tracks().collect();
        assert_eq!(names, vec![(TrackId(0), "links"), (TrackId(1), "cores")]);
        assert_eq!(tr.track_name(TrackId(1)), Some("cores"));
        assert_eq!(tr.track_name(TrackId(7)), None);
        tr.intern_label("a");
        tr.intern_label("b");
        assert_eq!(tr.labels(), &["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn busy_by_label_splits_phases() {
        let mut tr = Tracer::enabled();
        let send = tr.intern_label("position send");
        let fft = tr.intern_label("FFT");
        tr.record(TrackId(0), Activity::Busy, t(0), t(30), send);
        tr.record(TrackId(0), Activity::Busy, t(30), t(40), fft);
        tr.record(TrackId(0), Activity::Stalled, t(40), t(90), fft);
        let by = tr.busy_by_label(TrackId(0), t(0), t(100));
        assert_eq!(
            by,
            vec![
                (send, SimDuration::from_ns(30)),
                (fft, SimDuration::from_ns(10))
            ]
        );
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::disabled();
        let lbl = tr.intern_label("x");
        tr.record(TrackId(0), Activity::Busy, t(0), t(10), lbl);
        assert!(tr.intervals().is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn label_interning_dedupes() {
        let mut tr = Tracer::enabled();
        let a = tr.intern_label("FFT");
        let b = tr.intern_label("FFT");
        let c = tr.intern_label("positions");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(tr.label(c), "positions");
    }

    #[test]
    fn csv_output_contains_rows() {
        let mut tr = Tracer::enabled();
        tr.name_track(TrackId(3), "X+ links");
        let lbl = tr.intern_label("position send");
        tr.record(TrackId(3), Activity::Busy, t(1), t(2), lbl);
        let csv = tr.to_csv();
        assert!(csv.contains("3,X+ links,busy,1.000,2.000,position send"));
    }

    #[test]
    fn ascii_timeline_marks_cells() {
        let mut tr = Tracer::enabled();
        tr.name_track(TrackId(0), "TS");
        let lbl = tr.intern_label("w");
        tr.record(TrackId(0), Activity::Busy, t(0), t(50), lbl);
        tr.record(TrackId(0), Activity::Stalled, t(50), t(100), lbl);
        let art = tr.ascii_timeline(t(0), t(100), 10);
        assert!(art.contains("#####"));
        assert!(art.contains("....."));
    }

    #[test]
    fn binned_utilization_matches_offline_tracer() {
        // Deliberately awkward: window not divisible by nbins, spans
        // straddling edges and the window boundary, multi-unit track.
        let mut tr = Tracer::enabled();
        tr.set_track_units(TrackId(1), 4);
        let lbl = tr.intern_label("w");
        let mut bu = BinnedUtilization::new(t(0), t(100), 7);
        bu.set_track_units(TrackId(1), 4);
        let spans = [(3u64, 18u64), (17, 44), (60, 61), (95, 130), (0, 100)];
        for &(s, e) in &spans {
            tr.record(TrackId(1), Activity::Busy, t(s), t(e), lbl);
            bu.record(TrackId(1), Activity::Busy, t(s), t(e));
        }
        tr.record(TrackId(1), Activity::Stalled, t(10), t(90), lbl);
        bu.record(TrackId(1), Activity::Stalled, t(10), t(90));
        assert_eq!(
            bu.fractions(TrackId(1)),
            tr.utilization_bins(TrackId(1), t(0), t(100), 7)
        );
        assert_eq!(
            bu.busy_time(TrackId(1)),
            tr.busy_time(TrackId(1), t(0), t(100))
        );
    }

    #[test]
    fn binned_utilization_merges_shards() {
        let mut whole = BinnedUtilization::new(t(0), t(100), 5);
        let mut a = BinnedUtilization::new(t(0), t(100), 5);
        let mut b = BinnedUtilization::new(t(0), t(100), 5);
        whole.record(TrackId(0), Activity::Busy, t(5), t(25));
        a.record(TrackId(0), Activity::Busy, t(5), t(25));
        whole.record(TrackId(0), Activity::Busy, t(50), t(80));
        b.record(TrackId(0), Activity::Busy, t(50), t(80));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
    }
}
