//! A small, explicit, reproducible PRNG.
//!
//! Figures in the paper must regenerate bit-identically across runs and
//! across library upgrades, so the workspace uses its own fixed PRNG
//! (xoshiro256** seeded via SplitMix64) rather than `rand`'s unspecified
//! `StdRng` algorithm. The implementation follows the public-domain
//! reference by Blackman & Vigna.

/// xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed deterministically from a single u64.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derive an independent stream for a sub-component; `stream` tags the
    /// component (e.g. node id) so per-component draws don't interleave.
    pub fn derive(&self, stream: u64) -> Rng {
        // Mix the current state with the stream tag through SplitMix64.
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound). `bound` must be nonzero.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in [lo, hi).
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Standard normal draw (Box–Muller; one value per call, simple and
    /// adequate for workload generation).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.next_f64();
            if u1 > 1e-300 {
                let u2 = self.next_f64();
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_gives_independent_streams() {
        let root = Rng::seed_from(7);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        assert_ne!(a.next_u64(), b.next_u64());
        // Deriving again with the same tag reproduces the stream.
        let mut a2 = root.derive(0);
        let mut a3 = Rng::seed_from(7).derive(0);
        a3.next_u64();
        let first = a2.next_u64();
        let mut a4 = root.derive(0);
        assert_eq!(first, a4.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_roughly_uniform() {
        let mut r = Rng::seed_from(11);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bin expects 10,000; allow 5% slack.
            assert!((9_500..10_500).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = Rng::seed_from(13);
        let n = 100_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }
}
