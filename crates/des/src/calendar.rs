//! Calendar-queue event scheduling and arena event storage — the hot-path
//! data structures behind both engines.
//!
//! A binary heap pays `O(log n)` sift work on every push and pop, and a
//! DES does one push and one pop per event. A **calendar queue**
//! (Brown 1988) exploits what the paper exploits: event times are dense
//! and near-monotonic, because every latency in the machine is a small
//! fixed number of nanoseconds. Future events hash by time into unsorted
//! *day* buckets (`O(1)` push); only the current day's events sit in a
//! small sorted heap, so pop cost tracks the handful of events sharing
//! one ~8 ns day rather than the whole queue.
//!
//! [`EventArena`] complements it on the parallel path: events live in a
//! slab indexed by `u32`, so the queue moves 4-byte handles instead of
//! full event payloads when it sifts, swaps, and rehashes.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Default day width: `2^13` ps ≈ 8 ns per bucket, a few events per day
/// for fabric workloads whose hops are tens of nanoseconds apart.
pub const DEFAULT_DAY_SHIFT: u32 = 13;

/// Initial bucket count (power of two; grows by doubling).
const INITIAL_BUCKETS: usize = 1024;

/// One queued item. Ordering is on `(at, key)` only — inverted, so the
/// `BinaryHeap` "today" pops the earliest first.
struct Entry<K, V> {
    at: SimTime,
    key: K,
    value: V,
}

impl<K: Ord, V> PartialEq for Entry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key
    }
}
impl<K: Ord, V> Eq for Entry<K, V> {}
impl<K: Ord, V> PartialOrd for Entry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord, V> Ord for Entry<K, V> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
    }
}

/// A monotone priority queue keyed on `(SimTime, K)`: a calendar of
/// unsorted future-day buckets plus a sorted "today" heap.
///
/// Pops are totally ordered by `(at, key)`, exactly like a binary heap
/// over the same entries (property-tested against one), so swapping this
/// in under either engine cannot change any tie-break. Pushes at or
/// before the current day land directly in the today heap, so the
/// structure tolerates same-instant chains and does not require global
/// monotonicity — only that pops are what advance the clock.
pub struct CalendarQueue<K, V> {
    /// Unsorted buckets for future days, indexed `day & mask`.
    buckets: Vec<Vec<Entry<K, V>>>,
    /// Bucket index mask (`buckets.len() - 1`; length is a power of two).
    mask: u64,
    /// Sorted (inverted-heap) entries of the current day.
    today: BinaryHeap<Entry<K, V>>,
    /// Current day number (`at >> shift`).
    day: u64,
    /// Day width as a power-of-two picosecond shift.
    shift: u32,
    /// Entries currently stored in `buckets` (excludes `today`).
    in_buckets: usize,
    /// Total entries.
    len: usize,
}

impl<K: Ord + Copy, V> Default for CalendarQueue<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy, V> CalendarQueue<K, V> {
    /// An empty queue with the default ~8 ns day width.
    pub fn new() -> CalendarQueue<K, V> {
        Self::with_day_shift(DEFAULT_DAY_SHIFT)
    }

    /// An empty queue whose days span `2^shift` picoseconds.
    pub fn with_day_shift(shift: u32) -> CalendarQueue<K, V> {
        assert!(shift < 64, "day shift must leave a nonzero day number");
        CalendarQueue {
            buckets: (0..INITIAL_BUCKETS).map(|_| Vec::new()).collect(),
            mask: INITIAL_BUCKETS as u64 - 1,
            today: BinaryHeap::new(),
            day: 0,
            shift,
            in_buckets: 0,
            len: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `value` at `(at, key)`.
    pub fn push(&mut self, at: SimTime, key: K, value: V) {
        let entry = Entry { at, key, value };
        let d = at.0 >> self.shift;
        self.len += 1;
        if d <= self.day {
            // Current (or, defensively, past) day: straight into the
            // sorted heap so same-instant chains keep FIFO semantics.
            self.today.push(entry);
        } else {
            if self.in_buckets >= 2 * self.buckets.len() {
                self.grow();
            }
            self.buckets[(d & self.mask) as usize].push(entry);
            self.in_buckets += 1;
        }
    }

    /// Earliest queued time, if any.
    pub fn peek_at(&mut self) -> Option<SimTime> {
        self.settle();
        self.today.peek().map(|e| e.at)
    }

    /// Earliest queued `(time, key)`, if any.
    pub fn peek_key(&mut self) -> Option<(SimTime, K)> {
        self.settle();
        self.today.peek().map(|e| (e.at, e.key))
    }

    /// Remove and return the entry with the smallest `(at, key)`.
    pub fn pop(&mut self) -> Option<(SimTime, K, V)> {
        self.settle();
        self.today.pop().map(|e| {
            self.len -= 1;
            (e.at, e.key, e.value)
        })
    }

    /// Ensure the today heap holds the earliest pending entries: advance
    /// the day pointer, moving each reached day's bucket entries into the
    /// heap, until the heap is non-empty (or the queue is).
    fn settle(&mut self) {
        if !self.today.is_empty() || self.len == 0 {
            return;
        }
        let mut scanned = 0usize;
        loop {
            let idx = (self.day & self.mask) as usize;
            let bucket = &mut self.buckets[idx];
            let mut moved = false;
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].at.0 >> self.shift == self.day {
                    self.today.push(bucket.swap_remove(i));
                    self.in_buckets -= 1;
                    moved = true;
                } else {
                    i += 1;
                }
            }
            if moved {
                return;
            }
            self.day += 1;
            scanned += 1;
            // A full lap of empty scans means every pending entry is at
            // least one calendar "year" out (far-future watchdogs, idle
            // horizons): jump straight to the earliest pending day.
            if scanned > self.buckets.len() {
                let min_at = self
                    .buckets
                    .iter()
                    .flatten()
                    .map(|e| e.at)
                    .min()
                    .expect("len > 0 with an empty today heap");
                self.day = min_at.0 >> self.shift;
                scanned = 0;
            }
        }
    }

    /// Double the bucket count and rehash the future entries. `today` is
    /// untouched — growth never reorders anything.
    fn grow(&mut self) {
        let new_n = self.buckets.len() * 2;
        let new_mask = new_n as u64 - 1;
        let old: Vec<Entry<K, V>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        self.buckets = (0..new_n).map(|_| Vec::new()).collect();
        self.mask = new_mask;
        for e in old {
            let d = e.at.0 >> self.shift;
            self.buckets[(d & new_mask) as usize].push(e);
        }
    }
}

/// A slab of events addressed by dense `u32` handles, with a free list.
///
/// The parallel engine stores full event payloads here and queues only
/// the 4-byte handle, so calendar rehashes and heap sifts move handles,
/// not payloads, and a popped event is taken by value with no per-event
/// heap allocation.
pub struct EventArena<E> {
    slots: Vec<Option<E>>,
    free: Vec<u32>,
}

impl<E> Default for EventArena<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventArena<E> {
    /// An empty arena.
    pub fn new() -> EventArena<E> {
        EventArena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Live (inserted, not yet taken) events.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no events are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Store `event`, returning its handle.
    pub fn insert(&mut self, event: E) -> u32 {
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(event);
                idx
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena full");
                self.slots.push(Some(event));
                idx
            }
        }
    }

    /// Remove and return the event behind `idx`. Panics if the handle
    /// was already taken (a queue/arena desync is always a bug).
    pub fn take(&mut self, idx: u32) -> E {
        let ev = self.slots[idx as usize].take().expect("stale arena handle");
        self.free.push(idx);
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_key_order() {
        let mut q: CalendarQueue<u64, &str> = CalendarQueue::new();
        q.push(SimTime::from_ns(30), 0, "c");
        q.push(SimTime::from_ns(10), 1, "a2");
        q.push(SimTime::from_ns(10), 0, "a1");
        q.push(SimTime::from_ns(20), 0, "b");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_at(), Some(SimTime::from_ns(10)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, v)| v)).collect();
        assert_eq!(order, vec!["a1", "a2", "b", "c"]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_pushes_after_pops_stay_ordered() {
        // A same-instant chain: pop an event, push more at the same time.
        let mut q: CalendarQueue<u64, u64> = CalendarQueue::new();
        q.push(SimTime::from_ns(5), 0, 0);
        let (at, _, _) = q.pop().unwrap();
        q.push(at, 2, 2);
        q.push(at, 1, 1);
        assert_eq!(q.pop().map(|(_, k, _)| k), Some(1));
        assert_eq!(q.pop().map(|(_, k, _)| k), Some(2));
    }

    #[test]
    fn far_future_gaps_jump_instead_of_scanning() {
        let mut q: CalendarQueue<u64, u32> = CalendarQueue::new();
        // ~1 ms apart: millions of empty 8 ns days between events.
        for k in 0..8u64 {
            q.push(SimTime(k * 1_000_000_000), k, k as u32);
        }
        let mut got = Vec::new();
        while let Some((at, _, v)) = q.pop() {
            got.push((at.0, v));
        }
        assert_eq!(
            got,
            (0..8u64)
                .map(|k| (k * 1_000_000_000, k as u32))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn growth_rehash_preserves_order() {
        let mut q: CalendarQueue<u64, usize> = CalendarQueue::with_day_shift(4);
        // Enough spread-out entries to force several doublings.
        let n = 10_000usize;
        for k in 0..n {
            // A scrambled but collision-free time pattern.
            let t = ((k * 7919) % n) as u64 * 100;
            q.push(SimTime(t), t, k);
        }
        let mut last = None;
        let mut count = 0;
        while let Some((at, _, _)) = q.pop() {
            if let Some(prev) = last {
                assert!(at >= prev);
            }
            last = Some(at);
            count += 1;
        }
        assert_eq!(count, n);
    }

    #[test]
    fn arena_recycles_slots() {
        let mut a: EventArena<String> = EventArena::new();
        let i = a.insert("x".into());
        let j = a.insert("y".into());
        assert_eq!(a.len(), 2);
        assert_eq!(a.take(i), "x");
        let k = a.insert("z".into());
        // The freed slot is reused: the slab never grows past the live peak.
        assert_eq!(k, i);
        assert_eq!(a.take(j), "y");
        assert_eq!(a.take(k), "z");
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn double_take_panics() {
        let mut a: EventArena<u8> = EventArena::new();
        let i = a.insert(1);
        a.take(i);
        a.take(i);
    }
}
