//! # anton-des — deterministic discrete-event simulation kernel
//!
//! The foundation of the Anton SC10 reproduction: a picosecond-resolution
//! event queue with strict deterministic ordering, plus measurement
//! utilities (streaming stats, histograms, an activity tracer standing in
//! for Anton's on-chip logic analyzer) and a fixed, reproducible PRNG.
//!
//! Determinism is the load-bearing property: figure regeneration must be
//! bit-identical across runs. The classic [`Engine`] drains one global
//! queue on one core; [`par::ParEngine`] shards the queue and executes
//! conservatively in parallel — exploiting the paper's own observation
//! that a fixed minimum link latency bounds how soon one region of the
//! machine can affect another — while producing bit-identical results at
//! any thread count (see the [`par`] module docs for the argument).
//!
//! ```
//! use anton_des::{Engine, EventHandler, Scheduler, SimDuration, SimTime};
//!
//! struct World { fired: u32 }
//! impl EventHandler<&'static str> for World {
//!     fn handle(&mut self, ev: &'static str, sched: &mut Scheduler<&'static str>) {
//!         self.fired += 1;
//!         if ev == "first" {
//!             sched.after(SimDuration::from_ns(162), "second");
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! engine.schedule_at(SimTime::ZERO, "first");
//! let mut world = World { fired: 0 };
//! engine.run(&mut world);
//! assert_eq!(world.fired, 2);
//! assert_eq!(engine.now(), SimTime::from_ns(162));
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod engine;
pub mod par;
pub mod profile;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use calendar::{CalendarQueue, EventArena, DEFAULT_DAY_SHIFT};
pub use engine::{Engine, EventHandler, NopProbe, Probe, RunOutcome, Scheduler};
pub use par::{Executor, LookaheadMatrix, LookaheadMode, ParEngine, ShardMap};
pub use profile::{
    Heartbeat, ParProfile, StderrTelemetry, TelemetryConfig, TelemetrySink, WindowSample,
    WorkerProfile, DEFAULT_SAMPLE_CAP,
};
pub use rng::Rng;
pub use stats::{Histogram, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{Activity, BinnedUtilization, Interval, Tracer, TrackId};

/// Re-exported so dependents don't need to spell the module path.
pub mod prelude {
    pub use crate::engine::{Engine, EventHandler, RunOutcome, Scheduler};
    pub use crate::rng::Rng;
    pub use crate::stats::{Histogram, Summary};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Activity, BinnedUtilization, Tracer, TrackId};
}
