//! Simulated time.
//!
//! All simulated time in this workspace is kept in **picoseconds** as a
//! `u64`. Anton's interesting latencies span from single-digit nanoseconds
//! (an on-chip router hop) to tens of microseconds (a long-range MD time
//! step), so picoseconds give integer arithmetic with ample headroom:
//! `u64::MAX` ps is over 200 days of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in picoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Picoseconds since simulation start.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds since simulation start (fractional).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Microseconds since simulation start (fractional).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`. Panics in debug builds if
    /// `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "time went backwards");
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Construct from fractional nanoseconds (rounds to nearest ps).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        SimDuration((ns * 1e3).round() as u64)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Nanoseconds (fractional).
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Microseconds (fractional).
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time to serialize `bytes` bytes onto a channel of `gbit_per_s`
    /// (10^9 bits per second), rounded up to the next picosecond so a
    /// nonzero payload always consumes nonzero time.
    pub fn for_bytes_at_gbps(bytes: u64, gbit_per_s: f64) -> SimDuration {
        debug_assert!(gbit_per_s > 0.0);
        let ps = (bytes as f64 * 8.0 * 1e3 / gbit_per_s).ceil() as u64;
        SimDuration(ps)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "negative duration");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(rhs.0 <= self.0, "negative duration");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ns", self.as_ns_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3} us", self.as_us_f64())
        } else {
            write!(f, "{:.3} ns", self.as_ns_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        assert_eq!(SimTime::from_ns(162).as_ps(), 162_000);
        assert_eq!(SimTime::from_us(3).as_ps(), 3_000_000);
        assert_eq!(SimDuration::from_ns(54).as_ps(), 54_000);
        assert_eq!(SimDuration::from_us(1).as_ps(), 1_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100) + SimDuration::from_ns(62);
        assert_eq!(t, SimTime::from_ns(162));
        assert_eq!(t.since(SimTime::from_ns(100)), SimDuration::from_ns(62));
        assert_eq!(SimDuration::from_ns(10) * 3, SimDuration::from_ns(30));
        assert_eq!(SimDuration::from_ns(30) / 3, SimDuration::from_ns(10));
    }

    #[test]
    fn serialization_time_matches_bandwidth() {
        // 256 bytes at 36.8 Gbit/s = 55.65 ns.
        let d = SimDuration::for_bytes_at_gbps(256, 36.8);
        let ns = d.as_ns_f64();
        assert!((ns - 55.652).abs() < 0.01, "got {ns}");
        // Zero bytes take zero time.
        assert_eq!(SimDuration::for_bytes_at_gbps(0, 36.8), SimDuration::ZERO);
        // One byte takes nonzero time (rounds up).
        assert!(SimDuration::for_bytes_at_gbps(1, 1000.0).as_ps() > 0);
    }

    #[test]
    fn display_picks_units() {
        assert_eq!(format!("{}", SimDuration::from_ns(162)), "162.000 ns");
        assert_eq!(format!("{}", SimDuration::from_us(2)), "2.000 us");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }

    #[test]
    fn fractional_ns() {
        assert_eq!(SimDuration::from_ns_f64(9.5).as_ps(), 9_500);
        assert_eq!(SimDuration::from_ns_f64(0.0004).as_ps(), 0);
    }
}
