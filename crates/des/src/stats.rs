//! Measurement helpers: streaming summaries and fixed-bin histograms.

use crate::time::SimDuration;

/// Streaming min/max/mean/variance over f64 samples (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration sample, in nanoseconds.
    pub fn record_duration_ns(&mut self, d: SimDuration) {
        self.record(d.as_ns_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for the empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample standard deviation (0 with fewer than 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Smallest sample (None if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample (None if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

/// Fixed-width-bin histogram over non-negative f64 samples, with an
/// overflow bin. Used for latency distributions.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    summary: Summary,
}

impl Histogram {
    /// `nbins` bins of `bin_width` each, covering `[0, nbins * bin_width)`.
    pub fn new(bin_width: f64, nbins: usize) -> Self {
        assert!(bin_width > 0.0 && nbins > 0);
        Histogram {
            bin_width,
            bins: vec![0; nbins],
            overflow: 0,
            summary: Summary::new(),
        }
    }

    /// Record one sample (values below 0 clamp into bin 0).
    pub fn record(&mut self, x: f64) {
        self.summary.record(x);
        let idx = (x.max(0.0) / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Count of samples beyond the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.summary.count()
    }

    /// The streaming summary over all samples.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Approximate p-th percentile (0..=100) by bin interpolation.
    /// Returns None if empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (p / 100.0 * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some((i as f64 + 0.5) * self.bin_width);
            }
        }
        Some(self.bins.len() as f64 * self.bin_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample stddev of this classic dataset is ~2.138.
        assert!((s.stddev() - 2.1380899).abs() < 1e-6);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_binning_and_overflow() {
        let mut h = Histogram::new(10.0, 5); // [0,50)
        for x in [0.0, 9.9, 10.0, 25.0, 49.9, 50.0, 1000.0] {
            h.record(x);
        }
        assert_eq!(h.bin(0), 2);
        assert_eq!(h.bin(1), 1);
        assert_eq!(h.bin(2), 1);
        assert_eq!(h.bin(4), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_percentile() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let p50 = h.percentile(50.0).unwrap();
        assert!((p50 - 49.5).abs() < 1.0, "p50={p50}");
        let p99 = h.percentile(99.0).unwrap();
        assert!(p99 >= 98.0, "p99={p99}");
        assert_eq!(Histogram::new(1.0, 4).percentile(50.0), None);
    }

    #[test]
    fn duration_recording() {
        let mut s = Summary::new();
        s.record_duration_ns(SimDuration::from_ns(162));
        assert_eq!(s.mean(), 162.0);
    }
}
