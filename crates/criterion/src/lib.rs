//! # criterion (offline shim)
//!
//! The build environment has no crates.io access, so this crate is a
//! **minimal stand-in** for the subset of the
//! [Criterion](https://docs.rs/criterion) API used by the workspace's
//! `benches/`: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, and `Bencher::iter`.
//!
//! Statistics are deliberately simple: each benchmark runs a short warmup,
//! then `sample_size` timed samples of an adaptively chosen batch size, and
//! prints mean and min per-iteration wall time. That is enough to spot
//! order-of-magnitude regressions and to keep the benches compiling and
//! runnable offline; it makes no claim to Criterion's statistical rigor.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches also use
/// `std::hint::black_box` directly).
pub use std::hint::black_box;

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: &str, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// A bare parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (Criterion's default is 100;
    /// the shim default is 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), |b| f(b));
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}

    fn run_one(&mut self, label: &str, mut run: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        run(&mut b);
        match b.report() {
            Some((mean, min)) => println!(
                "{label:<40} mean {:>12}  min {:>12}  ({} samples)",
                fmt_duration(mean),
                fmt_duration(min),
                self.sample_size,
            ),
            None => println!("{label:<40} (no measurement: iter was never called)"),
        }
    }
}

/// Collects timed samples of the closure under test.
pub struct Bencher {
    /// Per-iteration durations of each sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, first warming up, then recording `sample_size`
    /// samples of a batch size chosen so each sample takes ≳1 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and batch-size calibration: grow the batch until one
        // batch costs at least ~1 ms (or a cap, for very slow routines).
        let mut batch: u64 = 1;
        let target = Duration::from_millis(1);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let took = t0.elapsed();
            if took >= target || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }

    fn report(&self) -> Option<(Duration, Duration)> {
        if self.samples.is_empty() {
            return None;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = *self.samples.iter().min().expect("nonempty");
        Some((mean, min))
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group: `criterion_group!(benches, fn_a, fn_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define the bench harness entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip the
            // (slow) measurement loop there, as Criterion itself does.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-self-test");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
