//! # proptest (offline shim)
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate provides a **minimal, deterministic stand-in** for the subset
//! of the [proptest](https://docs.rs/proptest) API the workspace's tests
//! use: the `proptest!` macro over strategy-bound arguments, integer and
//! float range strategies, `prop::collection::vec`, `Just`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics immediately with the drawn
//!   inputs in the panic message (the `prop_assert*` macros include them).
//! - **Fixed deterministic seeding.** Case `i` of test `name` draws from a
//!   SplitMix64/xoshiro256** stream keyed on `(name, i)`, so failures
//!   reproduce bit-identically run over run — the same property the rest
//!   of the workspace demands of itself.
//! - **`proptest-regressions` files are ignored.**
//!
//! The default case count is 64 (real proptest runs 256); override per
//! block with `#![proptest_config(ProptestConfig::with_cases(n))]`.

#![warn(missing_docs)]

use std::ops::Range;

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator backing the shim: xoshiro256** seeded via
/// SplitMix64, identical to the workspace's `anton-des` PRNG (duplicated
/// here so the shim stays dependency-free in both directions).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the test name so each property gets its own stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl TestRng {
    /// The stream for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut sm = fnv1a(name.as_bytes()) ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        TestRng { s }
    }

    /// Next raw 64-bit draw (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in [0, bound) (Lemire rejection).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Failure payload of a property body (proptest's `TestCaseError`,
/// reduced to a message). Bodies mostly interact with this through early
/// `return Ok(())` skips; the `prop_assert*` macros panic directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type each property body is wrapped into, as in real proptest
/// (which is what makes `return Ok(())` legal inside a property).
pub type TestCaseResult = Result<(), TestCaseError>;

/// A value generator. The shim's `Strategy` draws a value directly; there
/// is no shrinking tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy producing exactly one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.next_f64() as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy combinators and collection strategies.
pub mod prop {
    /// Collection strategies (`prop::collection::vec`).
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for a `Vec` whose elements come from `element` and
        /// whose length is drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = Strategy::sample(&self.len, rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a `proptest!`-using test module needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

/// Assert a condition inside a property; panics with the formatted message
/// (the shim has no shrinking, so this is a hard failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skip the current case when an assumption does not hold. The shim simply
/// moves on to the next case (by returning from the per-case closure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// The property-test macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over deterministic random draws.
///
/// ```ignore
/// use proptest::prelude::*;
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must precede the catch-all.
    (@with_cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                // Bind each argument from its strategy, then run one case
                // in a closure returning TestCaseResult so bodies may use
                // early `return Ok(())` (and prop_assume! may skip).
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                #[allow(clippy::redundant_closure_call)]
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
    // Block-level config, then the properties.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    // No config: default.
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = (5u32..17).sample(&mut rng);
            assert!((5..17).contains(&v));
            let f = (-2.0f64..3.0).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn same_case_reproduces() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The macro itself round-trips bindings and assumptions.
        #[test]
        fn macro_smoke(a in 1u64..100, v in prop::collection::vec(0i32..10, 2..6)) {
            prop_assume!(a != 0);
            prop_assert!(a < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..10).contains(&x)));
        }
    }
}
