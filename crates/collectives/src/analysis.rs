//! Closed-form hop/round analysis of the all-reduce algorithms
//! (paper §IV.B.4's 3N/2-vs-3(N−1) comparison).

use anton_topo::TorusDims;

/// Rounds and sequential hop counts of an all-reduce algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopCost {
    /// Communication rounds (synchronization points).
    pub rounds: u32,
    /// Total sequential hops on the critical path (the farthest distance
    /// a datum travels per round, summed).
    pub critical_hops: u32,
}

/// Dimension-ordered multicast all-reduce: 3 rounds; each round's
/// farthest delivery is half the axis (shortest-path both ways), so an
/// N×N×N machine pays 3·N/2 critical hops — the minimum possible.
pub fn dimension_ordered_cost(dims: TorusDims) -> HopCost {
    HopCost {
        rounds: 3,
        critical_hops: dims.nx / 2 + dims.ny / 2 + dims.nz / 2,
    }
}

/// Radix-2 butterfly: log₂ rounds per dimension; round `b` exchanges with
/// the partner 2^b away, so an N×N×N machine pays 3·(N−1) critical hops
/// across 3·log₂N rounds. Axes must be powers of two.
pub fn butterfly_cost(dims: TorusDims) -> HopCost {
    let mut rounds = 0;
    let mut hops = 0;
    for n in [dims.nx, dims.ny, dims.nz] {
        assert!(n.is_power_of_two(), "butterfly requires power-of-two axes");
        rounds += n.trailing_zeros();
        hops += n - 1; // 1 + 2 + 4 + … + n/2
    }
    HopCost {
        rounds,
        critical_hops: hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_for_8x8x8() {
        let dims = TorusDims::anton_512();
        let do_cost = dimension_ordered_cost(dims);
        assert_eq!(
            do_cost,
            HopCost {
                rounds: 3,
                critical_hops: 12
            }
        ); // 3N/2 = 12
        let bf = butterfly_cost(dims);
        assert_eq!(
            bf,
            HopCost {
                rounds: 9,
                critical_hops: 21
            }
        ); // 3log₂8, 3(N−1)
    }

    #[test]
    fn dimension_ordered_always_wins_or_ties_on_hops() {
        for n in [2u32, 4, 8, 16] {
            let dims = TorusDims::new(n, n, n);
            let d = dimension_ordered_cost(dims);
            let b = butterfly_cost(dims);
            assert!(d.critical_hops <= b.critical_hops, "n={n}");
            assert!(d.rounds <= b.rounds, "n={n}");
        }
    }

    #[test]
    fn asymmetric_machines() {
        // 8×8×16 (the 1024-node Table 2 configuration).
        let dims = TorusDims::new(8, 8, 16);
        assert_eq!(dimension_ordered_cost(dims).critical_hops, 4 + 4 + 8);
        assert_eq!(butterfly_cost(dims).rounds, 3 + 3 + 4);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn butterfly_rejects_odd_axes() {
        butterfly_cost(TorusDims::new(6, 8, 8));
    }
}
