//! Self-healing all-reduce: a reduction that survives node deaths.
//!
//! The dimension-ordered collective of [`allreduce`](crate::allreduce)
//! is the paper's latency-optimal algorithm, but it has no answer to a
//! node dying mid-collective: a missing counted write stalls every
//! watcher forever. This module trades a few microseconds of latency
//! for fault tolerance: a binary reduction tree whose nodes *escalate*
//! unacknowledged contributions past dead ancestors, so the collective
//! completes with the correct sum over every surviving node even when
//! machines drop out mid-flight.
//!
//! ## Protocol
//!
//! Nodes form a binary heap tree over node ids (parent of `i` is
//! `(i−1)/2`; node 0 is the root and must not die). Every message is a
//! FIFO packet carrying a set of `(origin, value)` *entries*; folding
//! is insert-if-absent per origin, which makes every message idempotent
//! and reordering-proof — exactly-once effect over an at-least-once
//! transport, with no acks at all.
//!
//! - **Contribute.** Leaves send their entry to their parent at start.
//!   Interior nodes forward their collected entries up when their
//!   subtree is complete, or at a depth-staggered gather deadline if
//!   contributions are missing.
//! - **Escalate.** Until a node holds the final result it re-sends its
//!   entries on a fixed-period tick, each attempt targeting an ancestor
//!   one level higher than the last — attempt `k` goes
//!   `min(1 + k, depth)` levels up, so a node whose whole ancestor
//!   chain died reaches the (immortal) root directly within `depth`
//!   ticks. Runtime fault recovery on the fabric guarantees delivery to
//!   any live target, so escalation always terminates.
//! - **Finalize.** The root sums entries in origin-id order (every run
//!   folds in the same order, so the float sum is bit-stable) once all
//!   nodes contributed or at a fixed deadline, then pushes the result
//!   to its children and everyone who contributed directly to it. Done
//!   nodes answer any late contribution with the result, so stragglers
//!   whose ancestors died still learn the outcome.
//!
//! ## Degraded-latency bound
//!
//! With gather period `G`, escalation period `A`, and tree height `H`,
//! the root finalizes no later than `T_fin = G·(H+2) + A·(H+6)`, and a
//! live node's next escalation after `T_fin` reaches a done node (the
//! root at worst) and is answered immediately; so every live node holds
//! the result by `T_fin + A + 2·L`, where `L` bounds one recovered
//! message delivery (worst-case reroute: heartbeat timeout + the full
//! backoff ladder + one cross-machine transit — single-digit
//! microseconds at default settings). The chaos campaign asserts this
//! bound on every run.

use crate::allreduce::AllReduceOutcome;
use anton_des::{SimDuration, SimTime};
use anton_net::{
    ClientAddr, ClientKind, Ctx, Fabric, FaultPlan, NetStats, NodeProgram, Packet, ParSimulation,
    Payload, ProgEvent, RecoveryConfig, RecoveryStats, Simulation, MAX_PAYLOAD_BYTES,
};
use anton_topo::{NodeId, TorusDims};
use std::collections::{BTreeMap, BTreeSet};

/// Timer tag: escalation tick.
const TAG_TICK: u64 = 1;
/// Timer tag: the root's finalize deadline.
const TAG_FIN: u64 = 2;
/// Packet tag: a contribution carrying `(origin, value)` entries.
const MSG_CONTRIB: u64 = 0xC0;
/// Packet tag: the final result.
const MSG_RESULT: u64 = 0xFE;

/// Tuning constants of the recovering collective.
#[derive(Debug, Clone, Copy)]
pub struct RecoveringParams {
    /// Gather period `G`: how long an interior node one level above the
    /// leaves waits for missing children before forwarding what it has
    /// (deadlines stagger by depth so lower levels fire first).
    pub gather_ns: f64,
    /// Escalation period `A`: the re-send tick of every unfinished node.
    pub escalate_ns: f64,
}

impl Default for RecoveringParams {
    fn default() -> Self {
        RecoveringParams {
            gather_ns: 1_000.0,
            escalate_ns: 2_000.0,
        }
    }
}

impl RecoveringParams {
    /// The root's finalize deadline for a tree of height `h`:
    /// `G·(H+2) + A·(H+6)` (see the module docs for the derivation).
    pub fn finalize_deadline(&self, h: u32) -> SimDuration {
        SimDuration::from_ns_f64(
            self.gather_ns * (h as f64 + 2.0) + self.escalate_ns * (h as f64 + 6.0),
        )
    }

    /// The documented completion bound for live nodes: finalize deadline
    /// plus one escalation period plus `2·L` of recovered transit, with
    /// `L` conservatively taken as 5 µs.
    pub fn completion_bound(&self, h: u32) -> SimDuration {
        self.finalize_deadline(h)
            + SimDuration::from_ns_f64(self.escalate_ns)
            + SimDuration::from_ns_f64(10_000.0)
    }
}

/// Result of a recovering all-reduce.
#[derive(Debug, Clone)]
pub struct RecoveringOutcome {
    /// Time until the last *live* node held the result.
    pub latency: SimDuration,
    /// Per-node final values; `None` for nodes that died (or, if the
    /// bound is violated, never learned the result).
    pub results: Vec<Option<Vec<f64>>>,
    /// Origins included in the root's final sum, ascending.
    pub contributors: Vec<u32>,
    /// The node deaths the run was configured with.
    pub deaths: Vec<(NodeId, SimTime)>,
    /// Machine-wide fabric statistics.
    pub stats: NetStats,
    /// Machine-wide recovery counters.
    pub recovery: RecoveryStats,
    /// Failure verdicts reached during the run.
    pub verdicts: usize,
    /// Whether the simulation drained (it always should; a `false` here
    /// means the protocol itself wedged).
    pub completed: bool,
}

impl RecoveringOutcome {
    /// A 64-bit fingerprint over every simulated field, for bit-identity
    /// assertions across thread counts and replays. (f64 `Debug` output
    /// round-trips exactly, so equal fingerprints mean bit-equal runs.)
    pub fn fingerprint(&self) -> u64 {
        let text = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}",
            self.latency,
            self.results,
            self.contributors,
            self.deaths,
            self.stats,
            self.recovery,
            self.verdicts,
            self.completed
        );
        // FNV-1a; stable and dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Project onto the plain [`AllReduceOutcome`] shape (live results
    /// only), for harnesses comparing against the fault-free collective.
    pub fn as_all_reduce(&self) -> AllReduceOutcome {
        AllReduceOutcome {
            latency: self.latency,
            results: self.results.iter().flatten().cloned().collect(),
            packets_sent: self.stats.packets_sent,
            link_traversals: self.stats.link_traversals,
        }
    }
}

fn depth_of(i: u32) -> u32 {
    (i + 1).ilog2()
}

fn tree_height(n: u32) -> u32 {
    n.ilog2()
}

fn ancestor(i: u32, levels: u32) -> u32 {
    let mut a = i;
    for _ in 0..levels {
        if a == 0 {
            break;
        }
        a = (a - 1) / 2;
    }
    a
}

struct RecoveringNode {
    n: u32,
    height: u32,
    vlen: usize,
    params: RecoveringParams,
    /// When this node dies, if ever: its software halts at that instant.
    death: Option<SimTime>,
    /// Collected `(origin, value)` entries, own entry included.
    entries: BTreeMap<u32, Vec<f64>>,
    /// Nodes that contributed *directly* to us — the result fan-out set.
    senders: BTreeSet<u32>,
    /// Escalation attempts made so far.
    attempt: u32,
    /// Fast path: whether the complete subtree was already pushed up.
    subtree_sent: bool,
    result: Option<Vec<f64>>,
    done_at: Option<SimTime>,
    /// Root only: the origins summed into the final result.
    contributors: Vec<u32>,
}

impl RecoveringNode {
    fn dead(&self, now: SimTime) -> bool {
        self.death.is_some_and(|d| now >= d)
    }

    fn me(&self, node: NodeId) -> ClientAddr {
        ClientAddr::new(node, ClientKind::Slice(0))
    }

    /// Flatten `entries` into `[origin, v0..v_{V-1}]*` chunks under the
    /// 256-byte packet cap and FIFO them to `target`.
    fn send_contrib(&self, node: NodeId, target: u32, ctx: &mut Ctx<'_, '_>) {
        if target == node.0 {
            return;
        }
        let per = ((MAX_PAYLOAD_BYTES as usize / 8) / (self.vlen + 1)).max(1);
        let mut flat: Vec<f64> = Vec::with_capacity(per * (self.vlen + 1));
        let flush = |flat: &mut Vec<f64>, ctx: &mut Ctx<'_, '_>| {
            if flat.is_empty() {
                return;
            }
            let pkt = Packet::fifo(
                self.me(node),
                ClientAddr::new(NodeId(target), ClientKind::Slice(0)),
                Payload::F64s(std::mem::take(flat)),
            )
            .with_tag(MSG_CONTRIB);
            ctx.send(pkt);
        };
        for (&origin, v) in &self.entries {
            flat.push(origin as f64);
            flat.extend_from_slice(v);
            if flat.len() / (self.vlen + 1) >= per {
                flush(&mut flat, ctx);
            }
        }
        flush(&mut flat, ctx);
    }

    fn send_result(&self, node: NodeId, target: u32, ctx: &mut Ctx<'_, '_>) {
        if target == node.0 {
            return;
        }
        let vs = self.result.as_ref().expect("result known").clone();
        let pkt = Packet::fifo(
            self.me(node),
            ClientAddr::new(NodeId(target), ClientKind::Slice(0)),
            Payload::F64s(vs),
        )
        .with_tag(MSG_RESULT);
        ctx.send(pkt);
    }

    /// Whether every node in `i`'s heap subtree has contributed.
    fn subtree_complete(&self, i: u32) -> bool {
        let mut stack = vec![i];
        while let Some(j) = stack.pop() {
            if !self.entries.contains_key(&j) {
                return false;
            }
            for c in [2 * j + 1, 2 * j + 2] {
                if c < self.n {
                    stack.push(c);
                }
            }
        }
        true
    }

    fn become_done(&mut self, node: NodeId, values: Vec<f64>, ctx: &mut Ctx<'_, '_>) {
        if self.done_at.is_some() {
            return;
        }
        self.result = Some(values);
        self.done_at = Some(ctx.now());
        // Fan the result out: direct contributors plus tree children
        // (the senders set covers escalated orphans; children cover the
        // quiet fault-free path).
        let mut targets = self.senders.clone();
        for c in [2 * node.0 + 1, 2 * node.0 + 2] {
            if c < self.n {
                targets.insert(c);
            }
        }
        for t in targets {
            self.send_result(node, t, ctx);
        }
    }

    fn finalize_root(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        if self.done_at.is_some() {
            return;
        }
        let mut sum = vec![0.0f64; self.vlen];
        for v in self.entries.values() {
            for (s, x) in sum.iter_mut().zip(v) {
                *s += x;
            }
        }
        self.contributors = self.entries.keys().copied().collect();
        self.become_done(node, sum, ctx);
    }

    fn arm_tick(&self, node: NodeId, delay_ns: f64, ctx: &mut Ctx<'_, '_>) {
        ctx.set_timer(
            node,
            ClientKind::Slice(0),
            SimDuration::from_ns_f64(delay_ns),
            TAG_TICK,
        );
    }

    fn on_tick(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        if self.done_at.is_some() || node.0 == 0 {
            return;
        }
        let depth = depth_of(node.0);
        let levels = (1 + self.attempt).min(depth);
        let target = ancestor(node.0, levels);
        self.send_contrib(node, target, ctx);
        self.attempt += 1;
        self.arm_tick(node, self.params.escalate_ns, ctx);
    }

    fn fold_contrib(&mut self, node: NodeId, pkt: &Packet, ctx: &mut Ctx<'_, '_>) {
        self.senders.insert(pkt.src.node.0);
        if self.done_at.is_some() {
            // A straggler that missed the fan-out: answer directly.
            self.send_result(node, pkt.src.node.0, ctx);
            return;
        }
        let Payload::F64s(flat) = &pkt.payload else {
            panic!("contribution payload must be F64s");
        };
        let stride = self.vlen + 1;
        assert_eq!(flat.len() % stride, 0, "malformed contribution chunk");
        for entry in flat.chunks(stride) {
            let origin = entry[0] as u32;
            self.entries
                .entry(origin)
                .or_insert_with(|| entry[1..].to_vec());
        }
        if node.0 == 0 {
            if self.entries.len() as u32 == self.n {
                self.finalize_root(node, ctx);
            }
        } else if !self.subtree_sent && self.subtree_complete(node.0) {
            // Fast path: a complete subtree climbs at network speed
            // instead of waiting out the gather deadline.
            self.subtree_sent = true;
            self.send_contrib(node, ancestor(node.0, 1), ctx);
        }
    }
}

impl NodeProgram for RecoveringNode {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        // A dead node's cores halt: pending timers and in-flight
        // deliveries landing after the death time are void.
        if self.dead(ctx.now()) {
            return;
        }
        match pe {
            ProgEvent::Start => {
                if node.0 == 0 {
                    if self.n == 1 {
                        self.finalize_root(node, ctx);
                        return;
                    }
                    ctx.set_timer(
                        node,
                        ClientKind::Slice(0),
                        self.params.finalize_deadline(self.height),
                        TAG_FIN,
                    );
                    return;
                }
                let depth = depth_of(node.0);
                let leaf = 2 * node.0 + 1 >= self.n;
                if leaf {
                    // Leaves contribute immediately; their first tick is
                    // already attempt 1 (one level higher).
                    self.send_contrib(node, ancestor(node.0, 1), ctx);
                    self.attempt = 1;
                    self.arm_tick(node, self.params.escalate_ns, ctx);
                } else {
                    // Interior nodes gather first; deadlines stagger by
                    // depth so lower levels flush before upper ones.
                    let wait = self.params.gather_ns * (self.height - depth) as f64;
                    self.arm_tick(node, wait.max(self.params.gather_ns), ctx);
                }
            }
            ProgEvent::Timer { tag: TAG_FIN, .. } => self.finalize_root(node, ctx),
            ProgEvent::Timer { tag: TAG_TICK, .. } => self.on_tick(node, ctx),
            ProgEvent::Timer { .. } => unreachable!("unknown timer tag"),
            ProgEvent::FifoMessage { pkt, .. } => match pkt.tag {
                MSG_CONTRIB => self.fold_contrib(node, &pkt, ctx),
                MSG_RESULT => {
                    let Payload::F64s(vs) = pkt.payload else {
                        panic!("result payload must be F64s");
                    };
                    self.become_done(node, vs, ctx);
                }
                other => unreachable!("unknown message tag {other:#x}"),
            },
            ProgEvent::CounterReached { .. } => {
                unreachable!("the recovering collective uses no counters")
            }
        }
    }
}

fn death_schedule(dims: TorusDims, deaths: &[(NodeId, SimTime)]) -> Vec<Option<SimTime>> {
    let mut sched = vec![None; dims.node_count() as usize];
    for &(node, at) in deaths {
        assert!(node.0 != 0, "node 0 is the immortal root");
        assert!(node.0 < dims.node_count(), "death of a nonexistent node");
        assert!(at > SimTime::ZERO, "deaths must be mid-collective");
        assert!(sched[node.index()].is_none(), "duplicate death for a node");
        sched[node.index()] = Some(at);
    }
    sched
}

fn make_recovering_programs(
    dims: TorusDims,
    inputs: &[Vec<f64>],
    deaths: &[(NodeId, SimTime)],
    params: RecoveringParams,
) -> impl FnMut(NodeId) -> RecoveringNode {
    let n = dims.node_count();
    assert_eq!(inputs.len(), n as usize, "one input vector per node");
    let vlen = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == vlen));
    assert!(
        vlen < MAX_PAYLOAD_BYTES as usize / 8,
        "value vector too large for one packet entry"
    );
    let sched = death_schedule(dims, deaths);
    let inputs = inputs.to_vec();
    move |node| {
        let mut entries = BTreeMap::new();
        entries.insert(node.0, inputs[node.index()].clone());
        RecoveringNode {
            n,
            height: tree_height(n),
            vlen,
            params,
            death: sched[node.index()],
            entries,
            senders: BTreeSet::new(),
            attempt: 0,
            subtree_sent: false,
            result: None,
            done_at: None,
            contributors: Vec::new(),
        }
    }
}

fn build_recovering_fabric(
    dims: TorusDims,
    fault: &FaultPlan,
    deaths: &[(NodeId, SimTime)],
    recovery: RecoveryConfig,
    timing: &anton_net::Timing,
) -> Fabric {
    let mut plan = fault.clone();
    for &(node, at) in deaths {
        plan = plan.fail_node_at(node.coord(dims), at);
    }
    Fabric::with_recovery(dims, timing.clone(), plan, recovery)
}

struct NodeView<'a> {
    prog: &'a RecoveringNode,
}

fn collect_recovering_outcome<'a>(
    programs: impl Iterator<Item = NodeView<'a>>,
    deaths: &[(NodeId, SimTime)],
    stats: NetStats,
    recovery: RecoveryStats,
    verdicts: usize,
    completed: bool,
) -> RecoveringOutcome {
    let mut latency = SimDuration::ZERO;
    let mut results = Vec::new();
    let mut contributors = Vec::new();
    for (i, view) in programs.enumerate() {
        let p = view.prog;
        if i == 0 {
            contributors = p.contributors.clone();
        }
        match (&p.done_at, &p.result, p.death) {
            (Some(t), Some(v), death) => {
                // A node that died *after* learning the result still
                // counts as completed; one that died first does not.
                if death.is_none_or(|d| *t < d) {
                    latency = latency.max(*t - SimTime::ZERO);
                    results.push(Some(v.clone()));
                } else {
                    results.push(None);
                }
            }
            _ => results.push(None),
        }
    }
    RecoveringOutcome {
        latency,
        results,
        contributors,
        deaths: deaths.to_vec(),
        stats,
        recovery,
        verdicts,
        completed,
    }
}

/// Run a self-healing all-reduce: the global sum over `inputs`, robust
/// to the node deaths in `deaths` (node 0 — the tree root — must not
/// die) and to whatever transient faults `fault` injects, recovered by
/// `recovery`. Every live node ends with the identical sum over
/// [`RecoveringOutcome::contributors`], which includes every node that
/// stayed alive.
///
/// ```
/// use anton_collectives::{random_inputs, run_all_reduce_recovering, RecoveringParams};
/// use anton_des::SimTime;
/// use anton_net::{FaultPlan, RecoveryConfig};
/// use anton_topo::{NodeId, TorusDims};
/// let dims = TorusDims::new(2, 2, 2);
/// let inputs = random_inputs(dims, 2, 7);
/// let out = run_all_reduce_recovering(
///     dims,
///     &inputs,
///     FaultPlan::none(),
///     &[(NodeId(5), SimTime::from_ns(300))],
///     RecoveryConfig::recovering(7),
///     RecoveringParams::default(),
/// );
/// assert!(out.completed);
/// // Dead node 5 aside, everyone holds the sum over the contributors.
/// assert_eq!(out.results.iter().filter(|r| r.is_some()).count(), 7);
/// ```
pub fn run_all_reduce_recovering(
    dims: TorusDims,
    inputs: &[Vec<f64>],
    fault: FaultPlan,
    deaths: &[(NodeId, SimTime)],
    recovery: RecoveryConfig,
    params: RecoveringParams,
) -> RecoveringOutcome {
    run_all_reduce_recovering_timed(
        dims,
        inputs,
        fault,
        deaths,
        recovery,
        params,
        anton_net::Timing::default(),
    )
}

/// [`run_all_reduce_recovering`] under a caller-supplied [`Timing`]
/// model — the spec→builder plumbing a scenario-driven run uses to
/// select a named timing profile instead of the Anton-1 default.
///
/// [`Timing`]: anton_net::Timing
#[allow(clippy::too_many_arguments)]
pub fn run_all_reduce_recovering_timed(
    dims: TorusDims,
    inputs: &[Vec<f64>],
    fault: FaultPlan,
    deaths: &[(NodeId, SimTime)],
    recovery: RecoveryConfig,
    params: RecoveringParams,
    timing: anton_net::Timing,
) -> RecoveringOutcome {
    let fabric = build_recovering_fabric(dims, &fault, deaths, recovery, &timing);
    let mut sim = Simulation::new(
        fabric,
        make_recovering_programs(dims, inputs, deaths, params),
    );
    let completed = sim
        .run_guarded(SimTime(u64::MAX / 2), 200_000_000)
        .is_completed();
    let verdicts = sim.world.fabric.verdicts().len();
    collect_recovering_outcome(
        sim.world.programs.iter().map(|prog| NodeView { prog }),
        deaths,
        sim.world.fabric.stats.clone(),
        *sim.world.fabric.recovery_stats(),
        verdicts,
        completed,
    )
}

/// [`run_all_reduce_recovering`] on the sharded parallel engine —
/// bit-identical outcome (asserted via
/// [`RecoveringOutcome::fingerprint`] in tests and the chaos campaign)
/// at any thread count.
pub fn run_all_reduce_recovering_par(
    dims: TorusDims,
    inputs: &[Vec<f64>],
    fault: FaultPlan,
    deaths: &[(NodeId, SimTime)],
    recovery: RecoveryConfig,
    params: RecoveringParams,
    threads: usize,
) -> RecoveringOutcome {
    run_all_reduce_recovering_par_timed(
        dims,
        inputs,
        fault,
        deaths,
        recovery,
        params,
        threads,
        anton_net::Timing::default(),
    )
}

/// [`run_all_reduce_recovering_par`] under a caller-supplied
/// [`Timing`](anton_net::Timing) model.
#[allow(clippy::too_many_arguments)]
pub fn run_all_reduce_recovering_par_timed(
    dims: TorusDims,
    inputs: &[Vec<f64>],
    fault: FaultPlan,
    deaths: &[(NodeId, SimTime)],
    recovery: RecoveryConfig,
    params: RecoveringParams,
    threads: usize,
    timing: anton_net::Timing,
) -> RecoveringOutcome {
    let timing = &timing;
    let mut sim = ParSimulation::new(
        threads,
        move || build_recovering_fabric(dims, &fault, deaths, recovery, timing),
        make_recovering_programs(dims, inputs, deaths, params),
    );
    let completed = sim
        .run_guarded(SimTime(u64::MAX / 2), 200_000_000)
        .is_completed();
    let verdicts = sim.merged_verdicts().len();
    collect_recovering_outcome(
        (0..dims.node_count()).map(|i| NodeView {
            prog: sim.program(NodeId(i)),
        }),
        deaths,
        sim.merged_stats(),
        sim.merged_recovery_stats(),
        verdicts,
        completed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allreduce::random_inputs;

    fn sum_over(inputs: &[Vec<f64>], origins: &[u32]) -> Vec<f64> {
        let mut out = vec![0.0; inputs[0].len()];
        for &o in origins {
            for (s, x) in out.iter_mut().zip(&inputs[o as usize]) {
                *s += x;
            }
        }
        out
    }

    #[test]
    fn fault_free_run_matches_plain_sum_everywhere() {
        let dims = TorusDims::new(4, 4, 4);
        let inputs = random_inputs(dims, 4, 11);
        let out = run_all_reduce_recovering(
            dims,
            &inputs,
            FaultPlan::none(),
            &[],
            RecoveryConfig::recovering(11),
            RecoveringParams::default(),
        );
        assert!(out.completed);
        assert_eq!(out.contributors, (0..64).collect::<Vec<_>>());
        let want = sum_over(&inputs, &out.contributors);
        for r in &out.results {
            assert_eq!(r.as_ref().expect("all nodes complete"), &want);
        }
        // Fault-free, the fast path climbs at network speed: well under
        // the finalize deadline.
        assert!(out.latency < RecoveringParams::default().finalize_deadline(6));
    }

    #[test]
    fn survives_three_mid_collective_deaths() {
        let dims = TorusDims::new(4, 4, 4);
        let inputs = random_inputs(dims, 4, 13);
        let deaths = [
            (NodeId(1), SimTime::from_ns(200)), // interior: orphans a subtree
            (NodeId(9), SimTime::from_ns(350)),
            (NodeId(40), SimTime::from_ns(100)), // leaf-side early death
        ];
        let out = run_all_reduce_recovering(
            dims,
            &inputs,
            FaultPlan::none(),
            &deaths,
            RecoveryConfig::recovering(13),
            RecoveringParams::default(),
        );
        assert!(out.completed);
        // Every live node finished, within the documented bound.
        for (i, r) in out.results.iter().enumerate() {
            if !deaths.iter().any(|(n, _)| n.index() == i) {
                assert!(r.is_some(), "live node {i} never completed");
            }
        }
        assert!(out.latency <= RecoveringParams::default().completion_bound(6));
        // The sum is exactly the contributor set's, and every live node
        // is in it.
        let want = sum_over(&inputs, &out.contributors);
        for r in out.results.iter().flatten() {
            assert_eq!(r, &want);
        }
        for i in 0..64u32 {
            if !deaths.iter().any(|(n, _)| n.0 == i) {
                assert!(out.contributors.contains(&i), "live node {i} excluded");
            }
        }
        assert!(out.verdicts > 0, "deaths must produce failure verdicts");
    }

    #[test]
    fn deaths_plus_transient_drops_still_complete() {
        let dims = TorusDims::new(2, 2, 2);
        let inputs = random_inputs(dims, 2, 17);
        let deaths = [(NodeId(3), SimTime::from_ns(250))];
        let out = run_all_reduce_recovering(
            dims,
            &inputs,
            FaultPlan::seeded(17).with_drop_rate(0.02),
            &deaths,
            RecoveryConfig::recovering(17),
            RecoveringParams::default(),
        );
        assert!(out.completed);
        let want = sum_over(&inputs, &out.contributors);
        for (i, r) in out.results.iter().enumerate() {
            if i != 3 {
                assert_eq!(r.as_ref().expect("live node completes"), &want);
            }
        }
        for i in [0u32, 1, 2, 4, 5, 6, 7] {
            assert!(out.contributors.contains(&i));
        }
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let dims = TorusDims::new(4, 4, 4);
        let inputs = random_inputs(dims, 4, 19);
        let deaths = [
            (NodeId(5), SimTime::from_ns(300)),
            (NodeId(22), SimTime::from_ns(150)),
        ];
        let fault = FaultPlan::seeded(19).with_drop_rate(0.005);
        let rec = RecoveryConfig::recovering(19);
        let seq = run_all_reduce_recovering(
            dims,
            &inputs,
            fault.clone(),
            &deaths,
            rec,
            RecoveringParams::default(),
        );
        for threads in [1, 4] {
            let par = run_all_reduce_recovering_par(
                dims,
                &inputs,
                fault.clone(),
                &deaths,
                rec,
                RecoveringParams::default(),
                threads,
            );
            assert_eq!(seq.fingerprint(), par.fingerprint(), "threads={threads}");
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let dims = TorusDims::new(2, 2, 2);
        let inputs = random_inputs(dims, 3, 23);
        let deaths = [(NodeId(6), SimTime::from_ns(400))];
        let run = || {
            run_all_reduce_recovering(
                dims,
                &inputs,
                FaultPlan::seeded(23).with_drop_rate(0.01),
                &deaths,
                RecoveryConfig::recovering(23),
                RecoveringParams::default(),
            )
        };
        assert_eq!(run().fingerprint(), run().fingerprint());
    }

    #[test]
    fn single_node_machine_degenerates_cleanly() {
        let dims = TorusDims::new(1, 1, 1);
        let out = run_all_reduce_recovering(
            dims,
            &[vec![2.5]],
            FaultPlan::none(),
            &[],
            RecoveryConfig::recovering(1),
            RecoveringParams::default(),
        );
        assert!(out.completed);
        assert_eq!(out.results[0].as_deref(), Some(&[2.5][..]));
        assert_eq!(out.contributors, vec![0]);
    }
}
