//! All-reduce node programs running on the simulated fabric.

use anton_des::{Rng, SimDuration, SimTime};
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, FaultPlan, NodeProgram, Packet, ParSimulation,
    PatternId, Payload, ProgEvent, Simulation,
};
use anton_topo::{Coord, Dim, MulticastPattern, NodeId, TorusDims};

/// Which all-reduce algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Anton's: 3 rounds of per-dimension multicast counted remote writes
    /// (also used by QCDOC, per the paper).
    DimensionOrdered,
    /// Radix-2 butterfly, 3·log₂N rounds of pairwise exchanges.
    Butterfly,
    /// A unidirectional ring over the node-id order: 2(P−1) rounds of
    /// neighbor sends (reduce-scatter would halve the data volume, but
    /// for the paper's tiny 32-byte payloads latency dominates — this is
    /// the classic bandwidth-optimal algorithm shown latency-bound).
    Ring,
}

/// Calibrated software costs of the reduction.
#[derive(Debug, Clone, Copy)]
pub struct CollectiveParams {
    /// Tensilica-core time to add one received f64 into the partial sum.
    /// Calibrated to Table 2's 0-byte → 32-byte latency deltas
    /// (~0.45 µs over three rounds on the 512-node machine).
    pub reduce_ns_per_value: f64,
    /// Fixed software overhead per round (poll-loop exit, branch, setup).
    pub round_overhead_ns: f64,
}

impl Default for CollectiveParams {
    fn default() -> Self {
        CollectiveParams {
            reduce_ns_per_value: 4.5,
            round_overhead_ns: 10.0,
        }
    }
}

/// Result of a simulated all-reduce.
#[derive(Debug, Clone)]
pub struct AllReduceOutcome {
    /// Time from start until every node's four slices hold the result.
    pub latency: SimDuration,
    /// Per-node final values (empty vectors for 0-byte barriers).
    pub results: Vec<Vec<f64>>,
    /// Total packets sent machine-wide.
    pub packets_sent: u64,
    /// Total link traversals machine-wide.
    pub link_traversals: u64,
}

const VALUE_STRIDE: u64 = 0x100;
const ROUND_BASE: u64 = 0x10_000;
/// Counter used for the final intra-node share.
const SHARE_COUNTER: CounterId = CounterId(40);

fn round_dim(round: usize) -> Dim {
    Dim::ALL[round]
}

/// Pattern id for the line broadcast of the source at coordinate `c`
/// along `dim`. Sources on different lines never share a node, so the
/// (dim, axis-coordinate) pair is collision-free machine-wide.
fn pattern_id(dim: Dim, coord: u32) -> PatternId {
    assert!(coord < 32, "axis too long for the pattern-id scheme");
    PatternId((dim.index() as u16) * 32 + coord as u16)
}

struct AllReduceNode {
    algorithm: Algorithm,
    params: CollectiveParams,
    /// Current partial sum (starts as this node's input).
    value: Vec<f64>,
    /// Wire bytes per packet (8·values, or 0 for a barrier).
    payload_bytes: u32,
    round: usize,
    /// Butterfly: bit position within the current dimension.
    bit: u32,
    /// Completion record: when the last local share landed, and the
    /// final value. Per-program (not shared) so the node program is
    /// `Send` and runs unchanged on the sharded parallel simulation.
    done_at: Option<(SimTime, Vec<f64>)>,
}

impl AllReduceNode {
    fn dims(ctx: &Ctx<'_, '_>) -> TorusDims {
        ctx.dims()
    }

    fn my_coord(node: NodeId, ctx: &Ctx<'_, '_>) -> Coord {
        node.coord(ctx.dims())
    }

    /// Begin a dimension-ordered round: multicast the current partial sum
    /// along `dim` into every peer's slice-`round` memory (self included),
    /// then watch the counter for the full line's packet count.
    fn start_dim_ordered_round(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dim = round_dim(self.round);
        let me = Self::my_coord(node, ctx);
        let slice = ClientKind::Slice(self.round as u8);
        let counter = CounterId(self.round as u16);
        let n = Self::dims(ctx).len(dim);
        ctx.watch_counter(ClientAddr::new(node, slice), counter, n as u64);
        let addr = ROUND_BASE * (self.round as u64 + 1) + me.get(dim) as u64 * VALUE_STRIDE;
        // The sender for round k is the slice that computed round k−1
        // (slice k−1), or slice 0 at the start; either way a slice on
        // this node — use slice `round` for bookkeeping simplicity (the
        // injection cost model is identical across slices).
        let pkt = Packet::write(
            ClientAddr::new(node, slice),
            ClientAddr::new(node, slice), // superseded by the multicast dest
            addr,
            Payload::F64s(self.value.clone()),
        )
        .with_payload_bytes(self.payload_bytes)
        .with_counter(counter)
        .into_multicast(pattern_id(dim, me.get(dim)), slice);
        ctx.send(pkt);
    }

    /// A dimension-ordered round completed: sum the line's contributions
    /// in address (= axis coordinate) order so every node computes the
    /// identical floating-point sum.
    fn finish_dim_ordered_round(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dim = round_dim(self.round);
        let n = Self::dims(ctx).len(dim);
        let slice = ClientKind::Slice(self.round as u8);
        let me = ClientAddr::new(node, slice);
        let base = ROUND_BASE * (self.round as u64 + 1);
        let mut sum = vec![0.0f64; self.value.len()];
        for c in 0..n {
            let addr = base + c as u64 * VALUE_STRIDE;
            match ctx.mem_take(me, addr) {
                Some(Payload::F64s(vs)) => {
                    assert_eq!(vs.len(), sum.len());
                    for (s, v) in sum.iter_mut().zip(&vs) {
                        *s += v;
                    }
                }
                Some(other) => panic!("unexpected payload {other:?}"),
                None => assert!(
                    self.value.is_empty(),
                    "missing contribution {c} on node {}",
                    node.0
                ),
            }
        }
        self.value = sum;
        ctx.reset_counter(me, CounterId(self.round as u16));
        // Model the software reduction time, then move on.
        let cost = SimDuration::from_ns_f64(
            self.params.round_overhead_ns
                + self.params.reduce_ns_per_value * (n as usize * self.value.len()) as f64,
        );
        self.round += 1;
        ctx.set_timer(node, slice, cost, self.round as u64);
    }

    /// Butterfly round: write to the XOR partner, wait for its packet.
    fn start_butterfly_round(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dims = Self::dims(ctx);
        let dim = round_dim(self.round);
        let me = Self::my_coord(node, ctx);
        let partner = me.with(dim, me.get(dim) ^ (1 << self.bit));
        let slice = ClientKind::Slice((self.round + self.bit as usize) as u8 % 4);
        let counter = CounterId(8 + ((self.round * 8 + self.bit as usize) % 16) as u16);
        ctx.watch_counter(ClientAddr::new(node, slice), counter, 1);
        let pkt = Packet::write(
            ClientAddr::new(node, ClientKind::Slice(0)),
            ClientAddr::new(partner.node_id(dims), slice),
            ROUND_BASE * 8 + (self.round * 8 + self.bit as usize) as u64 * VALUE_STRIDE,
            Payload::F64s(self.value.clone()),
        )
        .with_payload_bytes(self.payload_bytes)
        .with_counter(counter);
        ctx.send(pkt);
    }

    fn finish_butterfly_round(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dims = Self::dims(ctx);
        let dim = round_dim(self.round);
        let me = Self::my_coord(node, ctx);
        let slice = ClientKind::Slice((self.round + self.bit as usize) as u8 % 4);
        let addr = ROUND_BASE * 8 + (self.round * 8 + self.bit as usize) as u64 * VALUE_STRIDE;
        let received = match ctx.mem_take(ClientAddr::new(node, slice), addr) {
            Some(Payload::F64s(vs)) => vs,
            Some(other) => panic!("unexpected payload {other:?}"),
            None => {
                assert!(self.value.is_empty());
                Vec::new()
            }
        };
        // Deterministic order: lower coordinate first.
        let partner_low = (me.get(dim) & !(1 << self.bit)) == me.get(dim);
        let mut sum = Vec::with_capacity(self.value.len());
        for (mine, theirs) in self.value.iter().zip(&received) {
            let (a, b) = if partner_low {
                (*mine, *theirs)
            } else {
                (*theirs, *mine)
            };
            sum.push(a + b);
        }
        self.value = sum;
        let cost = SimDuration::from_ns_f64(
            self.params.round_overhead_ns
                + self.params.reduce_ns_per_value * (2 * self.value.len()) as f64,
        );
        // Advance bit/round.
        self.bit += 1;
        if (1u32 << self.bit) >= dims.len(dim) {
            self.bit = 0;
            self.round += 1;
        }
        ctx.set_timer(node, slice, cost, self.round as u64);
    }

    fn advance(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        if self.algorithm == Algorithm::Ring {
            self.start_ring(node, ctx);
            return;
        }
        // Skip length-1 dimensions (nothing to reduce there).
        let dims = ctx.dims();
        while self.round < 3 && dims.len(round_dim(self.round)) <= 1 {
            self.round += 1;
        }
        if self.round >= 3 {
            self.share_locally(node, ctx);
            return;
        }
        match self.algorithm {
            Algorithm::DimensionOrdered => self.start_dim_ordered_round(node, ctx),
            Algorithm::Butterfly => self.start_butterfly_round(node, ctx),
            Algorithm::Ring => unreachable!("handled above"),
        }
    }

    /// Ring start: node 0 launches the reduce token. Nodes 1..P−1 arm
    /// for the reduce token; nodes 0..P−2 arm for the broadcast token.
    fn start_ring(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let total = ctx.dims().node_count();
        let slice = ClientKind::Slice(0);
        let me = ClientAddr::new(node, slice);
        if node.0 > 0 {
            ctx.watch_counter(me, CounterId(20), 1);
        }
        if node.0 + 1 < total {
            ctx.watch_counter(me, CounterId(21), 1);
        }
        if node.0 == 0 {
            self.ring_send(node, NodeId(1 % total), CounterId(20), ctx);
        }
        if total == 1 {
            self.share_locally(node, ctx);
        }
    }

    fn ring_send(&self, node: NodeId, to: NodeId, counter: CounterId, ctx: &mut Ctx<'_, '_>) {
        let slice = ClientKind::Slice(0);
        let pkt = Packet::write(
            ClientAddr::new(node, slice),
            ClientAddr::new(to, slice),
            ROUND_BASE * 6 + (counter.0 as u64 - 20) * VALUE_STRIDE,
            Payload::F64s(self.value.clone()),
        )
        .with_payload_bytes(self.payload_bytes)
        .with_counter(counter);
        ctx.send(pkt);
    }

    /// A ring token arrived: counter 20 = reduce phase, 21 = broadcast.
    fn finish_ring(&mut self, node: NodeId, counter: CounterId, ctx: &mut Ctx<'_, '_>) {
        let total = ctx.dims().node_count();
        let slice = ClientKind::Slice(0);
        let addr = ROUND_BASE * 6 + (counter.0 as u64 - 20) * VALUE_STRIDE;
        let vs = match ctx.mem_take(ClientAddr::new(node, slice), addr) {
            Some(Payload::F64s(vs)) => vs,
            other => panic!("missing ring token: {other:?}"),
        };
        // Per-hop software time is a few ns of fold arithmetic —
        // negligible against the 2(P−1) serialized network latencies
        // that make this algorithm lose; not modeled.
        if counter == CounterId(20) {
            // Reduce token: fold and pass on, or finish the sum.
            for (v, x) in self.value.iter_mut().zip(&vs) {
                *v += x;
            }
            if node.0 + 1 < total {
                self.ring_send(node, NodeId(node.0 + 1), CounterId(20), ctx);
            } else {
                // The global sum lives here; broadcast it back around.
                self.ring_send(node, NodeId(0), CounterId(21), ctx);
                self.share_locally(node, ctx);
            }
        } else {
            // Broadcast token: adopt and forward until the ring is covered.
            self.value = vs;
            if node.0 + 2 < total {
                self.ring_send(node, NodeId(node.0 + 1), CounterId(21), ctx);
            }
            self.share_locally(node, ctx);
        }
    }

    /// "Slice 2 … shares [the global sum] locally with the other three
    /// slices": three local counted writes; the operation completes when
    /// the last slice's counter fires.
    fn share_locally(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        for s in [0u8, 1, 3] {
            let dst = ClientAddr::new(node, ClientKind::Slice(s));
            ctx.watch_counter(dst, SHARE_COUNTER, 1);
            let pkt = Packet::write(
                ClientAddr::new(node, ClientKind::Slice(2)),
                dst,
                0xF000,
                Payload::F64s(self.value.clone()),
            )
            .with_payload_bytes(self.payload_bytes)
            .with_counter(SHARE_COUNTER);
            ctx.send(pkt);
        }
    }
}

impl NodeProgram for AllReduceNode {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => self.advance(node, ctx),
            ProgEvent::CounterReached { counter, .. } => {
                if counter == SHARE_COUNTER {
                    // One of the three share deliveries. All three slices
                    // must have it; record completion at the last one.
                    match &mut self.done_at {
                        e @ None => *e = Some((ctx.now(), self.value.clone())),
                        Some((t, _)) => *t = (*t).max(ctx.now()),
                    }
                } else {
                    match self.algorithm {
                        Algorithm::DimensionOrdered => self.finish_dim_ordered_round(node, ctx),
                        Algorithm::Butterfly => self.finish_butterfly_round(node, ctx),
                        Algorithm::Ring => self.finish_ring(node, counter, ctx),
                    }
                }
            }
            ProgEvent::Timer { .. } => self.advance(node, ctx),
            ProgEvent::FifoMessage { .. } => unreachable!("all-reduce uses no FIFO traffic"),
        }
    }
}

/// Run one all-reduce over `inputs` (one vector per node, all the same
/// length) and return latency, per-node results, and traffic stats.
///
/// ```
/// use anton_collectives::{run_all_reduce, Algorithm};
/// use anton_topo::TorusDims;
/// let dims = TorusDims::new(2, 2, 2);
/// let inputs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
/// let out = run_all_reduce(dims, Algorithm::DimensionOrdered,
///                          Default::default(), &inputs);
/// // Every node ends with the same global sum, 0+1+…+7 = 28.
/// assert!(out.results.iter().all(|r| r[0] == 28.0));
/// assert!(out.latency.as_us_f64() < 2.0);
/// ```
pub fn run_all_reduce(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
) -> AllReduceOutcome {
    run_all_reduce_faulty(dims, algorithm, params, inputs, FaultPlan::none())
        .expect("fault-free all-reduce completes")
}

/// [`run_all_reduce`] under a fault-injection plan. Returns `None` if the
/// collective stalled (a packet was lost beyond the retransmit budget —
/// the stall diagnosis lives on the fabric's error log and watchdog).
pub fn run_all_reduce_faulty(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    fault: FaultPlan,
) -> Option<AllReduceOutcome> {
    run_all_reduce_inner(dims, algorithm, params, inputs, fault, None)
}

/// Fault-free all-reduce with a packet-lifecycle recorder installed on
/// the fabric — every inject, link reservation, hop, delivery, and
/// counter update of the collective lands in the recorder (pass a
/// [`anton_obs::SharedFlightRecorder`] clone to keep a read handle).
pub fn run_all_reduce_recorded(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    recorder: Box<dyn anton_obs::Recorder + Send>,
) -> AllReduceOutcome {
    run_all_reduce_inner(
        dims,
        algorithm,
        params,
        inputs,
        FaultPlan::none(),
        Some(recorder),
    )
    .expect("fault-free all-reduce completes")
}

/// Fault-free all-reduce under a caller-supplied [`Timing`] model, with
/// an optional recorder — the knob the causal what-if harness turns to
/// compare a retimed prediction against an actual perturbed re-run.
///
/// [`Timing`]: anton_net::Timing
pub fn run_all_reduce_timed(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    timing: anton_net::Timing,
    recorder: Option<Box<dyn anton_obs::Recorder + Send>>,
) -> AllReduceOutcome {
    run_all_reduce_with(
        dims,
        algorithm,
        params,
        inputs,
        timing,
        FaultPlan::none(),
        recorder,
    )
    .expect("fault-free all-reduce completes")
}

fn run_all_reduce_inner(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    fault: FaultPlan,
    recorder: Option<Box<dyn anton_obs::Recorder + Send>>,
) -> Option<AllReduceOutcome> {
    run_all_reduce_with(
        dims,
        algorithm,
        params,
        inputs,
        anton_net::Timing::default(),
        fault,
        recorder,
    )
}

/// Build the fabric an all-reduce runs on: timing + fault plan, and for
/// the dimension-ordered algorithm every line-broadcast multicast
/// pattern pre-registered. Factored out so the sequential and the
/// sharded-parallel paths construct bit-identical machines.
fn build_allreduce_fabric(
    dims: TorusDims,
    timing: anton_net::Timing,
    fault: &FaultPlan,
    algorithm: Algorithm,
) -> Fabric {
    let mut fabric = Fabric::with_faults(dims, timing, fault.clone());
    if algorithm == Algorithm::DimensionOrdered {
        for &dim in &Dim::ALL {
            if dims.len(dim) <= 1 {
                continue;
            }
            // One line-broadcast pattern per source line position.
            let mut registered = std::collections::HashSet::new();
            for node in 0..dims.node_count() {
                let c = NodeId(node).coord(dims);
                let id = pattern_id(dim, c.get(dim));
                // The same (dim, coord) id is reused by every parallel
                // line; build per line. Key on the full source coord.
                if registered.insert(c) {
                    let p = MulticastPattern::line_broadcast(c, dim, dims, true);
                    // Entries are per-node; ids collide only within one
                    // line, where they are unique by construction.
                    fabric.register_pattern(id, &p);
                }
            }
        }
    }
    fabric
}

/// Validate inputs and make the per-node program constructor.
fn make_programs(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
) -> impl FnMut(NodeId) -> AllReduceNode {
    let n = dims.node_count() as usize;
    assert_eq!(inputs.len(), n, "one input vector per node");
    let values = inputs[0].len();
    assert!(inputs.iter().all(|v| v.len() == values));
    let payload_bytes = (values * 8) as u32;
    let inputs = inputs.to_vec();
    move |node| AllReduceNode {
        algorithm,
        params,
        value: inputs[node.index()].clone(),
        payload_bytes,
        round: 0,
        bit: 0,
        done_at: None,
    }
}

/// Fold per-node completion records into the outcome (None ⇒ stalled).
fn collect_outcome<'a>(
    records: impl Iterator<Item = &'a AllReduceNode>,
    packets_sent: u64,
    link_traversals: u64,
) -> Option<AllReduceOutcome> {
    let mut latest = SimTime::ZERO;
    let mut results = Vec::new();
    for prog in records {
        let (t, v) = prog.done_at.as_ref()?;
        latest = latest.max(*t);
        results.push(v.clone());
    }
    Some(AllReduceOutcome {
        latency: latest - SimTime::ZERO,
        results,
        packets_sent,
        link_traversals,
    })
}

fn run_all_reduce_with(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    timing: anton_net::Timing,
    fault: FaultPlan,
    recorder: Option<Box<dyn anton_obs::Recorder + Send>>,
) -> Option<AllReduceOutcome> {
    let mut fabric = build_allreduce_fabric(dims, timing, &fault, algorithm);
    if let Some(rec) = recorder {
        fabric.set_recorder(rec);
    }
    let mut sim = Simulation::new(fabric, make_programs(dims, algorithm, params, inputs));
    if !sim
        .run_guarded(SimTime(u64::MAX / 2), 100_000_000)
        .is_completed()
    {
        return None;
    }
    collect_outcome(
        sim.world.programs.iter(),
        sim.world.fabric.stats.packets_sent,
        sim.world.fabric.stats.link_traversals,
    )
}

/// [`run_all_reduce`] on the sharded parallel engine: the torus is cut
/// into slabs, each advanced by one of `threads` workers in conservative
/// lookahead windows. Produces bit-identical latency, results, and
/// traffic statistics at any thread count — and identical to
/// [`run_all_reduce`] itself (asserted in `tests/par_allreduce.rs`).
pub fn run_all_reduce_par(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    threads: usize,
) -> AllReduceOutcome {
    run_all_reduce_par_inner(dims, algorithm, params, inputs, threads, false).0
}

/// [`run_all_reduce_par`] under a caller-supplied [`Timing`] model —
/// the spec→builder plumbing a scenario-driven run uses to select a
/// named timing profile instead of the Anton-1 default.
///
/// [`Timing`]: anton_net::Timing
pub fn run_all_reduce_par_timed(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    threads: usize,
    timing: anton_net::Timing,
) -> AllReduceOutcome {
    run_all_reduce_par_with(dims, algorithm, params, inputs, threads, false, timing).0
}

/// [`run_all_reduce_par`] with runtime profiling enabled: also returns
/// the engine's [`ParProfile`](anton_des::ParProfile) (worker phase accounting, per-shard event
/// counts, cross-shard traffic). The simulated outcome is bit-identical
/// to the unprofiled run.
pub fn run_all_reduce_par_profiled(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    threads: usize,
) -> (AllReduceOutcome, anton_des::ParProfile) {
    let (out, prof) = run_all_reduce_par_inner(dims, algorithm, params, inputs, threads, true);
    (out, prof.expect("profiling was enabled"))
}

fn run_all_reduce_par_inner(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    threads: usize,
    profile: bool,
) -> (AllReduceOutcome, Option<anton_des::ParProfile>) {
    run_all_reduce_par_with(
        dims,
        algorithm,
        params,
        inputs,
        threads,
        profile,
        anton_net::Timing::default(),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_all_reduce_par_with(
    dims: TorusDims,
    algorithm: Algorithm,
    params: CollectiveParams,
    inputs: &[Vec<f64>],
    threads: usize,
    profile: bool,
    timing: anton_net::Timing,
) -> (AllReduceOutcome, Option<anton_des::ParProfile>) {
    let fault = FaultPlan::none();
    let mut sim = ParSimulation::new(
        threads,
        || build_allreduce_fabric(dims, timing.clone(), &fault, algorithm),
        make_programs(dims, algorithm, params, inputs),
    );
    if profile {
        sim.enable_runtime_profiling();
    }
    assert!(
        sim.run_guarded(SimTime(u64::MAX / 2), 100_000_000)
            .is_completed(),
        "fault-free all-reduce completes"
    );
    let stats = sim.merged_stats();
    let out = collect_outcome(
        (0..dims.node_count()).map(|i| sim.program(NodeId(i))),
        stats.packets_sent,
        stats.link_traversals,
    )
    .expect("completed run recorded every node");
    (out, sim.take_runtime_profile())
}

/// Deterministic pseudo-random inputs for tests and benches.
pub fn random_inputs(dims: TorusDims, values: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng::seed_from(seed);
    (0..dims.node_count())
        .map(|_| (0..values).map(|_| rng.uniform(-10.0, 10.0)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expected_sum(inputs: &[Vec<f64>]) -> Vec<f64> {
        let mut out = vec![0.0; inputs[0].len()];
        for v in inputs {
            for (o, x) in out.iter_mut().zip(v) {
                *o += x;
            }
        }
        out
    }

    #[test]
    fn dimension_ordered_computes_the_sum_on_all_nodes() {
        let dims = TorusDims::new(4, 4, 4);
        let inputs = random_inputs(dims, 4, 99);
        let out = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let want = expected_sum(&inputs);
        for r in &out.results {
            for (a, b) in r.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "{a} vs {b}");
            }
        }
        // Every node produced the bitwise-identical sum (fixed order).
        for r in &out.results {
            assert_eq!(r, &out.results[0]);
        }
    }

    #[test]
    fn butterfly_computes_the_same_sum() {
        let dims = TorusDims::new(4, 4, 4);
        let inputs = random_inputs(dims, 4, 100);
        let d = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let b = run_all_reduce(dims, Algorithm::Butterfly, Default::default(), &inputs);
        for (x, y) in d.results[0].iter().zip(&b.results[0]) {
            assert!((x - y).abs() < 1e-9 * x.abs().max(1.0));
        }
        for r in &b.results {
            assert_eq!(r, &b.results[0]);
        }
    }

    #[test]
    fn zero_byte_reduction_is_a_barrier() {
        let dims = TorusDims::new(4, 4, 4);
        let inputs = vec![Vec::new(); 64];
        let out = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        assert!(out.results.iter().all(|r| r.is_empty()));
        // A 64-node barrier lands under a microsecond (Table 2: 0.96 µs).
        let us = out.latency.as_us_f64();
        assert!((0.5..1.3).contains(&us), "barrier latency {us} µs");
    }

    #[test]
    fn table2_scale_512_nodes() {
        let dims = TorusDims::anton_512();
        let inputs = random_inputs(dims, 4, 7); // 32-byte reduction
        let out = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let us = out.latency.as_us_f64();
        // Paper: 1.77 µs. Accept the band 1.2–2.3 µs.
        assert!((1.2..2.3).contains(&us), "512-node 32 B all-reduce {us} µs");
        let want = expected_sum(&inputs);
        for (a, b) in out.results[0].iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1.0));
        }
    }

    #[test]
    fn dimension_ordered_beats_butterfly_in_latency() {
        let dims = TorusDims::anton_512();
        let inputs = random_inputs(dims, 4, 8);
        let d = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let b = run_all_reduce(dims, Algorithm::Butterfly, Default::default(), &inputs);
        assert!(
            d.latency < b.latency,
            "dim-ordered {} vs butterfly {}",
            d.latency,
            b.latency
        );
    }

    #[test]
    fn latency_grows_with_machine_size() {
        let sizes = [
            TorusDims::new(4, 4, 4),
            TorusDims::new(8, 2, 8),
            TorusDims::new(8, 8, 4),
            TorusDims::new(8, 8, 8),
            TorusDims::new(8, 8, 16),
        ];
        let mut last = SimDuration::ZERO;
        for dims in sizes {
            let inputs = random_inputs(dims, 4, 3);
            let out = run_all_reduce(
                dims,
                Algorithm::DimensionOrdered,
                Default::default(),
                &inputs,
            );
            assert!(
                out.latency >= last,
                "latency should be monotone in machine size: {:?} gave {}",
                dims,
                out.latency
            );
            last = out.latency;
        }
    }

    #[test]
    fn determinism() {
        let dims = TorusDims::new(4, 4, 4);
        let inputs = random_inputs(dims, 2, 5);
        let a = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let b = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.results, b.results);
        assert_eq!(a.packets_sent, b.packets_sent);
    }
}

#[cfg(test)]
mod degenerate_tests {
    use super::*;

    #[test]
    fn single_node_machine() {
        let dims = TorusDims::new(1, 1, 1);
        let inputs = vec![vec![3.5, -1.0]];
        let out = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        assert_eq!(out.results[0], vec![3.5, -1.0]);
        // Still pays the local share writes, so latency is nonzero but
        // well under a microsecond.
        assert!(out.latency.as_ns_f64() < 500.0);
    }

    #[test]
    fn flat_machines_skip_length_one_dimensions() {
        // 8×1×1: only the X round runs.
        let dims = TorusDims::new(8, 1, 1);
        let inputs = random_inputs(dims, 2, 17);
        let out = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let want: Vec<f64> = (0..2).map(|i| inputs.iter().map(|v| v[i]).sum()).collect();
        for r in &out.results {
            for (a, b) in r.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9 * b.abs().max(1.0));
            }
        }
        // One round ≈ one line broadcast + share: far less than the 3D time.
        let full = run_all_reduce(
            TorusDims::new(8, 8, 8),
            Algorithm::DimensionOrdered,
            Default::default(),
            &random_inputs(TorusDims::new(8, 8, 8), 2, 17),
        );
        assert!(out.latency < full.latency);
    }

    #[test]
    fn large_payload_reduction() {
        // 32 values = 256 bytes: one full packet per contribution.
        let dims = TorusDims::new(4, 4, 4);
        let inputs = random_inputs(dims, 32, 23);
        let out = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let want: Vec<f64> = (0..32).map(|i| inputs.iter().map(|v| v[i]).sum()).collect();
        for (a, b) in out.results[0].iter().zip(&want) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1.0));
        }
        // Bigger payloads cost more than the 32-byte case.
        let small = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &random_inputs(dims, 4, 23),
        );
        assert!(out.latency > small.latency);
    }

    #[test]
    fn asymmetric_1024_node_machine() {
        // Table 2's 8×8×16 row: the long Z dimension dominates.
        let dims = TorusDims::new(8, 8, 16);
        let inputs = random_inputs(dims, 4, 29);
        let out = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let us = out.latency.as_us_f64();
        assert!((1.5..2.5).contains(&us), "{us}");
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;

    #[test]
    fn ring_computes_the_same_sum() {
        let dims = TorusDims::new(2, 2, 2);
        let inputs = random_inputs(dims, 3, 41);
        let d = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let r = run_all_reduce(dims, Algorithm::Ring, Default::default(), &inputs);
        for (x, y) in d.results[0].iter().zip(&r.results[0]) {
            assert!((x - y).abs() < 1e-9 * x.abs().max(1.0));
        }
        for res in &r.results {
            assert_eq!(res, &r.results[0]);
        }
    }

    #[test]
    fn ring_is_latency_bound_and_loses_badly() {
        // 2(P−1) serialized hops: the paper's point about round counts
        // in its most extreme form.
        let dims = TorusDims::new(4, 4, 4);
        let inputs = random_inputs(dims, 4, 43);
        let d = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
        );
        let r = run_all_reduce(dims, Algorithm::Ring, Default::default(), &inputs);
        assert!(
            r.latency.as_us_f64() > 5.0 * d.latency.as_us_f64(),
            "ring {} vs dim-ordered {}",
            r.latency,
            d.latency
        );
    }
}
