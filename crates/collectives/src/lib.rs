//! # anton-collectives — global reductions on the simulated machine
//!
//! The paper (§IV.B.4): "Although Anton provides no specific hardware
//! support for global reductions, the combination of multicast and
//! counted remote writes leads to a very fast implementation. We use a
//! dimension-ordered algorithm … decomposed into parallel one-dimensional
//! all-reduce operations along the x-axis, followed by … y …, then z.
//! This algorithm … achieves the minimum total hop count (3N/2 for an
//! N×N×N machine) with three rounds of communication. By contrast, a
//! radix-2 butterfly communication pattern would require 3log₂N rounds
//! and 3(N−1) hops. … Processing slice k receives the remote writes and
//! computes the partial sum for the kth dimension (k = 0, 1, 2), so
//! after three rounds slice 2 on each node contains a copy of the global
//! sum, which it shares locally with the other three slices."
//!
//! Both algorithms are implemented as [`anton_net::NodeProgram`]s and run
//! on the packet-level fabric, so Table 2's latencies and the
//! paper's algorithmic comparison both regenerate from the same code.

#![warn(missing_docs)]

pub mod allreduce;
pub mod analysis;
pub mod recovering;

pub use allreduce::{
    random_inputs, run_all_reduce, run_all_reduce_faulty, run_all_reduce_par,
    run_all_reduce_par_profiled, run_all_reduce_par_timed, run_all_reduce_recorded,
    run_all_reduce_timed, Algorithm, AllReduceOutcome, CollectiveParams,
};
pub use analysis::{butterfly_cost, dimension_ordered_cost, HopCost};
pub use recovering::{
    run_all_reduce_recovering, run_all_reduce_recovering_par, run_all_reduce_recovering_par_timed,
    run_all_reduce_recovering_timed, RecoveringOutcome, RecoveringParams,
};
