//! The sharded-parallel all-reduce must reproduce the sequential one
//! exactly: same latency, same bitwise results, same traffic counts, at
//! every thread count and for every algorithm.

use anton_collectives::{random_inputs, run_all_reduce, run_all_reduce_par, Algorithm};
use anton_topo::TorusDims;

fn check(dims: TorusDims, algorithm: Algorithm, values: usize, seed: u64) {
    let inputs = random_inputs(dims, values, seed);
    let seq = run_all_reduce(dims, algorithm, Default::default(), &inputs);
    for threads in [1, 2, 4, 8] {
        let par = run_all_reduce_par(dims, algorithm, Default::default(), &inputs, threads);
        assert_eq!(
            par.latency, seq.latency,
            "{algorithm:?} @ {threads} threads"
        );
        assert_eq!(
            par.results, seq.results,
            "{algorithm:?} @ {threads} threads"
        );
        assert_eq!(par.packets_sent, seq.packets_sent);
        assert_eq!(par.link_traversals, seq.link_traversals);
    }
}

#[test]
fn dimension_ordered_is_thread_count_invariant() {
    check(TorusDims::new(4, 4, 4), Algorithm::DimensionOrdered, 4, 11);
}

#[test]
fn butterfly_is_thread_count_invariant() {
    check(TorusDims::new(4, 4, 4), Algorithm::Butterfly, 4, 12);
}

#[test]
fn ring_is_thread_count_invariant() {
    // The ring serializes everything through shard boundaries — the
    // worst case for a conservative engine, still exact.
    check(TorusDims::new(2, 2, 2), Algorithm::Ring, 3, 13);
}

#[test]
fn barrier_is_thread_count_invariant() {
    let dims = TorusDims::new(4, 4, 4);
    let inputs = vec![Vec::new(); 64];
    let seq = run_all_reduce(
        dims,
        Algorithm::DimensionOrdered,
        Default::default(),
        &inputs,
    );
    for threads in [2, 8] {
        let par = run_all_reduce_par(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
            threads,
        );
        assert_eq!(par.latency, seq.latency);
        assert!(par.results.iter().all(|r| r.is_empty()));
    }
}

#[test]
fn eight_cubed_matches_at_speedup_scale() {
    // The bench workload's machine: 8×8×8, 32-byte payloads.
    check(TorusDims::new(8, 8, 8), Algorithm::DimensionOrdered, 4, 21);
}
