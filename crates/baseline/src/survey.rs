//! Published measurements the paper compares against: the Table 1
//! latency survey, the half-bandwidth message sizes of §III.D, and the
//! §IV.B.4 collective measurements. These are literature constants — the
//! quantities our simulator must beat (or be compared against) by the
//! same margins the paper reports.

/// One Table 1 row: published inter-node software-to-software (ping-pong)
/// latency across a scalable network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurveyEntry {
    /// Machine/interconnect name as the paper lists it.
    pub machine: &'static str,
    /// Published one-way software-to-software latency, µs.
    pub latency_us: f64,
    /// Publication year of the measurement.
    pub year: u16,
    /// The paper's bracketed reference.
    pub reference: &'static str,
}

/// Table 1 (excluding Anton itself, which the simulator measures).
pub const LATENCY_SURVEY: &[SurveyEntry] = &[
    SurveyEntry {
        machine: "Altix 3700 BX2",
        latency_us: 1.25,
        year: 2006,
        reference: "[18]",
    },
    SurveyEntry {
        machine: "QsNetII",
        latency_us: 1.28,
        year: 2005,
        reference: "[8]",
    },
    SurveyEntry {
        machine: "Columbia",
        latency_us: 1.6,
        year: 2005,
        reference: "[10]",
    },
    SurveyEntry {
        machine: "Sun Fire",
        latency_us: 1.7,
        year: 2002,
        reference: "[42]",
    },
    SurveyEntry {
        machine: "EV7",
        latency_us: 1.7,
        year: 2002,
        reference: "[26]",
    },
    SurveyEntry {
        machine: "J-Machine",
        latency_us: 1.8,
        year: 1993,
        reference: "[32]",
    },
    SurveyEntry {
        machine: "QsNET",
        latency_us: 1.9,
        year: 2001,
        reference: "[33]",
    },
    SurveyEntry {
        machine: "Roadrunner (InfiniBand)",
        latency_us: 2.16,
        year: 2008,
        reference: "[7]",
    },
    SurveyEntry {
        machine: "Cray T3E",
        latency_us: 2.75,
        year: 1996,
        reference: "[37]",
    },
    SurveyEntry {
        machine: "Blue Gene/P",
        latency_us: 2.75,
        year: 2008,
        reference: "[3]",
    },
    SurveyEntry {
        machine: "Blue Gene/L",
        latency_us: 2.8,
        year: 2005,
        reference: "[25]",
    },
    SurveyEntry {
        machine: "ASC Purple",
        latency_us: 4.4,
        year: 2005,
        reference: "[25]",
    },
    SurveyEntry {
        machine: "Cray XT4",
        latency_us: 4.5,
        year: 2007,
        reference: "[2]",
    },
    SurveyEntry {
        machine: "Red Storm",
        latency_us: 6.9,
        year: 2005,
        reference: "[25]",
    },
    SurveyEntry {
        machine: "SR8000",
        latency_us: 9.9,
        year: 2001,
        reference: "[45]",
    },
];

/// The paper's reported Anton figure (our simulator must reproduce it).
pub const ANTON_LATENCY_US: f64 = 0.162;

/// Message sizes achieving 50% of peak data bandwidth (§III.D, from
/// \[25\] for the comparison machines).
#[derive(Debug, Clone, Copy)]
pub struct HalfBandwidthEntry {
    /// Machine name.
    pub machine: &'static str,
    /// Message size reaching 50% of peak data bandwidth, bytes.
    pub half_bandwidth_bytes: u64,
}

/// §III.D: "50% of the maximum possible data bandwidth is achieved with
/// 28-byte messages on Anton, compared with 1.4-, 16-, and 39-kilobyte
/// messages on Blue Gene/L, Red Storm, and ASC Purple".
pub const HALF_BANDWIDTH_SURVEY: &[HalfBandwidthEntry] = &[
    HalfBandwidthEntry {
        machine: "Blue Gene/L",
        half_bandwidth_bytes: 1_400,
    },
    HalfBandwidthEntry {
        machine: "Red Storm",
        half_bandwidth_bytes: 16_000,
    },
    HalfBandwidthEntry {
        machine: "ASC Purple",
        half_bandwidth_bytes: 39_000,
    },
];

/// Anton's half-bandwidth message size per the paper.
pub const ANTON_HALF_BANDWIDTH_BYTES: u64 = 28;

/// §IV.B.4: measured 32-byte all-reduce on a 512-node DDR2 InfiniBand
/// cluster.
pub const MEASURED_IB_ALLREDUCE_512_US: f64 = 35.5;

/// §IV.B.4: 16-byte all-reduce across 512 BlueGene/L nodes using its
/// dedicated tree network \[5\].
pub const BGL_TREE_ALLREDUCE_512_US: f64 = 4.22;

/// Table 2's published Anton all-reduce times (µs), for
/// paper-vs-simulated reporting: (nodes, dims, 0-byte, 32-byte).
#[allow(clippy::type_complexity)] // a literal table row, not an abstraction
pub const PAPER_TABLE2: &[(u32, (u32, u32, u32), f64, f64)] = &[
    (1024, (8, 8, 16), 1.56, 2.06),
    (512, (8, 8, 8), 1.32, 1.77),
    (256, (8, 8, 4), 1.27, 1.68),
    (128, (8, 2, 8), 1.24, 1.64),
    (64, (4, 4, 4), 0.96, 1.31),
];

/// Table 3's published values (µs): (row, anton_comm, anton_total,
/// desmond_comm, desmond_total).
pub const PAPER_TABLE3: &[(&str, f64, f64, f64, f64)] = &[
    ("Average time step", 9.8, 15.6, 262.0, 565.0),
    ("Range-limited time step", 5.0, 9.0, 108.0, 351.0),
    ("Long-range time step", 14.6, 22.2, 416.0, 779.0),
    ("FFT-based convolution", 7.5, 8.5, 230.0, 290.0),
    ("Thermostat", 2.6, 3.0, 78.0, 99.0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_is_sorted_by_latency() {
        for w in LATENCY_SURVEY.windows(2) {
            assert!(w[0].latency_us <= w[1].latency_us);
        }
    }

    #[test]
    fn anton_leads_by_roughly_an_order_of_magnitude() {
        let best = LATENCY_SURVEY[0].latency_us;
        assert!(best / ANTON_LATENCY_US > 7.0);
    }

    #[test]
    fn paper_tables_are_self_consistent() {
        // Table 3: communication ≤ total in every row.
        for &(_, ac, at, dc, dt) in PAPER_TABLE3 {
            assert!(ac <= at && dc <= dt);
        }
        // The headline: Anton's average-step communication is ~1/27 of
        // Desmond's.
        let (_, ac, _, dc, _) = PAPER_TABLE3[0];
        let ratio = dc / ac;
        assert!((25.0..29.0).contains(&ratio), "{ratio}");
        // Table 2 grows with machine size.
        for w in PAPER_TABLE2.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }
}
