//! Commodity-cluster network model (DDR InfiniBand, per Figure 7 and
//! the comparisons of §IV.B.4 / Table 3).
//!
//! On a commodity interconnect the cost of a transfer is dominated by
//! per-message software/NIC overhead: an α–β model with a pipelined
//! per-message gap. Constants are calibrated to published measurements:
//! ~1.1 µs back-to-back DDR latency \[44\], ~2 GB/s effective DDR 4x data
//! rate, and a per-message gap consistent with Figure 7's roughly
//! sevenfold slowdown when a 2 KB transfer is split into 64 messages.

/// DDR InfiniBand cluster model.
#[derive(Debug, Clone, Copy)]
pub struct IbModel {
    /// End-to-end small-message latency, µs.
    pub alpha_us: f64,
    /// Effective data bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Pipelined per-message overhead (send descriptor, doorbell,
    /// completion), µs.
    pub per_message_us: f64,
}

impl Default for IbModel {
    fn default() -> Self {
        IbModel {
            alpha_us: 1.1,
            bandwidth_gbs: 2.0,
            per_message_us: 0.18,
        }
    }
}

impl IbModel {
    /// One-way latency of a single message of `bytes`, µs.
    pub fn message_latency_us(&self, bytes: u64) -> f64 {
        self.alpha_us + bytes as f64 / (self.bandwidth_gbs * 1e3)
    }

    /// Total time to move `total_bytes` split into `k` equal messages
    /// between one node pair, µs (Figure 7's experiment): the messages
    /// are posted back to back, so overhead pipelines but each message
    /// still pays its gap.
    pub fn split_transfer_us(&self, total_bytes: u64, k: u32) -> f64 {
        assert!(k >= 1);
        self.alpha_us
            + (k - 1) as f64 * self.per_message_us
            + total_bytes as f64 / (self.bandwidth_gbs * 1e3)
    }

    /// Recursive-doubling all-reduce latency over `nodes` for `bytes`,
    /// µs: log₂(n) exchange rounds, each a full message round trip's
    /// worth of α plus data.
    pub fn allreduce_us(&self, nodes: u32, bytes: u64) -> f64 {
        assert!(nodes.is_power_of_two(), "model assumes power-of-two");
        let rounds = nodes.trailing_zeros() as f64;
        // Each round: send+recv overlap → one α + data + gap, plus
        // software reduction (small).
        rounds * (self.alpha_us + self.per_message_us + bytes as f64 / (self.bandwidth_gbs * 1e3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_2kb_message_costs_about_two_microseconds() {
        let ib = IbModel::default();
        let t = ib.message_latency_us(2048);
        assert!((1.8..2.6).contains(&t), "{t}");
    }

    #[test]
    fn splitting_grows_cost_severely() {
        // Figure 7(b): 64 messages cost several times one message.
        let ib = IbModel::default();
        let one = ib.split_transfer_us(2048, 1);
        let sixty_four = ib.split_transfer_us(2048, 64);
        let ratio = sixty_four / one;
        assert!((4.0..9.0).contains(&ratio), "ratio {ratio}");
        // Monotone in k.
        let mut last = 0.0;
        for k in 1..=64 {
            let t = ib.split_transfer_us(2048, k);
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn allreduce_matches_the_papers_cluster_measurement_scale() {
        // §IV.B.4: a 32-byte all-reduce on a 512-node DDR2 InfiniBand
        // cluster measured 35.5 µs. Our model should land in that
        // region (it's 9 rounds of ~1.3 µs plus contention the model
        // folds into the constants).
        let ib = IbModel {
            per_message_us: 2.8,
            ..Default::default()
        };
        let t = ib.allreduce_us(512, 32);
        assert!((25.0..45.0).contains(&t), "{t}");
        // And the default (uncongested) model is strictly cheaper.
        assert!(IbModel::default().allreduce_us(512, 32) < t);
    }
}
