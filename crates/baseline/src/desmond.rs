//! Timing model of the comparison platform of Table 3: a 512-node
//! Xeon/InfiniBand cluster running Desmond \[12, 15\].
//!
//! We cannot run the proprietary Desmond binary; instead this module
//! models the *structure* of its communication schedule — Desmond's
//! staged 6-message neighbor exchange (Figure 8a), an MPI all-to-all
//! FFT transpose, and a recursive-doubling all-reduce — on the
//! [`crate::ib::IbModel`] network, with arithmetic throughput typical of
//! 2008-era Xeon nodes. The constants are chosen so the model lands on
//! the published Desmond measurements the paper quotes (\[15\]; Table 3
//! column 2), which is the honest way to reproduce a comparator we
//! cannot rerun (see DESIGN.md substitutions).

use crate::ib::IbModel;

/// Per-step timing of the modeled Desmond cluster run, µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesmondStep {
    /// Critical-path communication time, µs.
    pub communication_us: f64,
    /// Total step time, µs.
    pub total_us: f64,
}

/// The modeled cluster.
#[derive(Debug, Clone, Copy)]
pub struct DesmondModel {
    /// The cluster interconnect.
    pub net: IbModel,
    /// Nodes (the paper's comparison uses 512).
    pub nodes: u32,
    /// Atoms in the benchmark system.
    pub atoms: u32,
    /// *Effective* Xeon-node pairwise rate, pairs/ns/node. At 512-node
    /// strong scaling (46 atoms/node) the published step times are
    /// dominated by pairlist maintenance, packing, load imbalance, and
    /// serial sections, so the effective rate is far below the cores'
    /// peak — this constant absorbs all of that, calibrated to Table 3's
    /// published compute residual (total − communication ≈ 243 µs).
    pub pairs_per_ns: f64,
    /// Average interactions per atom within the cutoff.
    pub pairs_per_atom: f64,
    /// Per-stage software cost of the staged exchange (pack, post,
    /// progress, unpack, synchronize), µs.
    pub per_stage_software_us: f64,
    /// Additional software cost per FFT transpose message, µs.
    pub fft_msg_software_us: f64,
}

impl DesmondModel {
    /// The Table 3 configuration: DHFR on 512 nodes.
    pub fn table3() -> DesmondModel {
        DesmondModel {
            net: IbModel::default(),
            nodes: 512,
            atoms: 23_558,
            pairs_per_ns: 0.075,
            pairs_per_atom: 380.0,
            per_stage_software_us: 12.0,
            fft_msg_software_us: 0.85,
        }
    }

    /// Bytes of position/force payload exchanged per neighbor message:
    /// with ~46 atoms per box and the staged half-shell import, each of
    /// the 6 messages carries a few kilobytes.
    fn neighbor_message_bytes(&self) -> u64 {
        let atoms_per_node = self.atoms as f64 / self.nodes as f64;
        // Import volume ≈ 2× home box per direction pair, 32 B per atom
        // record (position + id + padding).
        (atoms_per_node * 2.0 * 32.0) as u64
    }

    /// One staged all-neighbor exchange (Figure 8a): three stages of two
    /// messages each, with data forwarded between stages — 6 messages
    /// but 3 serialized rounds.
    pub fn staged_exchange_us(&self) -> f64 {
        let bytes = self.neighbor_message_bytes();
        // Each stage: two concurrent messages (one per direction), the
        // stage completes at the slower; stages serialize, and each pays
        // the software pack/unpack/progress cost.
        3.0 * (self.net.message_latency_us(bytes)
            + self.net.per_message_us
            + self.per_stage_software_us)
    }

    /// The FFT-based convolution: two transpose all-to-alls (forward and
    /// inverse) over the node grid plus the mesh traffic; on a commodity
    /// cluster each transpose is ~log n rounds of α-dominated exchanges.
    pub fn fft_convolution_us(&self) -> f64 {
        // Calibrated to the published 230 µs (Table 3): dominated by
        // per-message overheads of the distributed transposes.
        let rounds = 2.0 * (self.nodes as f64).log2(); // fwd + inv
        let msgs_per_round = 6.0;
        rounds
            * msgs_per_round
            * (self.net.alpha_us + self.net.per_message_us + self.fft_msg_software_us)
    }

    /// Global all-reduce for the thermostat: the paper measured 35.5 µs
    /// for a bare 32-byte reduction; Desmond's thermostat phase also
    /// reduces the virial and rescales, totalling ~78 µs communication.
    pub fn thermostat_comm_us(&self) -> f64 {
        // Kinetic-energy reduce + a broadcast-scale rescale sync.
        2.0 * crate::survey::MEASURED_IB_ALLREDUCE_512_US + 7.0
    }

    /// Range-limited (every-step) communication: positions out + forces
    /// back through the staged exchange.
    pub fn range_limited_comm_us(&self) -> f64 {
        2.0 * self.staged_exchange_us() + self.bonded_comm_us()
    }

    /// Bonded-term communication folded into the same exchanges plus
    /// bookkeeping messages.
    fn bonded_comm_us(&self) -> f64 {
        6.0 * self.net.per_message_us + self.net.alpha_us
    }

    /// Arithmetic time per step (pair interactions dominate).
    pub fn compute_us(&self, long_range: bool) -> f64 {
        let pairs = self.atoms as f64 * self.pairs_per_atom / self.nodes as f64;
        let base = pairs / self.pairs_per_ns / 1e3;
        if long_range {
            base * 1.45 // spreading + FFT arithmetic + interpolation
        } else {
            base
        }
    }

    /// A range-limited step.
    pub fn range_limited_step(&self) -> DesmondStep {
        let comm = self.range_limited_comm_us();
        DesmondStep {
            communication_us: comm,
            total_us: comm + self.compute_us(false),
        }
    }

    /// A long-range step (adds the FFT convolution and thermostat).
    pub fn long_range_step(&self) -> DesmondStep {
        let comm =
            self.range_limited_comm_us() + self.fft_convolution_us() + self.thermostat_comm_us();
        DesmondStep {
            communication_us: comm,
            total_us: comm + self.compute_us(true),
        }
    }

    /// Average step (long-range every other step, as in Table 3).
    pub fn average_step(&self) -> DesmondStep {
        let rl = self.range_limited_step();
        let lr = self.long_range_step();
        DesmondStep {
            communication_us: 0.5 * (rl.communication_us + lr.communication_us),
            total_us: 0.5 * (rl.total_us + lr.total_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The model must land on the published Desmond numbers (Table 3)
    /// within a factor accounting for its deliberate simplicity.
    #[test]
    fn matches_published_table3_shape() {
        let m = DesmondModel::table3();
        let rl = m.range_limited_step();
        let lr = m.long_range_step();
        let avg = m.average_step();
        // Published: RL 108/351, LR 416/779, average 262/565 (comm/total).
        assert!((70.0..160.0).contains(&rl.communication_us), "{rl:?}");
        assert!((250.0..500.0).contains(&rl.total_us), "{rl:?}");
        assert!((280.0..520.0).contains(&lr.communication_us), "{lr:?}");
        assert!((550.0..1000.0).contains(&lr.total_us), "{lr:?}");
        assert!((180.0..340.0).contains(&avg.communication_us), "{avg:?}");
        assert!((400.0..750.0).contains(&avg.total_us), "{avg:?}");
    }

    #[test]
    fn long_range_steps_cost_more() {
        let m = DesmondModel::table3();
        assert!(m.long_range_step().total_us > m.range_limited_step().total_us);
        assert!(
            m.long_range_step().communication_us > 2.0 * m.range_limited_step().communication_us
        );
    }

    #[test]
    fn fft_convolution_is_the_dominant_long_range_cost() {
        // Table 3: 230 of the 416 µs long-range comm is the convolution.
        let m = DesmondModel::table3();
        let fft = m.fft_convolution_us();
        assert!((150.0..300.0).contains(&fft), "{fft}");
        assert!(fft > m.thermostat_comm_us());
    }
}
