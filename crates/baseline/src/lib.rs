//! # anton-baseline — the comparison platforms
//!
//! Models of the systems the paper compares Anton against: a DDR
//! InfiniBand cluster network (Figure 7, §IV.B.4), a Desmond-style MD
//! schedule on that cluster (Table 3), and the published-measurement
//! constants of Table 1, §III.D, and §IV.B.4.

#![warn(missing_docs)]

pub mod desmond;
pub mod ib;
pub mod survey;

pub use desmond::{DesmondModel, DesmondStep};
pub use ib::IbModel;
pub use survey::{
    HalfBandwidthEntry, SurveyEntry, ANTON_HALF_BANDWIDTH_BYTES, ANTON_LATENCY_US,
    BGL_TREE_ALLREDUCE_512_US, HALF_BANDWIDTH_SURVEY, LATENCY_SURVEY, MEASURED_IB_ALLREDUCE_512_US,
    PAPER_TABLE2, PAPER_TABLE3,
};
