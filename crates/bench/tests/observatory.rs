//! Acceptance tests of the perf observatory: a perturbed run must
//! triage to the *component* that regressed and the critical-path
//! blame shift, and the committed trajectory must render into a
//! byte-deterministic, well-formed, offline dashboard.

use anton_bench::observatory::{collect, ObservatoryOptions};
use anton_obs::{
    render_dashboard, validate_html, DashboardInput, DiffConfig, EdgeKind, Perturbation,
    SectionKind, TrajectoryIndex, SEC_BLAME,
};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn opts() -> ObservatoryOptions {
    ObservatoryOptions {
        quick: true,
        label: "observatory test".to_owned(),
    }
}

/// The headline acceptance: artificially slowing one attribution
/// component (delivery, 20×) must produce a triage that names the
/// regressed component by name and reports the critical path moving
/// off the wire onto it — not just a bare threshold breach.
#[test]
fn perturbed_run_triages_the_component_and_the_blame_shift() {
    let base = collect(&opts(), None);
    let perturb = Perturbation::none().scale(EdgeKind::Delivery, 20.0);
    let cur = collect(&opts(), Some(&perturb));

    let diff = cur.diff(&base, DiffConfig::default()).expect("comparable");
    assert!(diff.has_regressions(), "{}", diff.table());
    let triage = diff.triage();

    // The triage names the attribution component that regressed...
    assert!(
        triage.contains("delivery share rose"),
        "triage must name the regressed component:\n{triage}"
    );
    // ...and the critical-path blame shift, from wire onto delivery.
    assert!(
        triage.contains("critical path moved from wire to delivery"),
        "triage must report the blame shift:\n{triage}"
    );
    // The stretched makespan also breaches the plain metric gate.
    assert!(
        triage.contains("metric causal_critical_end_ns regressed"),
        "triage must flag the re-timed makespan:\n{triage}"
    );

    // The blame section itself gates, and the leader shift is machine-
    // readable for the dashboard's shift table.
    let blame = diff
        .sections
        .iter()
        .find(|s| s.name == SEC_BLAME)
        .expect("blame section diffed");
    assert!(blame.gated);
    assert_eq!(blame.kind, SectionKind::Shares);
    assert_eq!(
        blame.leader_shift,
        Some(("wire".to_owned(), "delivery".to_owned()))
    );
    let delivery = blame
        .components
        .iter()
        .find(|c| c.name == "delivery")
        .expect("delivery component");
    assert!(delivery.regressed && delivery.delta > 2.0);
    // The falling wire share is an improvement, never a regression.
    let wire = blame
        .components
        .iter()
        .find(|c| c.name == "wire")
        .expect("wire component");
    assert!(!wire.regressed && wire.delta < 0.0);
}

/// An unperturbed run diffed against itself is clean — the observatory
/// never cries wolf on a bit-identical profile.
#[test]
fn identical_runs_triage_clean() {
    let obs = collect(&opts(), None);
    let diff = obs.diff(&obs, DiffConfig::default()).expect("comparable");
    assert!(!diff.has_regressions(), "{}", diff.table());
    assert!(diff.triage().contains("no regressions past thresholds"));

    // The report round-trips through its JSON form with sections.
    let back = anton_obs::ObservatoryReport::parse(&obs.to_json()).expect("parses");
    assert_eq!(back, obs);
    assert_eq!(back.sections.len(), 4);
}

/// The committed `BENCH_trajectory.json` resolves every PR 3→9
/// baseline, and the dashboard rendered from them is byte-
/// deterministic, tag-balanced, and fully offline.
#[test]
fn committed_trajectory_renders_deterministically() {
    let root = repo_root();
    let index = TrajectoryIndex::load(&root.join("BENCH_trajectory.json")).expect("index parses");
    for name in ["pr3", "pr4", "pr5", "pr6", "pr7", "pr8", "pr9"] {
        assert!(index.resolve(name).is_some(), "baseline {name} missing");
    }
    let trajectory = index.load_reports(&root).expect("every baseline parses");
    assert_eq!(trajectory.len(), 7);

    // The pr9 entry carries scenario provenance: the spec content hash
    // and the deterministic engine fingerprint of its workload.
    let provenance: Vec<(String, String, String)> = index
        .entries
        .iter()
        .filter_map(|e| Some((e.name.clone(), e.spec_hash.clone()?, e.fingerprint.clone()?)))
        .collect();
    assert!(
        provenance
            .iter()
            .any(|(n, s, f)| n == "pr9" && s.len() == 16 && f.len() == 16),
        "pr9 baseline must carry spec-hash + fingerprint provenance"
    );

    let input = DashboardInput {
        title: "anton perf observatory",
        trajectory: &trajectory,
        current: None,
        diff: None,
        provenance: &provenance,
    };
    let a = render_dashboard(&input);
    let b = render_dashboard(&input);
    assert_eq!(a, b, "dashboard must render byte-identically");
    validate_html(&a).expect("dashboard is well-formed");
    // Offline: no external fetches, no script.
    assert!(!a.contains("http://") && !a.contains("https://"));
    assert!(!a.contains("<script"));
    // It actually shows the trajectory: every baseline is a column of
    // the data table, and the shared metrics sparkline.
    for name in ["pr3", "pr4", "pr5", "pr6", "pr7"] {
        assert!(a.contains(&format!("<th>{name}</th>")), "{name} column");
    }
    assert!(a.contains("one_way_1hop_ns"));
    // The provenance rows render pr9's spec hash and fingerprint.
    assert!(a.contains("b6797d21d84d45e3"), "pr9 spec hash row");
    assert!(a.contains("6fe2981e3e69315f"), "pr9 fingerprint row");
}

/// The committed quick profile (`BENCH_pr7.json`) stays consistent
/// with what a fresh quick collection produces — the same invariant
/// the CI drift gate enforces, pinned here at metric granularity.
#[test]
fn committed_quick_profile_matches_a_fresh_collection() {
    let root = repo_root();
    let text = std::fs::read_to_string(root.join("BENCH_pr7.json")).expect("committed profile");
    let committed = anton_obs::BenchReport::parse(&text).expect("parses");
    let fresh = collect(
        &ObservatoryOptions {
            quick: true,
            label: committed.label.clone(),
        },
        None,
    );
    assert_eq!(
        fresh.metrics.to_json(),
        text,
        "committed BENCH_pr7.json drifted from a fresh quick collection"
    );
    // Direction metadata survives the committed round trip.
    assert_eq!(
        committed.direction("md_lookahead_efficiency"),
        anton_obs::Direction::HigherIsBetter
    );
}
