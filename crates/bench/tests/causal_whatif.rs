//! Acceptance tests of the what-if re-timer: replaying the causal DAG
//! with hop latency scaled ±10% must predict the makespan of an actual
//! re-run under the equivalently perturbed [`Timing`] model to within
//! 1% — on the one-way-latency ping-pong and on an all-reduce.
//!
//! The hop (wire) lag in the DAG is the link head latency, `2 ×
//! adapter_ns` — a timing constant used nowhere else in the fabric —
//! so scaling `Wire` edges by `f` in the re-timer corresponds exactly
//! to re-running with `adapter_ns × f`.
//!
//! [`Timing`]: anton_net::Timing

use anton_bench::one_way_latency_timed;
use anton_collectives::{random_inputs, run_all_reduce_timed, Algorithm};
use anton_des::SimTime;
use anton_net::Timing;
use anton_obs::{
    retime, CausalGraph, EdgeKind, FlightRecorder, Perturbation, SharedFlightRecorder,
};
use anton_topo::{Coord, LinkDir, NodeId, TorusDims};

fn graph_of(dims: TorusDims, rec: &SharedFlightRecorder, timing: &Timing) -> CausalGraph {
    let t = timing.clone();
    let rec = rec.borrow();
    CausalGraph::build(dims, rec.events(), |b| t.injection_occupancy(b))
}

fn recorded_end(g: &CausalGraph) -> SimTime {
    g.nodes()[g.terminal().expect("nonempty graph") as usize].time
}

/// Relative error of a predicted makespan end vs the measured one.
fn rel_err(predicted: SimTime, actual: SimTime) -> f64 {
    (predicted.as_ps() as f64 - actual.as_ps() as f64).abs() / actual.as_ps() as f64
}

#[test]
fn retimer_predicts_hop_scaling_on_one_way_latency() {
    let dims = TorusDims::anton_512();
    let base = Timing::default();
    let (src, dst) = (Coord::new(0, 0, 0), Coord::new(1, 0, 0));
    let (_, rec) = one_way_latency_timed(dims, src, dst, 0, false, 4, base.clone());
    let g = graph_of(dims, &rec, &base);
    g.check_consistency().expect("recorded graph is exact");

    for scale in [1.1, 0.9] {
        let predicted = retime(&g, &Perturbation::none().scale(EdgeKind::Wire, scale));

        let mut perturbed = base.clone();
        perturbed.adapter_ns *= scale;
        let (_, rec2) = one_way_latency_timed(dims, src, dst, 0, false, 4, perturbed.clone());
        let g2 = graph_of(dims, &rec2, &perturbed);
        let actual = recorded_end(&g2);

        let err = rel_err(predicted.end, actual);
        assert!(
            err <= 0.01,
            "hop x{scale}: predicted {} vs actual {} ({:.3}% off)",
            predicted.end,
            actual,
            err * 100.0
        );
        // The perturbation must actually move the makespan, or the 1%
        // bound is vacuous.
        assert_ne!(
            actual,
            recorded_end(&g),
            "hop x{scale} must change the makespan"
        );
    }
}

#[test]
fn retimer_predicts_hop_scaling_on_all_reduce() {
    let dims = TorusDims::new(2, 2, 2);
    let base = Timing::default();
    let inputs = random_inputs(dims, 4, 7);

    let run = |timing: &Timing| -> SharedFlightRecorder {
        let rec = FlightRecorder::new().into_shared();
        run_all_reduce_timed(
            dims,
            Algorithm::Butterfly,
            Default::default(),
            &inputs,
            timing.clone(),
            Some(Box::new(rec.clone())),
        );
        rec
    };

    let g = graph_of(dims, &run(&base), &base);
    g.check_consistency().expect("recorded graph is exact");

    for scale in [1.1, 0.9] {
        let predicted = retime(&g, &Perturbation::none().scale(EdgeKind::Wire, scale));

        let mut perturbed = base.clone();
        perturbed.adapter_ns *= scale;
        let g2 = graph_of(dims, &run(&perturbed), &perturbed);
        let actual = recorded_end(&g2);

        let err = rel_err(predicted.end, actual);
        assert!(
            err <= 0.01,
            "all-reduce hop x{scale}: predicted {} vs actual {} ({:.3}% off)",
            predicted.end,
            actual,
            err * 100.0
        );
        assert_ne!(actual, recorded_end(&g));
    }
}

/// Slowing one link only matters if the critical path crosses it: a
/// link on the path stretches the makespan; a far-away idle link
/// leaves the replay bit-for-bit identical.
#[test]
fn slow_link_moves_only_the_paths_that_cross_it() {
    let dims = TorusDims::anton_512();
    let base = Timing::default();
    let (_, rec) = one_way_latency_timed(
        dims,
        Coord::new(0, 0, 0),
        Coord::new(1, 0, 0),
        0,
        false,
        4,
        base.clone(),
    );
    let g = graph_of(dims, &rec, &base);
    let end = recorded_end(&g);

    // Pick the first wire crossing on the measured critical path.
    let path = g.critical_path().expect("nonempty");
    let (hot_node, hot_link) = path
        .edges
        .iter()
        .find_map(|&e| {
            let edge = &g.edges()[e as usize];
            (edge.kind == EdgeKind::Wire).then(|| {
                let src = &g.nodes()[edge.src as usize];
                (src.node, LinkDir::from_index(src.aux as usize))
            })
        })
        .expect("the ping-pong path crosses a wire");

    let slowed = retime(&g, &Perturbation::none().slow_link(hot_node, hot_link, 3.0));
    assert!(
        slowed.end > end,
        "tripling a critical link must stretch the makespan ({} vs {end})",
        slowed.end
    );

    // A link in a distant corner of the machine carries none of this
    // traffic; slowing it predicts no change at all.
    let idle = retime(
        &g,
        &Perturbation::none().slow_link(NodeId(dims.node_count() - 1), LinkDir::from_index(4), 3.0),
    );
    assert_eq!(idle.end, end);
    for (i, n) in g.nodes().iter().enumerate() {
        assert_eq!(idle.times[i], n.time, "idle-link what-if must be a no-op");
    }
}
