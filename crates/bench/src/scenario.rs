//! Execute a [`ScenarioSpec`] on the engine and reduce the run to its
//! provenance pair: a thread-invariant engine fingerprint plus an
//! [`ObservatoryReport`] of everything observed.
//!
//! This is the glue between `anton-scenario` (which owns the spec
//! model and ledger formats but none of the workload wiring) and the
//! simulation crates. The `scenario` CLI and the ported bench binaries
//! both run workloads through here, so a spec hash always denotes the
//! same execution.
//!
//! Fingerprint recipes are chosen to be **thread-invariant**: they
//! cover only observables the sequential and sharded engines agree on
//! bit-for-bit (simulated times, per-node checksums and traffic
//! counts), never bookkeeping like total DES event counts, which differ
//! by one `Start` event per shard. `scenario run` exploits this by
//! executing every spec at 1 and 4 threads and refusing to write a
//! ledger record unless the fingerprints match.

use anton_collectives::{
    random_inputs, run_all_reduce_par_timed, run_all_reduce_recovering_par_timed, CollectiveParams,
    RecoveringParams,
};
use anton_core::{
    run_md_exchange_par_mode_profiled_timed, run_md_exchange_streamed_par_timed, MdExchangeOutcome,
};
use anton_des::SimTime;
use anton_net::ObsMode;
use anton_obs::runtime::RuntimeSummary;
use anton_obs::{
    fold_lifecycles, BreakdownSummary, Fingerprint, ObservatoryReport, Section, Stage,
    StreamConfig, SEC_RECOVERY,
};
use anton_scenario::{ScenarioSpec, Workload};
use std::collections::BTreeMap;

use crate::microbench::one_way_latency_timed;

/// The provenance-relevant result of executing one spec.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Thread-invariant engine fingerprint, 16-hex.
    pub fingerprint: String,
    /// Everything observed during the run.
    pub observatory: ObservatoryReport,
}

/// Run `spec`'s workload at the given worker-thread count and reduce
/// it to a [`ScenarioOutcome`]. The spec's own `threads` field is the
/// *default* run configuration; callers probing determinism pass
/// explicit counts.
pub fn run_scenario(spec: &ScenarioSpec, threads: usize) -> ScenarioOutcome {
    let dims = spec.torus_dims();
    let timing = spec.timing_table();
    let label = format!("scenario {} ({})", spec.name, spec.hash_hex());
    let mut obs = ObservatoryReport::new(&label);

    let fingerprint = match &spec.workload {
        Workload::MdExchange { .. } => {
            let params = spec.md_params().expect("md workload");
            let (out, profile) = run_md_exchange_par_mode_profiled_timed(
                dims,
                params,
                threads,
                spec.lookahead,
                timing.clone(),
            );
            obs.metrics
                .set("md_makespan_us", (out.makespan - SimTime::ZERO).as_us_f64());
            RuntimeSummary::from_profile(&profile).record_into(&mut obs.metrics, "md");
            let mut runtime = BTreeMap::new();
            runtime.insert("windows".to_owned(), profile.windows as f64);
            runtime.insert(
                "recovered_events".to_owned(),
                profile.recovered_events as f64,
            );
            runtime.insert(
                "extended_shard_windows".to_owned(),
                profile.extended_shard_windows as f64,
            );
            obs.set_section("runtime", Section::values(runtime));

            if spec.obs == ObsMode::Stream {
                // Re-run under the bounded-memory observer: the summary
                // feeds a section, and the zero-observer-effect contract
                // is asserted right here.
                let (sout, summary) = run_md_exchange_streamed_par_timed(
                    dims,
                    params,
                    threads,
                    StreamConfig::default(),
                    timing.clone(),
                );
                assert_eq!(sout.makespan, out.makespan, "stream observer effect");
                assert_eq!(sout.checksums, out.checksums, "stream observer effect");
                let mut stream = BTreeMap::new();
                stream.insert("complete_folds".to_owned(), summary.fold.complete as f64);
                stream.insert("retransmits".to_owned(), summary.retransmits as f64);
                stream.insert(
                    "e2e_p99_ns".to_owned(),
                    summary.e2e_sketch.quantile_ns(0.99),
                );
                obs.set_section("stream", Section::values(stream));
            }
            md_fingerprint(&out)
        }
        Workload::AllReduce {
            algorithm,
            vlen,
            seed,
            reps,
        } => {
            let inputs = random_inputs(dims, *vlen as usize, *seed);
            let mut out = None;
            for _ in 0..(*reps).max(1) {
                out = Some(run_all_reduce_par_timed(
                    dims,
                    algorithm.algorithm(),
                    CollectiveParams::default(),
                    &inputs,
                    threads,
                    timing.clone(),
                ));
            }
            let out = out.expect("at least one rep");
            obs.metrics
                .set("allreduce_latency_us", out.latency.as_us_f64());
            obs.metrics
                .set("allreduce_packets", out.packets_sent as f64);
            obs.metrics
                .set("allreduce_link_traversals", out.link_traversals as f64);
            let mut fp = Fingerprint::new();
            fp.update(&out.latency);
            fp.update(&out.results);
            fp.update(&out.packets_sent);
            fp.update(&out.link_traversals);
            fp.hex()
        }
        Workload::Recovering { vlen, seed, .. } => {
            let inputs = random_inputs(dims, *vlen as usize, *seed);
            let deaths = spec.deaths();
            let out = run_all_reduce_recovering_par_timed(
                dims,
                &inputs,
                spec.fault_plan(),
                &deaths,
                spec.recovery_config(),
                RecoveringParams::default(),
                threads,
                timing,
            );
            assert!(out.completed, "recovering collective wedged");
            obs.metrics
                .set("recovering_latency_us", out.latency.as_us_f64());
            let mut values = BTreeMap::new();
            values.insert("latency_us".to_owned(), out.latency.as_us_f64());
            values.insert("verdicts".to_owned(), out.verdicts as f64);
            values.insert("reinjections".to_owned(), out.recovery.reinjections as f64);
            values.insert(
                "duplicates_suppressed".to_owned(),
                out.recovery.duplicates_suppressed as f64,
            );
            values.insert(
                "packets_lost_unrecovered".to_owned(),
                out.recovery.packets_lost_unrecovered as f64,
            );
            obs.set_section(SEC_RECOVERY, Section::values(values));
            format!("{:016x}", out.fingerprint())
        }
        Workload::PingPong {
            from,
            to,
            payload_bytes,
            bidirectional,
            reps,
        } => {
            // The microbenchmark is sequential by construction, so its
            // fingerprint is trivially thread-invariant.
            let (latency, rec) = one_way_latency_timed(
                dims,
                anton_topo::Coord::new(from.0, from.1, from.2),
                anton_topo::Coord::new(to.0, to.1, to.2),
                *payload_bytes,
                *bidirectional,
                *reps,
                timing,
            );
            let rec = rec.borrow();
            let (lifecycles, _) = fold_lifecycles(rec.events());
            let summary = BreakdownSummary::from_lifecycles(&lifecycles);
            obs.metrics.set("one_way_ns", latency.as_ns_f64());
            let mut breakdown = BTreeMap::new();
            for stage in Stage::ALL {
                breakdown.insert(format!("{}_ns", stage.name()), summary.mean_ns(stage));
            }
            obs.set_section("breakdown", Section::values(breakdown));
            let mut fp = Fingerprint::new();
            fp.update(&latency);
            fp.update(&summary.packets);
            for stage in Stage::ALL {
                fp.update(&summary.mean_ns(stage).to_bits());
            }
            fp.hex()
        }
    };

    ScenarioOutcome {
        fingerprint,
        observatory: obs,
    }
}

/// The thread-invariant MD-exchange fingerprint: simulated times,
/// checksums, and traffic counts shared bit-exactly by the sequential
/// and sharded engines (total event counts excluded — the sharded
/// engine seeds one `Start` per shard, a bookkeeping difference).
pub fn md_fingerprint(md: &MdExchangeOutcome) -> String {
    let mut fp = Fingerprint::new();
    fp.update(&md.makespan);
    fp.update(&md.checksums);
    fp.update(&md.stats.packets_sent);
    fp.update(&md.stats.packets_delivered);
    fp.update(&md.stats.link_traversals);
    fp.update(&md.stats.sent_by_node);
    fp.update(&md.stats.delivered_by_node);
    fp.hex()
}
