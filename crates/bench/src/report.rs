//! Small table-printing helpers shared by the figure binaries.

/// Print a header with a rule.
pub fn section(title: &str) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
}

/// Format a microsecond value to two decimals.
pub fn us(v: f64) -> String {
    format!("{v:.2}")
}

/// Format nanoseconds to the nearest integer.
pub fn ns(v: f64) -> String {
    format!("{v:.0}")
}

/// Relative difference as a percentage string.
pub fn rel(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return "-".into();
    }
    format!("{:+.0}%", (measured - paper) / paper * 100.0)
}
