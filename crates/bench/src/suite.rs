//! The canonical perf-regression suite: one function that measures the
//! simulator's headline numbers — one-way latency, the Figure 6 stage
//! means, all-reduce latency, and (in full mode) the DHFR step — into a
//! schema-versioned [`BenchReport`] that `bench_regress` diffs against
//! the committed baseline.
//!
//! All values are *simulated* durations, so they are bit-deterministic:
//! any drift is a model change, not host noise. Lower is better for
//! every metric.

use anton_collectives::{random_inputs, run_all_reduce, Algorithm};
use anton_obs::{fold_lifecycles, BenchReport, BreakdownSummary, Stage};
use anton_topo::{Coord, TorusDims};

use crate::microbench::{one_way_latency, one_way_latency_recorded};

/// Stable metric key for a Figure 6 stage.
fn stage_key(stage: Stage) -> &'static str {
    match stage {
        Stage::SenderOverhead => "fig6_sender_overhead_ns",
        Stage::Injection => "fig6_injection_ns",
        Stage::RouterWire => "fig6_router_wire_ns",
        Stage::Delivery => "fig6_delivery_ns",
        Stage::Sync => "fig6_sync_ns",
    }
}

/// Run the canonical suite. The quick subset (a few seconds) covers the
/// communication microbenchmarks; `full` adds the DHFR MD step (about a
/// minute of host time), which the committed baseline includes.
pub fn run_suite(full: bool) -> BenchReport {
    let mut report = BenchReport::new("anton-sim canonical suite");
    let dims = TorusDims::anton_512();

    // One-way latency: the paper's 162 ns single hop, the 822 ns
    // worst-case diameter path, and a payload-carrying hop.
    let hop = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 4);
    report.set("one_way_1hop_ns", hop.as_ns_f64());
    let diam = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(4, 4, 4), 0, false, 4);
    report.set("one_way_diameter_ns", diam.as_ns_f64());
    let full_payload = one_way_latency(
        dims,
        Coord::new(0, 0, 0),
        Coord::new(1, 0, 0),
        256,
        false,
        4,
    );
    report.set("one_way_1hop_256b_ns", full_payload.as_ns_f64());

    // Figure 6 stage means from recorded packet lifecycles.
    let (_, rec) =
        one_way_latency_recorded(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 8);
    {
        let rec = rec.borrow();
        let (lifecycles, _) = fold_lifecycles(rec.events());
        let summary = BreakdownSummary::from_lifecycles(&lifecycles);
        for stage in Stage::ALL {
            report.set(stage_key(stage), summary.mean_ns(stage));
        }
        report.set("fig6_end_to_end_ns", summary.mean_end_to_end_ns());
    }

    // All-reduce: the machine-wide dimension-ordered collective (the
    // paper's ~2 us global sum) and a small butterfly.
    let inputs = random_inputs(dims, 1, 7);
    let out = run_all_reduce(
        dims,
        Algorithm::DimensionOrdered,
        Default::default(),
        &inputs,
    );
    report.set("allreduce_512_dimord_us", out.latency.as_us_f64());
    let small_dims = TorusDims::new(2, 2, 2);
    let small_inputs = random_inputs(small_dims, 4, 7);
    let small = run_all_reduce(
        small_dims,
        Algorithm::Butterfly,
        Default::default(),
        &small_inputs,
    );
    report.set("allreduce_222_butterfly_ns", small.latency.as_ns_f64());

    if full {
        dhfr_step(&mut report);
    }
    report
}

/// The DHFR-like MD step (Table 3's workload): simulated total and
/// critical-path communication time, averaged over one range-limited
/// and one long-range step.
fn dhfr_step(report: &mut BenchReport) {
    use anton_core::{AntonConfig, AntonMdEngine};
    use anton_md::{MdParams, SystemBuilder};

    let sys = SystemBuilder::dhfr_like().build();
    let mut md = MdParams::new(9.5, [32; 3]);
    md.dt = 1.0;
    let config = AntonConfig::new(md);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::anton_512());
    let mut totals = Vec::new();
    let mut comms = Vec::new();
    // Two steps cover both step flavors (range-limited + long-range).
    for _ in 0..2 {
        let t = eng.step();
        totals.push(t.total.as_us_f64());
        comms.push(t.communication().as_us_f64());
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    report.set("dhfr_step_us", mean(&totals));
    report.set("dhfr_comm_us", mean(&comms));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_hits_the_paper_anchors() {
        let report = run_suite(false);
        assert_eq!(report.get("one_way_1hop_ns"), Some(162.0));
        assert_eq!(report.get("one_way_diameter_ns"), Some(822.0));
        // Serialized form round-trips and carries the schema version.
        let parsed = BenchReport::parse(&report.to_json()).expect("round-trips");
        assert_eq!(parsed.get("one_way_1hop_ns"), Some(162.0));
        // A report diffed against itself has no regressions.
        let diff = report.diff(&parsed, 10.0).expect("comparable");
        assert!(!diff.has_regressions(), "{}", diff.table());
    }
}
