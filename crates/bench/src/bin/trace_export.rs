//! Export flight-recorder traces of two small workloads — a single-hop
//! ping-pong and a 2x2x2 dimension-ordered all-reduce — as a Chrome
//! `trace_event` JSON (load it at <https://ui.perfetto.dev>), a per-packet
//! lifecycle CSV, and a metrics-registry JSON snapshot. Everything lands
//! under `target/obs/`; the JSON outputs are validated before writing.
//!
//! Deterministic: the same build writes byte-identical files on every
//! run, which the CI smoke step and the determinism test rely on.

use anton_bench::one_way_latency_recorded;
use anton_collectives::{random_inputs, run_all_reduce_recorded, Algorithm};
use anton_obs::{
    fold_lifecycles, validate_json, BreakdownSummary, ChromeTraceBuilder, FlightRecorder,
    MetricsRegistry,
};
use anton_topo::{Coord, TorusDims};

fn main() {
    let mut reg = MetricsRegistry::new();
    let mut trace = ChromeTraceBuilder::new();

    // ---- workload 1: the paper's 162 ns single-hop ping-pong ----
    let dims = TorusDims::anton_512();
    let (lat, rec) =
        one_way_latency_recorded(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 4);
    let rec = rec.borrow();
    let (lives, _) = fold_lifecycles(rec.events());
    trace.name_process(1, "ping-pong (512 nodes, 1 X hop)");
    for lc in &lives {
        trace.add_lifecycle(1, lc);
        reg.observe("pingpong.end_to_end", lc.end_to_end());
    }
    reg.set_counter("pingpong.packets", lives.len() as u64);
    reg.set_gauge("pingpong.one_way_ns", lat.as_ns_f64());
    let pp_summary = BreakdownSummary::from_lifecycles(&lives);
    println!(
        "ping-pong: {} lifecycles, {:.0} ns one-way",
        lives.len(),
        lat.as_ns_f64()
    );
    print!("{}", pp_summary.table());

    // ---- workload 2: a small all-reduce with counter synchronization ----
    let ar_dims = TorusDims::new(2, 2, 2);
    let ar_rec = FlightRecorder::new().into_shared();
    let out = run_all_reduce_recorded(
        ar_dims,
        Algorithm::Butterfly,
        Default::default(),
        &random_inputs(ar_dims, 4, 7),
        Box::new(ar_rec.clone()),
    );
    let ar_rec = ar_rec.borrow();
    let (ar_lives, ar_fold) = fold_lifecycles(ar_rec.events());
    trace.name_process(2, "all-reduce (2x2x2, butterfly)");
    for lc in &ar_lives {
        trace.add_lifecycle(2, lc);
        reg.observe("allreduce.end_to_end", lc.end_to_end());
    }
    reg.set_counter("allreduce.packets_sent", out.packets_sent);
    reg.set_counter("allreduce.link_traversals", out.link_traversals);
    reg.set_gauge("allreduce.latency_us", out.latency.as_us_f64());
    println!(
        "all-reduce: {} lifecycles ({} multicast skipped), {:.2} us",
        ar_lives.len(),
        ar_fold.multicast,
        out.latency.as_us_f64()
    );

    // ---- export ----
    let n_events = trace.len();
    let trace_json = trace.finish();
    validate_json(&trace_json).expect("chrome trace is well-formed JSON");
    let metrics_json = reg.snapshot().to_json();
    validate_json(&metrics_json).expect("metrics snapshot is well-formed JSON");
    let csv = lifecycles_header_merge(&lives, &ar_lives);

    std::fs::create_dir_all("target/obs").expect("create target/obs");
    std::fs::write("target/obs/trace.json", &trace_json).expect("write trace.json");
    std::fs::write("target/obs/summary.csv", &csv).expect("write summary.csv");
    std::fs::write("target/obs/metrics.json", &metrics_json).expect("write metrics.json");
    println!(
        "wrote target/obs/trace.json ({} events), summary.csv ({} rows), metrics.json ({} keys)",
        n_events,
        lives.len() + ar_lives.len(),
        reg.snapshot().values().len()
    );
    println!("open trace.json at https://ui.perfetto.dev (Trace Viewer)");
}

/// One CSV with both workloads' lifecycles (same schema, concatenated
/// without repeating the header).
fn lifecycles_header_merge(
    a: &[anton_obs::PacketLifecycle],
    b: &[anton_obs::PacketLifecycle],
) -> String {
    let mut csv = anton_obs::lifecycles_csv(a);
    let tail = anton_obs::lifecycles_csv(b);
    if let Some(idx) = tail.find('\n') {
        csv.push_str(&tail[idx + 1..]);
    }
    csv
}
