//! Ablation (§III.B vs §III.C): counted remote writes vs. the two
//! alternatives the paper discusses for receiver synchronization —
//! (a) pushing everything through the hardware message FIFO (software
//! pops each message serially), and (b) plain remote writes plus a
//! separate sender-side "data ready" notification round.
//!
//! The scenario is the paper's canonical gather: N sources each deliver
//! one packet to a target, which must learn when all data has arrived.

use anton_bench::report::section;
use anton_des::{SimDuration, SimTime};
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, NodeProgram, Packet, Payload, ProgEvent,
    Simulation,
};
use anton_topo::{Coord, NodeId, TorusDims};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Clone, Copy, PartialEq)]
enum Mechanism {
    CountedWrites,
    Fifo,
    WritePlusNotify,
}

struct Gather {
    mechanism: Mechanism,
    target: NodeId,
    senders: Vec<NodeId>,
    received: u32,
    done: Rc<RefCell<Option<SimTime>>>,
}

fn slice0(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Slice(0))
}

impl NodeProgram for Gather {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                let n = self.senders.len() as u64;
                if node == self.target {
                    match self.mechanism {
                        Mechanism::CountedWrites => {
                            ctx.watch_counter(slice0(node), CounterId(0), n)
                        }
                        Mechanism::Fifo => {} // FIFO pops arrive as events
                        Mechanism::WritePlusNotify => {
                            // Data writes are unlabeled; a separate
                            // notification packet per sender bumps the
                            // counter.
                            ctx.watch_counter(slice0(node), CounterId(1), n)
                        }
                    }
                }
                if let Some(i) = self.senders.iter().position(|&s| s == node) {
                    let payload = Payload::F64s(vec![i as f64; 3]);
                    match self.mechanism {
                        Mechanism::CountedWrites => {
                            let pkt =
                                Packet::write(slice0(node), slice0(self.target), i as u64, payload)
                                    .with_counter(CounterId(0));
                            ctx.send(pkt);
                        }
                        Mechanism::Fifo => {
                            let pkt = Packet::fifo(slice0(node), slice0(self.target), payload);
                            ctx.send(pkt);
                        }
                        Mechanism::WritePlusNotify => {
                            let pkt =
                                Packet::write(slice0(node), slice0(self.target), i as u64, payload);
                            ctx.send(pkt);
                            // The in-order flag keeps the notification
                            // behind the data on the same route.
                            let notify = Packet::write(
                                slice0(node),
                                slice0(self.target),
                                0x9000 + i as u64,
                                Payload::Empty,
                            )
                            .with_counter(CounterId(1))
                            .with_in_order();
                            ctx.send(notify);
                        }
                    }
                }
            }
            ProgEvent::CounterReached { .. } => {
                *self.done.borrow_mut() = Some(ctx.now());
            }
            ProgEvent::FifoMessage { .. } => {
                self.received += 1;
                if self.received == self.senders.len() as u32 {
                    *self.done.borrow_mut() = Some(ctx.now());
                }
            }
            _ => unreachable!(),
        }
    }
}

fn run(mechanism: Mechanism, n_senders: u32) -> (SimDuration, u64) {
    let dims = TorusDims::anton_512();
    let target = Coord::new(4, 4, 4).node_id(dims);
    let senders: Vec<NodeId> = (0..n_senders)
        .map(|i| NodeId((i * 7919) % dims.node_count()))
        .filter(|&n| n != target)
        .collect();
    let done = Rc::new(RefCell::new(None));
    let (d2, s2) = (done.clone(), senders.clone());
    let mut sim = Simulation::new(Fabric::new(dims), move |_| Gather {
        mechanism,
        target,
        senders: s2.clone(),
        received: 0,
        done: d2.clone(),
    });
    sim.run();
    let t = done.borrow().expect("gather completes");
    (t - SimTime::ZERO, sim.world.fabric.stats.packets_sent)
}

fn main() {
    section("Receiver-synchronization ablation: 48-source gather to one node");
    let (counted, counted_pkts) = run(Mechanism::CountedWrites, 48);
    let (fifo, fifo_pkts) = run(Mechanism::Fifo, 48);
    let (notify, notify_pkts) = run(Mechanism::WritePlusNotify, 48);
    println!(
        "counted remote writes : {:>8.2} us, {:>3} packets  (Anton's mechanism)",
        counted.as_us_f64(),
        counted_pkts
    );
    println!(
        "message FIFO + pops   : {:>8.2} us, {:>3} packets  (serial software drain)",
        fifo.as_us_f64(),
        fifo_pkts
    );
    println!(
        "write + notify round  : {:>8.2} us, {:>3} packets  (2x packet count)",
        notify.as_us_f64(),
        notify_pkts
    );
    println!(
        "\ncounted remote writes embed synchronization in the data: no extra\n\
         packets and no per-message software processing on the receiver."
    );
    assert!(counted <= fifo);
    assert!(counted <= notify);
    assert!(notify_pkts >= 2 * counted_pkts);
}
