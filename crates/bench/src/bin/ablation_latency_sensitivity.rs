//! The paper's central counterfactual, run on our own engine: how much
//! of Anton's MD performance comes from its communication latency?
//! Scale every fixed latency component of the network (leaving
//! bandwidths and arithmetic untouched) and watch the time step inflate
//! — "without a corresponding reduction in delays caused by latency,
//! Anton would deliver only a modest improvement in performance" (§I).

use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_net::Timing;
use anton_topo::TorusDims;

fn scaled_timing(factor: f64) -> Timing {
    let base = Timing::default();
    Timing {
        send_setup_ns: base.send_setup_ns * factor,
        send_issue_ns: base.send_issue_ns * factor,
        send_ring_ns: base.send_ring_ns * factor,
        adapter_ns: base.adapter_ns * factor,
        recv_ring_ns: base.recv_ring_ns * factor,
        deliver_poll_ns: base.deliver_poll_ns * factor,
        transit_ring_x_ns: base.transit_ring_x_ns * factor,
        transit_ring_yz_ns: base.transit_ring_yz_ns * factor,
        transit_ring_turn_ns: base.transit_ring_turn_ns * factor,
        local_ring_ns: base.local_ring_ns * factor,
        accum_poll_extra_ns: base.accum_poll_extra_ns * factor,
        poll_busy_ns: base.poll_busy_ns * factor,
        fifo_pop_ns: base.fifo_pop_ns * factor,
        ..base
    }
}

fn main() {
    println!("Latency sensitivity: DHFR on 512 nodes, fixed latencies scaled");
    println!(
        "{:>8} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "scale", "1-hop (ns)", "avg (us)", "comm (us)", "compute", "slowdown"
    );
    let mut base_avg = None;
    let mut last = 0.0;
    for factor in [1.0f64, 2.0, 5.0, 10.0] {
        let sys = SystemBuilder::dhfr_like().build();
        let mut md = MdParams::new(9.5, [32; 3]);
        md.dt = 1.0;
        let mut config = AntonConfig::new(md);
        config.timing = scaled_timing(factor);
        let one_hop = config.timing.analytic_latency([1, 0, 0], 0).as_ns_f64();
        let mut eng = AntonMdEngine::new(sys, config, TorusDims::anton_512());
        let t1 = eng.step();
        let t2 = eng.step();
        let avg = 0.5 * (t1.total + t2.total).as_us_f64();
        let comm = 0.5 * (t1.communication() + t2.communication()).as_us_f64();
        let slowdown = base_avg.map(|b: f64| avg / b).unwrap_or(1.0);
        println!(
            "{:>7}x {:>14.0} {:>12.2} {:>12.2} {:>12.2} {:>9.2}x",
            factor,
            one_hop,
            avg,
            comm,
            avg - comm,
            slowdown
        );
        if base_avg.is_none() {
            base_avg = Some(avg);
        }
        assert!(avg > last, "latency scaling must slow the step");
        last = avg;
    }
    println!(
        "\narithmetic is untouched: the entire slowdown is latency — the paper's\n\
         point that compute acceleration alone would have delivered 'only a\n\
         modest improvement'. At 10x (~1.6 us one-hop, commodity territory)\n\
         the step runs several times slower."
    );
}
