//! Strong scaling of the DHFR benchmark across machine sizes — the
//! paper's motivating observation ("the maximum simulation speed
//! achievable at high parallelism depends more on inter-node
//! communication latency than on single-node compute throughput", §I):
//! as nodes quadruple, arithmetic per node shrinks proportionally but
//! the communication floor does not, so the speedup rolls off.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;

fn main() {
    println!("Strong scaling: 23,558 atoms, range-limited + long-range step pair");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "nodes", "avg (us)", "comm (us)", "compute", "comm frac", "speedup"
    );
    let mut base: Option<f64> = None;
    let mut prev: Option<f64> = None;
    for dims in [
        TorusDims::new(4, 4, 4),
        TorusDims::new(8, 8, 4),
        TorusDims::new(8, 8, 8),
    ] {
        let sys = SystemBuilder::dhfr_like().build();
        let mut md = MdParams::new(9.5, [32; 3]);
        md.dt = 1.0;
        let config = AntonConfig::new(md);
        let mut eng = AntonMdEngine::new(sys, config, dims);
        let t1 = eng.step();
        let t2 = eng.step();
        let avg = 0.5 * (t1.total + t2.total).as_us_f64();
        let comm = 0.5 * (t1.communication() + t2.communication()).as_us_f64();
        let compute = avg - comm;
        let n = dims.node_count();
        let speedup = base.map(|b| b / avg).unwrap_or(1.0);
        println!(
            "{:>7} {:>12.2} {:>12.2} {:>12.2} {:>11.0}% {:>9.2}x",
            n,
            avg,
            comm,
            compute,
            comm / avg * 100.0,
            speedup
        );
        if base.is_none() {
            base = Some(avg);
        }
        if let Some(p) = prev {
            assert!(avg < p, "more nodes must not slow the step down");
        }
        prev = Some(avg);
    }
    println!(
        "\nthe communication fraction grows with node count — Anton's 162 ns\n\
         fabric is what keeps the 512-node point profitable at ~46 atoms/node;\n\
         on the cluster model the same scaling stalls two orders of magnitude\n\
         earlier (Table 3)."
    );
}
