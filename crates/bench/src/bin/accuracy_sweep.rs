//! Physics-substrate validation sweep: the Gaussian-split-Ewald
//! electrostatics (\[39\], the method behind Anton's long-range pipeline)
//! must produce a total energy independent of how the work is split
//! between the real-space (HTIS) and reciprocal-space (FFT) halves, and
//! must converge with grid resolution. The absolute anchor is the NaCl
//! Madelung constant.

use anton_bench::report::section;
use anton_md::longrange::{long_range_forces, LongRangeParams};
use anton_md::pair::{range_limited_forces_naive, PairParams};
use anton_md::units::COULOMB;
use anton_md::{Atom, ChemicalSystem, PeriodicBox, Vec3};

fn nacl_lattice(n: usize, a: f64) -> ChemicalSystem {
    let mut atoms = Vec::new();
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                atoms.push(Atom {
                    pos: Vec3::new(x as f64 * a, y as f64 * a, z as f64 * a),
                    vel: Vec3::ZERO,
                    mass: 1.0,
                    charge: if (x + y + z) % 2 == 0 { 1.0 } else { -1.0 },
                    lj_sigma: 1.0,
                    lj_epsilon: 0.0,
                });
            }
        }
    }
    let mut sys = ChemicalSystem {
        pbox: PeriodicBox::cubic(a * n as f64),
        atoms,
        bonds: Vec::new(),
        angles: Vec::new(),
        dihedrals: Vec::new(),
        exclusions: Vec::new(),
    };
    sys.rebuild_exclusions();
    sys
}

fn total_electrostatic(sys: &ChemicalSystem, sigma: f64, grid: usize, cutoff: f64) -> f64 {
    let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
    let mut f = vec![Vec3::ZERO; positions.len()];
    let real = range_limited_forces_naive(
        sys,
        &positions,
        PairParams {
            cutoff,
            ewald_sigma: Some(sigma),
        },
        &mut f,
    );
    let lr = long_range_forces(
        sys,
        &positions,
        &LongRangeParams::new([grid; 3], sigma),
        &mut f,
    );
    real.coulomb_real + lr.energy
}

fn main() {
    let a = 2.8; // lattice constant, Å
    let n = 8;
    let sys = nacl_lattice(n, a);
    let madelung = 1.747_564_6;
    let exact = -madelung * COULOMB / (2.0 * a);

    section("Splitting-parameter independence (64-point grid, NaCl 8^3)");
    println!(
        "{:>8} {:>10} {:>16} {:>16} {:>10}",
        "sigma", "cutoff", "E/ion (kcal/mol)", "exact", "error"
    );
    for &sigma in &[1.8f64, 2.0, 2.2, 2.5] {
        let cutoff = (4.0 * sigma).min(10.9);
        let e = total_electrostatic(&sys, sigma, 64, cutoff) / sys.atoms.len() as f64;
        let rel = (e - exact).abs() / exact.abs();
        println!(
            "{:>8.1} {:>10.1} {:>16.4} {:>16.4} {:>9.2}%",
            sigma,
            cutoff,
            e,
            exact,
            rel * 100.0
        );
        assert!(rel < 0.02, "sigma={sigma}: {rel}");
    }

    section("Grid convergence (sigma = 2.2, cutoff = 8.8)");
    println!("{:>8} {:>16} {:>10}", "grid", "E/ion", "error");
    let mut last_err = f64::INFINITY;
    for &grid in &[32usize, 64, 128] {
        let e = total_electrostatic(&sys, 2.2, grid, 8.8) / sys.atoms.len() as f64;
        let rel = (e - exact).abs() / exact.abs();
        println!("{:>8} {:>16.4} {:>9.3}%", grid, e, rel * 100.0);
        if grid >= 64 {
            assert!(rel <= last_err * 1.5, "error must not grow with resolution");
        }
        last_err = rel;
    }
    println!(
        "\nanchor: the Madelung constant of rock salt, reproduced by the same\n\
         spread→FFT→kernel→interpolate pipeline the simulated HTIS and\n\
         flexible subsystems execute packet by packet."
    );
}
