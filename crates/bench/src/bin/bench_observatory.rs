//! The always-on perf observatory CLI: collect the attribution-aware
//! report, triage it against a named baseline from the committed
//! trajectory index, and render the dashboard.
//!
//! ```text
//! bench_observatory emit  [--quick] [--out PATH]
//! bench_observatory check [--quick] [--baseline NAME] [--index PATH]
//!                         [--threshold PCT] [--share-threshold PT]
//!                         [--bench-out PATH] [--dashboard PATH]
//!                         [--scale KIND FACTOR] [--slow-link FACTOR]
//! bench_observatory render [--index PATH] [--out PATH]
//! ```
//!
//! `check` runs every workload, diffs component-by-component against
//! the baseline resolved from `BENCH_trajectory.json` (default `pr3`),
//! prints the triage narrative, archives the run under
//! `target/obs/trajectory/`, writes the dashboard HTML, and exits
//! non-zero on any gated regression. `--bench-out` additionally writes
//! the deterministic metric report (the committed `BENCH_pr7.json`
//! quick profile). The `--scale`/`--slow-link` flags re-time the
//! causal workload under a what-if perturbation, so a triage can be
//! rehearsed on demand.

use anton_bench::observatory::{collect, ObservatoryOptions};
use anton_obs::{
    render_dashboard, validate_html, BenchReport, DashboardInput, DiffConfig, EdgeKind,
    ObservatoryReport, Perturbation, TrajectoryIndex,
};
use anton_topo::{LinkDir, NodeId};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_observatory emit  [--quick] [--out PATH]\n\
       \x20      bench_observatory check [--quick] [--baseline NAME] [--index PATH]\n\
       \x20                              [--threshold PCT] [--share-threshold PT]\n\
       \x20                              [--bench-out PATH] [--dashboard PATH]\n\
       \x20                              [--scale KIND FACTOR] [--slow-link FACTOR]\n\
       \x20      bench_observatory render [--index PATH] [--out PATH]"
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    quick: bool,
    baseline: String,
    index: String,
    threshold: f64,
    share_threshold: f64,
    out: Option<String>,
    bench_out: Option<String>,
    dashboard: String,
    perturb: Option<Perturbation>,
}

fn edge_kind(name: &str) -> Option<EdgeKind> {
    EdgeKind::ALL.into_iter().find(|k| k.label() == name)
}

fn parse_args() -> Result<Args, ExitCode> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().cloned() else {
        return Err(usage());
    };
    let mut args = Args {
        command,
        quick: false,
        baseline: "pr3".to_owned(),
        index: "BENCH_trajectory.json".to_owned(),
        threshold: 10.0,
        share_threshold: 2.0,
        out: None,
        bench_out: None,
        dashboard: "target/obs/dashboard.html".to_owned(),
        perturb: None,
    };
    let mut it = argv.iter().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("bench_observatory: {flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--quick" => args.quick = true,
            "--baseline" => args.baseline = next("--baseline")?,
            "--index" => args.index = next("--index")?,
            "--threshold" => {
                args.threshold = next("--threshold")?.parse().map_err(|_| usage())?;
            }
            "--share-threshold" => {
                args.share_threshold = next("--share-threshold")?.parse().map_err(|_| usage())?;
            }
            "--out" => args.out = Some(next("--out")?),
            "--bench-out" => args.bench_out = Some(next("--bench-out")?),
            "--dashboard" => args.dashboard = next("--dashboard")?,
            "--scale" => {
                let kind = next("--scale")?;
                let factor: f64 = next("--scale")?.parse().map_err(|_| usage())?;
                let Some(kind) = edge_kind(&kind) else {
                    eprintln!("bench_observatory: unknown edge kind {kind:?}");
                    return Err(usage());
                };
                let p = args.perturb.take().unwrap_or_default();
                args.perturb = Some(p.scale(kind, factor));
            }
            "--slow-link" => {
                let factor: f64 = next("--slow-link")?.parse().map_err(|_| usage())?;
                let p = args.perturb.take().unwrap_or_default();
                args.perturb = Some(p.slow_link(NodeId(0), LinkDir::from_index(0), factor));
            }
            other => {
                eprintln!("bench_observatory: unknown flag {other:?}");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

fn write_file(path: &str, contents: &str) -> Result<(), ExitCode> {
    if let Some(dir) = Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(path, contents).map_err(|e| {
        eprintln!("bench_observatory: {path}: {e}");
        ExitCode::FAILURE
    })
}

/// Archive-safe file stem for a report label.
fn slug(label: &str) -> String {
    label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn render_to(
    index: &TrajectoryIndex,
    current: Option<&ObservatoryReport>,
    diff: Option<&anton_obs::ObservatoryDiff>,
    path: &str,
) -> Result<(), ExitCode> {
    let mut trajectory = index.load_reports(Path::new(".")).map_err(|e| {
        eprintln!("bench_observatory: {e}");
        ExitCode::FAILURE
    })?;
    if let Some(cur) = current {
        trajectory.push(("current".to_owned(), cur.metrics.clone()));
    }
    // Spec-hash/fingerprint provenance columns for every trajectory
    // entry that carries them (PRs predating the run ledger render an
    // em-dash).
    let provenance: Vec<(String, String, String)> = index
        .entries
        .iter()
        .filter_map(|e| match (&e.spec_hash, &e.fingerprint) {
            (None, None) => None,
            (h, f) => Some((
                e.name.clone(),
                h.clone().unwrap_or_default(),
                f.clone().unwrap_or_default(),
            )),
        })
        .collect();
    let html = render_dashboard(&DashboardInput {
        title: "anton perf observatory",
        trajectory: &trajectory,
        current,
        diff,
        provenance: &provenance,
    });
    validate_html(&html).expect("rendered dashboard is well-formed");
    write_file(path, &html)?;
    println!("bench_observatory: wrote {path} ({} bytes)", html.len());
    Ok(())
}

fn run() -> Result<ExitCode, ExitCode> {
    let args = parse_args()?;
    let opts = ObservatoryOptions {
        quick: args.quick,
        label: "anton observatory profile".to_owned(),
    };

    match args.command.as_str() {
        "emit" => {
            let obs = collect(&opts, args.perturb.as_ref());
            let json = obs.to_json();
            match &args.out {
                Some(path) => {
                    write_file(path, &json)?;
                    println!("bench_observatory: wrote {path}");
                }
                None => print!("{json}"),
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let index = TrajectoryIndex::load(Path::new(&args.index)).map_err(|e| {
                eprintln!("bench_observatory: {e}");
                ExitCode::FAILURE
            })?;
            let Some(entry) = index.resolve(&args.baseline) else {
                eprintln!(
                    "bench_observatory: baseline {:?} not in {} (have: {})",
                    args.baseline,
                    args.index,
                    index.names().join(", ")
                );
                return Err(ExitCode::FAILURE);
            };
            let text = std::fs::read_to_string(&entry.path).map_err(|e| {
                eprintln!(
                    "bench_observatory: {}: {e} (baseline '{}' resolved through {}; \
                     other names: {})",
                    entry.path,
                    args.baseline,
                    args.index,
                    index.names().join(", ")
                );
                ExitCode::FAILURE
            })?;
            let baseline_metrics = BenchReport::parse(&text).map_err(|e| {
                eprintln!("bench_observatory: {}: {e}", entry.path);
                ExitCode::FAILURE
            })?;
            let mut baseline = ObservatoryReport::from_metrics(baseline_metrics);
            // Triage names the baseline as the trajectory names it.
            baseline.label = args.baseline.clone();

            let obs = collect(&opts, args.perturb.as_ref());
            let config = DiffConfig {
                metric_threshold_pct: args.threshold,
                share_threshold_pt: args.share_threshold,
                value_threshold_pct: args.threshold,
            };
            let diff = obs.diff(&baseline, config).map_err(|e| {
                eprintln!("bench_observatory: {e}");
                ExitCode::FAILURE
            })?;
            print!("{}", diff.triage());

            let archive = format!("target/obs/trajectory/{}.json", slug(&obs.label));
            write_file(&archive, &obs.to_json())?;
            println!("bench_observatory: archived {archive}");
            if let Some(path) = &args.bench_out {
                write_file(path, &obs.metrics.to_json())?;
                println!("bench_observatory: wrote {path}");
            }
            render_to(&index, Some(&obs), Some(&diff), &args.dashboard)?;

            if diff.has_regressions() {
                eprintln!(
                    "bench_observatory: {} gated regression(s) vs '{}'",
                    diff.regression_count(),
                    args.baseline
                );
                Ok(ExitCode::FAILURE)
            } else {
                println!("bench_observatory: clean vs '{}'", args.baseline);
                Ok(ExitCode::SUCCESS)
            }
        }
        "render" => {
            let index = TrajectoryIndex::load(Path::new(&args.index)).map_err(|e| {
                eprintln!("bench_observatory: {e}");
                ExitCode::FAILURE
            })?;
            let out = args.out.clone().unwrap_or_else(|| args.dashboard.clone());
            render_to(&index, None, None, &out)?;
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(code) => code,
    }
}
