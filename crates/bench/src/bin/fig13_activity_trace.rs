//! Figure 13: machine activity over two time steps (one range-limited,
//! one long-range) of the DHFR benchmark on 512 nodes — the software
//! analogue of the paper's logic-analyzer plot. Prints an ASCII timeline
//! (torus links by direction, Tensilica cores, geometry cores, HTIS
//! units) and writes the full interval CSV to
//! `target/fig13_activity.csv`.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_des::SimTime;
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;

fn main() {
    eprintln!("building and bootstrapping (this takes ~1 min)...");
    let sys = SystemBuilder::dhfr_like().build();
    let mut md = MdParams::new(9.5, [32; 3]);
    md.dt = 1.0; // flexible water needs ~1 fs (the paper's system used constraints)
    let config = AntonConfig::new(md);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::anton_512());

    println!("Figure 13: Anton activity for two time steps (DHFR, 512 nodes)");
    println!("legend: '#' busy, '.' stalled/waiting, ' ' idle; 120 columns per step\n");
    for label in ["range-limited step", "long-range step"] {
        eng.trace_next_step();
        let t = eng.step();
        let tracer = eng.last_trace.as_ref().expect("trace captured");
        println!(
            "--- {label}: {:.1} us total, {:.1} us communication ---",
            t.total.as_us_f64(),
            t.communication().as_us_f64()
        );
        print!(
            "{}",
            tracer.ascii_timeline(SimTime::ZERO, SimTime::ZERO + t.total, 120)
        );
        // Per-track utilization summary (the paper's observation: links
        // are busy much of the step; cores spend significant time
        // waiting for data). Tracks, names, and unit counts all come
        // from the tracer's own label table — nothing hardcoded here.
        let tracks: Vec<(anton_des::TrackId, String)> = tracer
            .tracks()
            .map(|(id, name)| (id, name.to_string()))
            .collect();
        for (track, name) in tracks {
            let util = tracer.utilization(track, SimTime::ZERO, SimTime::ZERO + t.total);
            println!("    {name:>10}: {:>6.1}% mean utilization", util * 100.0);
        }
        println!();
        if label == "long-range step" {
            let csv = tracer.to_csv();
            std::fs::create_dir_all("target").ok();
            std::fs::write("target/fig13_activity.csv", &csv).expect("write CSV");
            println!(
                "full interval data ({} intervals) -> target/fig13_activity.csv",
                tracer.intervals().len()
            );
        }
    }
}
