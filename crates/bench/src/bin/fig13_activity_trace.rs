//! Figure 13: machine activity over two time steps (one range-limited,
//! one long-range) of the DHFR benchmark on 512 nodes — the software
//! analogue of the paper's logic-analyzer plot. Prints an ASCII timeline
//! (torus links by direction, Tensilica cores, geometry cores, HTIS
//! units) and writes the full interval CSV to
//! `target/fig13_activity.csv`.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_des::SimTime;
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;

fn main() {
    eprintln!("building and bootstrapping (this takes ~1 min)...");
    let sys = SystemBuilder::dhfr_like().build();
    let mut md = MdParams::new(9.5, [32; 3]);
    md.dt = 1.0; // flexible water needs ~1 fs (the paper's system used constraints)
    let config = AntonConfig::new(md);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::anton_512());

    println!("Figure 13: Anton activity for two time steps (DHFR, 512 nodes)");
    println!("legend: '#' busy, '.' stalled/waiting, ' ' idle; 120 columns per step\n");
    for label in ["range-limited step", "long-range step"] {
        eng.trace_next_step();
        let t = eng.step();
        let tracer = eng.last_trace.as_ref().expect("trace captured");
        println!(
            "--- {label}: {:.1} us total, {:.1} us communication ---",
            t.total.as_us_f64(),
            t.communication().as_us_f64()
        );
        print!(
            "{}",
            tracer.ascii_timeline(SimTime::ZERO, SimTime::ZERO + t.total, 120)
        );
        // Per-track utilization summary (the paper's observation: links
        // are busy much of the step; cores spend significant time
        // waiting for data).
        for (track, name) in [
            (0u16, "X+ links"),
            (1, "X- links"),
            (2, "Y+ links"),
            (3, "Y- links"),
            (4, "Z+ links"),
            (5, "Z- links"),
            (6, "TS cores"),
            (7, "GC cores"),
            (8, "HTIS units"),
        ] {
            let busy = tracer.busy_time(
                anton_des::TrackId(track),
                SimTime::ZERO,
                SimTime::ZERO + t.total,
            );
            // Aggregated over 512 units (or 512×4 slices etc.); report
            // mean utilization per unit.
            let units = match track {
                0..=5 => 512.0,
                6 | 7 => 2048.0,
                _ => 512.0,
            };
            println!(
                "    {:>10}: {:>6.1}% mean utilization",
                name,
                busy.as_us_f64() / units / t.total.as_us_f64() * 100.0
            );
        }
        println!();
        if label == "long-range step" {
            let csv = tracer.to_csv();
            std::fs::create_dir_all("target").ok();
            std::fs::write("target/fig13_activity.csv", &csv).expect("write CSV");
            println!(
                "full interval data ({} intervals) -> target/fig13_activity.csv",
                tracer.intervals().len()
            );
        }
    }
}
