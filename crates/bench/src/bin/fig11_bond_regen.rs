//! Figure 11: evolution of time-step execution time over millions of MD
//! steps, with and without bond-program regeneration. The
//! multi-million-step horizon is reached with the Brownian diffusion
//! fast-forward (DESIGN.md substitution): between timing checkpoints,
//! molecules drift exactly as liquid-water self-diffusion predicts, the
//! static bond program goes stale, and its communication distances grow
//! — the Figure 11 mechanism.
//!
//! The regeneration arm reproduces the paper's pipeline: "Bond program
//! regeneration is performed in parallel with the MD simulation, so a
//! bond program is 120,000 time steps out of date when it is installed"
//! — each installed program is generated from positions 120 k steps
//! before the checkpoint.
//!
//! Because fast-forwarded molecules can land overlapping, velocities are
//! re-thermalized and stale forces cleared before each measured step;
//! this keeps the measured steps' *positions* (which determine the
//! communication pattern) at the diffused configuration. Set
//! `FIG11_QUICK=1` for a short smoke run.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_des::Rng;
use anton_md::diffusion::{fast_forward, PROTEIN_DIFFUSION, WATER_DIFFUSION};
use anton_md::{MdParams, SystemBuilder, Vec3};
use anton_topo::TorusDims;

/// The paper's trajectory step (2.5 fs, constrained waters) sets the
/// drift-per-step of the x axis.
const PAPER_DT_FS: f64 = 2.5;
const REGEN_LAG_STEPS: u64 = 120_000;

fn main() {
    let quick = std::env::var("FIG11_QUICK").is_ok();
    let total_steps: u64 = if quick { 1_500_000 } else { 8_000_000 };
    let checkpoint: u64 = if quick { 250_000 } else { 500_000 };

    println!("Figure 11: step time vs simulated time, 23,558 atoms on 8x8x8");
    println!(
        "{:>12} {:>16} {:>10} | {:>16} {:>10}",
        "steps (k)", "no-regen (us)", "hops", "regen (us)", "hops"
    );

    let mut results: Vec<Vec<(u64, f64, f64)>> = Vec::new();
    for regen in [false, true] {
        let sys = SystemBuilder::dhfr_like().build();
        let mut md = MdParams::new(9.5, [32; 3]);
        md.dt = 1.0;
        let mut config = AntonConfig::new(md);
        config.migration_interval = 2;
        config.regen_interval = None; // regeneration is driven manually
        let mut eng = AntonMdEngine::new(sys, config, TorusDims::anton_512());

        let (groups, diffusion) = molecule_groups(&eng);
        let mut rng = Rng::seed_from(777);
        let mut therm_rng = Rng::seed_from(991);
        let mut series = Vec::new();
        let mut simulated: u64 = 0;
        loop {
            // Measure a few real steps (a migration runs first).
            let mut times = Vec::new();
            for _ in 0..4 {
                {
                    let mut st = eng.state.borrow_mut();
                    st.sys.thermalize(300.0, &mut therm_rng);
                    let n = st.sys.atoms.len();
                    st.forces_prev = vec![Vec3::ZERO; n];
                }
                times.push(eng.step().total.as_us_f64());
            }
            let avg = times.iter().sum::<f64>() / times.len() as f64;
            let hops = eng.bond_staleness_hops();
            series.push((simulated / 1000, avg, hops));
            if simulated >= total_steps {
                break;
            }
            // Advance the trajectory horizon to the next checkpoint.
            if regen {
                advance(
                    &mut eng,
                    &groups,
                    &diffusion,
                    checkpoint - REGEN_LAG_STEPS,
                    &mut rng,
                );
                eng.state.borrow_mut().regenerate_bond_program();
                advance(&mut eng, &groups, &diffusion, REGEN_LAG_STEPS, &mut rng);
            } else {
                advance(&mut eng, &groups, &diffusion, checkpoint, &mut rng);
            }
            simulated += checkpoint;
        }
        results.push(series);
    }

    let (no_regen, with_regen) = (&results[0], &results[1]);
    for (a, b) in no_regen.iter().zip(with_regen) {
        println!(
            "{:>12} {:>16.2} {:>10.2} | {:>16.2} {:>10.2}",
            a.0, a.1, a.2, b.1, b.2
        );
    }

    let fresh = no_regen[0].1;
    let tail = |v: &[(u64, f64, f64)]| -> f64 {
        let k = v.len().min(3);
        v[v.len() - k..].iter().map(|r| r.1).sum::<f64>() / k as f64
    };
    let stale_late = tail(no_regen);
    let regen_late = tail(with_regen);
    println!(
        "\nfresh step {fresh:.2} us; late no-regen {stale_late:.2} us; late with-regen {regen_late:.2} us"
    );
    println!(
        "regeneration improvement at late times: {:.0}% (paper: 14% overall)",
        (stale_late - regen_late) / stale_late * 100.0
    );
    assert!(stale_late > fresh * 1.04, "no-regen must degrade");
    assert!(regen_late < stale_late, "regeneration must help");
}

fn advance(
    eng: &mut AntonMdEngine,
    groups: &[Vec<usize>],
    diffusion: &[f64],
    steps: u64,
    rng: &mut Rng,
) {
    let mut st = eng.state.borrow_mut();
    let mut positions: Vec<Vec3> = st.sys.atoms.iter().map(|a| a.pos).collect();
    let pbox = st.sys.pbox;
    fast_forward(
        &mut positions,
        groups,
        diffusion,
        &pbox,
        steps as f64 * PAPER_DT_FS,
        rng,
    );
    for (a, p) in st.sys.atoms.iter_mut().zip(&positions) {
        a.pos = *p;
    }
    st.step_count += steps;
}

/// Group atoms into rigid molecules (waters, chains) for the Brownian
/// fast-forward, with per-group diffusion constants.
fn molecule_groups(eng: &AntonMdEngine) -> (Vec<Vec<usize>>, Vec<f64>) {
    let st = eng.state.borrow();
    let n = st.sys.atoms.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut i = i;
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    for b in &st.sys.bonds {
        let (ri, rj) = (find(&mut parent, b.i), find(&mut parent, b.j));
        if ri != rj {
            parent[ri] = rj;
        }
    }
    let mut groups_map: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups_map.entry(r).or_default().push(i);
    }
    let mut groups: Vec<Vec<usize>> = groups_map.into_values().collect();
    groups.sort_by_key(|g| g[0]);
    let diffusion = groups
        .iter()
        .map(|g| {
            if g.len() > 3 {
                PROTEIN_DIFFUSION
            } else {
                WATER_DIFFUSION
            }
        })
        .collect();
    (groups, diffusion)
}
