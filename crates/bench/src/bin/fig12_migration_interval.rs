//! Figure 12: average time-step execution time of a 17,758-particle
//! system on the 512-node machine as the migration interval varies from
//! 1 to 8 (with home-box margins grown to cover the longer drift), plus
//! the §IV.B.5 migration-sync measurement (paper: 0.56 µs).

use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;

fn main() {
    println!("Figure 12: step time vs migration interval (17,758 particles, 512 nodes)");
    println!(
        "{:>9} {:>12} {:>14} {:>16} {:>14}",
        "interval", "margin (A)", "avg step (us)", "mig span (us)", "migrated"
    );
    let mut first = 0.0;
    let mut last = 0.0;
    for interval in 1..=8u32 {
        let sys = SystemBuilder::migration_benchmark().build();
        let mut md = MdParams::new(9.5, [32; 3]);
        md.dt = 1.0; // flexible water needs ~1 fs (the paper's system used constraints)
        let mut config = AntonConfig::new(md);
        config.migration_interval = interval;
        // Margin covers the expected drift over the interval plus slack.
        config.margin = 0.3 + 0.08 * interval as f64;
        let mut eng = AntonMdEngine::new(sys, config, TorusDims::anton_512());
        // Let the freshly generated lattice relax before measuring.
        for _ in 0..2 {
            eng.step();
        }

        // Run one full migration cycle plus one step (≥ 2 cycles for
        // small intervals) and average.
        let steps = (2 * interval).max(4);
        let mut total = 0.0;
        let mut mig_span = 0.0;
        let mut migrated = 0u64;
        for _ in 0..steps {
            let t = eng.step();
            total += t.total.as_us_f64();
            if t.migration {
                mig_span = t.migration_span.as_us_f64();
                migrated = eng.state.borrow().last_migrated;
            }
        }
        let avg = total / steps as f64;
        if interval == 1 {
            first = avg;
        }
        if interval == 8 {
            last = avg;
        }
        println!(
            "{:>9} {:>12.2} {:>14.2} {:>16.2} {:>14}",
            interval,
            0.3 + 0.08 * interval as f64,
            avg,
            mig_span,
            migrated
        );
    }
    println!(
        "\nimprovement from interval 1 -> 8: {:.0}% (paper: 19%)",
        (first - last) / first * 100.0
    );
    assert!(
        last < first,
        "longer intervals must amortize migration cost"
    );
}
