//! Profile the parallel DES runtime and attribute its speedup exactly.
//!
//! The PR-5 observability workload: runs the 8×8×8 MD neighbor-exchange
//! skeleton and a dimension-ordered all-reduce with `obs::runtime`
//! profiling enabled at 1 and 4 worker threads, then
//!
//! 1. asserts profiling is **invisible**: fingerprints of the simulated
//!    outcomes are bit-identical with profiling on vs off, and the
//!    deterministic profile fields (windows, per-shard events, traffic
//!    matrix) are identical at 1 vs 4 threads;
//! 2. asserts the **speedup attribution telescopes**: the five
//!    components (merge + barrier + imbalance + windowing + exec excess)
//!    sum to the measured `par_wall − seq/N` gap within 5% — the
//!    runtime-side mirror of the Figure 6 stage-sum invariant;
//! 3. asserts profiling overhead stays small (≤5% + absolute slack on
//!    the 1-thread reference run, min-of-2 trials to shed scheduler
//!    noise);
//! 4. exports the worker lanes to `target/obs/par_runtime_trace.json`
//!    (Perfetto-loadable) and the deterministic runtime summary to
//!    `BENCH_pr5.json` (byte-stable, committed and drift-gated in CI).
//!
//! Wall-clock numbers are printed but never written to the report: only
//! event-level metrics, which are thread-count-invariant, are committed.

use anton_collectives::{
    random_inputs, run_all_reduce_par, run_all_reduce_par_profiled, Algorithm,
};
use anton_core::{run_md_exchange_par, run_md_exchange_par_profiled, MdExchangeParams};
use anton_des::ParProfile;
use anton_obs::runtime::{profile_chrome_trace, RuntimeSummary, SpeedupAttribution};
use anton_obs::{validate_json, BenchReport, Fingerprint};
use anton_topo::TorusDims;
use std::time::Instant;

const MD_STEPS: u32 = 20;
const PAR_THREADS: usize = 4;

fn dims() -> TorusDims {
    TorusDims::new(8, 8, 8)
}

fn md_params() -> MdExchangeParams {
    MdExchangeParams {
        steps: MD_STEPS,
        ..Default::default()
    }
}

fn md_fingerprint(out: &anton_core::MdExchangeOutcome) -> String {
    let mut fp = Fingerprint::new();
    fp.update(&out.makespan);
    fp.update(&out.checksums);
    fp.update(&out.stats);
    fp.update(&out.events);
    fp.hex()
}

fn ar_fingerprint(out: &anton_collectives::AllReduceOutcome) -> String {
    let mut fp = Fingerprint::new();
    fp.update(&out.latency);
    fp.update(&out.results);
    fp.update(&out.packets_sent);
    fp.update(&out.link_traversals);
    fp.hex()
}

fn assert_deterministic_fields_equal(label: &str, a: &ParProfile, b: &ParProfile) {
    assert_eq!(a.windows, b.windows, "{label}: window count diverged");
    assert_eq!(a.events, b.events, "{label}: event count diverged");
    assert_eq!(
        a.shard_events, b.shard_events,
        "{label}: per-shard events diverged"
    );
    assert_eq!(a.traffic, b.traffic, "{label}: traffic matrix diverged");
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "par_profile: 8x8x8 MD exchange ({MD_STEPS} steps) + dim-ordered all-reduce, \
         1 vs {PAR_THREADS} threads ({cores} host cores)"
    );

    // --- Profiling must not change the simulation (fingerprints). -----
    let plain = run_md_exchange_par(dims(), md_params(), PAR_THREADS);
    let (seq_out, seq_prof) = run_md_exchange_par_profiled(dims(), md_params(), 1);
    let (par_out, par_prof) = run_md_exchange_par_profiled(dims(), md_params(), PAR_THREADS);
    let fp_plain = md_fingerprint(&plain);
    let fp_seq = md_fingerprint(&seq_out);
    let fp_par = md_fingerprint(&par_out);
    assert_eq!(fp_plain, fp_par, "profiling changed the simulated outcome");
    assert_eq!(fp_seq, fp_par, "thread count changed the simulated outcome");
    println!("par_profile: fingerprint {fp_par} identical (plain / profiled / 1 vs {PAR_THREADS} threads)");

    // --- Deterministic profile fields are thread-count-invariant. -----
    assert_deterministic_fields_equal("md", &seq_prof, &par_prof);

    // --- Speedup attribution telescopes to the measured gap. ----------
    let attr = SpeedupAttribution::from_profile(seq_prof.wall_ns, &par_prof);
    print!("{}", attr.table());
    let tolerance = 0.05 * attr.gap_ns.abs().max(attr.par_wall_ns * 0.01) + 1_000.0;
    assert!(
        attr.telescoping_error_ns() <= tolerance,
        "attribution does not telescope: error {} ns exceeds {} ns",
        attr.telescoping_error_ns(),
        tolerance
    );
    println!(
        "par_profile: attribution telescopes (error {:.1} ns <= {:.1} ns tolerance)",
        attr.telescoping_error_ns(),
        tolerance
    );

    // --- Profiling overhead on the 1-thread reference run. ------------
    let wall = |profiled: bool| {
        (0..2)
            .map(|_| {
                let t = Instant::now();
                if profiled {
                    let _ = run_md_exchange_par_profiled(dims(), md_params(), 1);
                } else {
                    let _ = run_md_exchange_par(dims(), md_params(), 1);
                }
                t.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let off = wall(false);
    let on = wall(true);
    let overhead_pct = 100.0 * (on - off) / off;
    println!("par_profile: profiling overhead {overhead_pct:+.1}% (off {off:.3}s, on {on:.3}s)");
    // 5% relative plus an absolute slack so sub-second runs on noisy CI
    // hosts don't flake on scheduler jitter.
    assert!(
        on <= off * 1.05 + 0.25,
        "profiling overhead too high: {on:.3}s vs {off:.3}s unprofiled"
    );

    // --- All-reduce workload: summary + fingerprint cross-check. ------
    let inputs = random_inputs(dims(), 4, 42);
    let ar_plain = run_all_reduce_par(
        dims(),
        Algorithm::DimensionOrdered,
        Default::default(),
        &inputs,
        PAR_THREADS,
    );
    let (ar_seq, ar_seq_prof) = run_all_reduce_par_profiled(
        dims(),
        Algorithm::DimensionOrdered,
        Default::default(),
        &inputs,
        1,
    );
    let (ar_par, ar_par_prof) = run_all_reduce_par_profiled(
        dims(),
        Algorithm::DimensionOrdered,
        Default::default(),
        &inputs,
        PAR_THREADS,
    );
    assert_eq!(
        ar_fingerprint(&ar_plain),
        ar_fingerprint(&ar_par),
        "profiling changed the all-reduce"
    );
    assert_eq!(
        ar_fingerprint(&ar_seq),
        ar_fingerprint(&ar_par),
        "thread count changed the all-reduce"
    );
    assert_deterministic_fields_equal("allreduce", &ar_seq_prof, &ar_par_prof);

    let md_summary = RuntimeSummary::from_profile(&par_prof);
    let ar_summary = RuntimeSummary::from_profile(&ar_par_prof);
    print!("md {}", md_summary.table());
    print!("allreduce {}", ar_summary.table());

    // --- Perfetto-loadable worker lanes. ------------------------------
    let trace = profile_chrome_trace(&par_prof);
    validate_json(&trace).expect("runtime trace is valid JSON");
    std::fs::create_dir_all("target/obs").expect("create target/obs");
    std::fs::write("target/obs/par_runtime_trace.json", &trace)
        .expect("write par_runtime_trace.json");
    println!(
        "par_profile: wrote target/obs/par_runtime_trace.json ({} bytes)",
        trace.len()
    );

    // --- Deterministic metrics only: byte-stable, committed, gated. ---
    let mut report = BenchReport::new("pr5 parallel-runtime observatory");
    md_summary.record_into(&mut report, "md");
    ar_summary.record_into(&mut report, "allreduce");
    report.set(
        "md_makespan_us",
        (par_out.makespan - anton_des::SimTime::ZERO).as_us_f64(),
    );
    report.set("allreduce_latency_us", ar_par.latency.as_us_f64());
    std::fs::write("BENCH_pr5.json", report.to_json()).expect("write BENCH_pr5.json");
    println!("par_profile: wrote BENCH_pr5.json");
}
