//! Table 2: global all-reduce times for Anton configurations from 64 to
//! 1024 nodes (0-byte barrier and 32-byte reduction), plus the §IV.B.4
//! comparisons: the InfiniBand cluster measurement and BlueGene/L's tree
//! network, and the dimension-ordered vs. butterfly ablation.

use anton_baseline::{BGL_TREE_ALLREDUCE_512_US, MEASURED_IB_ALLREDUCE_512_US, PAPER_TABLE2};
use anton_bench::report::{rel, section};
use anton_collectives::{random_inputs, run_all_reduce, Algorithm};
use anton_topo::TorusDims;

fn main() {
    section("Table 2: Anton global all-reduce times (us)");
    println!(
        "{:>6} {:>10} {:>12} {:>10} {:>12} {:>10}",
        "nodes", "0B sim", "0B paper", "32B sim", "32B paper", "32B diff"
    );
    let mut sim_512_32 = 0.0;
    for &(nodes, (nx, ny, nz), paper0, paper32) in PAPER_TABLE2 {
        let dims = TorusDims::new(nx, ny, nz);
        let barrier = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &vec![Vec::new(); dims.node_count() as usize],
        );
        let reduce = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &random_inputs(dims, 4, 42),
        );
        let (b, r) = (barrier.latency.as_us_f64(), reduce.latency.as_us_f64());
        if nodes == 512 {
            sim_512_32 = r;
        }
        println!(
            "{:>6} {:>10.2} {:>12.2} {:>10.2} {:>12.2} {:>10}",
            nodes,
            b,
            paper0,
            r,
            paper32,
            rel(r, paper32)
        );
    }

    section("SIV.B.4 comparisons (32-byte all-reduce, 512 nodes)");
    println!("Anton (simulated, dimension-ordered): {sim_512_32:.2} us");
    println!("DDR2 InfiniBand cluster (measured, published): {MEASURED_IB_ALLREDUCE_512_US} us");
    println!(
        "speedup: {:.0}x (paper reports 20x)",
        MEASURED_IB_ALLREDUCE_512_US / sim_512_32
    );
    println!("BlueGene/L tree network, 16 B (published): {BGL_TREE_ALLREDUCE_512_US} us");

    section("Algorithm ablation (512 nodes, 32 B)");
    let dims = TorusDims::anton_512();
    let inputs = random_inputs(dims, 4, 42);
    let d = run_all_reduce(
        dims,
        Algorithm::DimensionOrdered,
        Default::default(),
        &inputs,
    );
    let b = run_all_reduce(dims, Algorithm::Butterfly, Default::default(), &inputs);
    let dc = anton_collectives::dimension_ordered_cost(dims);
    let bc = anton_collectives::butterfly_cost(dims);
    println!(
        "dimension-ordered: {:.2} us ({} rounds, {} critical hops — paper: 3N/2 = 12)",
        d.latency.as_us_f64(),
        dc.rounds,
        dc.critical_hops
    );
    println!(
        "radix-2 butterfly: {:.2} us ({} rounds, {} critical hops — paper: 3(N-1) = 21)",
        b.latency.as_us_f64(),
        bc.rounds,
        bc.critical_hops
    );
    let ring = run_all_reduce(dims, Algorithm::Ring, Default::default(), &inputs);
    println!(
        "unidirectional ring: {:.2} us (2(P-1) = 1022 serialized hops — latency-bound)",
        ring.latency.as_us_f64()
    );
    assert!(d.latency < b.latency);
    assert!(b.latency < ring.latency);
    // The two algorithms sum in different orders; results agree to
    // floating-point round-off.
    for (x, y) in d.results[0].iter().zip(&b.results[0]) {
        assert!((x - y).abs() < 1e-9 * x.abs().max(1.0));
    }
}
