//! Figure 8(a) as an experiment: pairwise all-neighbor exchange, staged
//! (3 rounds, 6 messages, data forwarded and aggregated — the commodity
//! pattern) vs. direct fine-grained (1 round, 26 messages — Anton's
//! pattern), on the Anton fabric and on the InfiniBand model.

use anton_baseline::IbModel;
use anton_bench::report::section;
use anton_bench::{neighbor_exchange, ExchangeStyle};
use anton_topo::TorusDims;

fn main() {
    let dims = TorusDims::anton_512();
    let block = 1472u32; // ~46 atoms × 32 B

    let direct = neighbor_exchange(dims, ExchangeStyle::Direct, block);
    let staged = neighbor_exchange(dims, ExchangeStyle::Staged, block);

    section("Figure 8: all-neighbor exchange on Anton (per-node block = 1472 B)");
    println!(
        "{:>8} {:>16} {:>18}",
        "style", "completion (us)", "messages per node"
    );
    println!(
        "{:>8} {:>16.3} {:>18.1}",
        "direct",
        direct.completion.as_us_f64(),
        direct.messages_per_node
    );
    println!(
        "{:>8} {:>16.3} {:>18.1}",
        "staged",
        staged.completion.as_us_f64(),
        staged.messages_per_node
    );

    // The same exchange on the cluster model: both move the same total
    // volume (staging forwards aggregated slabs), so the difference is
    // per-message overhead (26 vs 6 messages) against stage serialization
    // (3 rounds vs 1) — and the message overhead wins on a cluster.
    let ib = IbModel::default();
    let v = block as u64;
    let ib_direct =
        ib.alpha_us + 25.0 * ib.per_message_us + 26.0 * v as f64 / (ib.bandwidth_gbs * 1e3);
    let ib_staged: f64 = (0..3)
        .map(|stage| {
            let bytes = v * 3u64.pow(stage);
            ib.alpha_us + ib.per_message_us + 2.0 * bytes as f64 / (ib.bandwidth_gbs * 1e3)
        })
        .sum();
    section("Same exchange on the InfiniBand model (us)");
    println!("direct (26 messages): {ib_direct:.2}");
    println!("staged  (6 messages): {ib_staged:.2}");

    println!(
        "\npaper's point: staging reduces message count (26 -> 6) and wins on\n\
         commodity clusters, but on Anton a single round of direct fine-grained\n\
         messages is faster — per-message cost is tiny and staging adds\n\
         serialized rounds."
    );
    assert!(direct.completion < staged.completion);
    assert!(staged.messages_per_node < direct.messages_per_node);
    assert!(ib_staged < ib_direct);
}
