//! The scenario provenance CLI: run declarative specs, address the
//! results by content hash, and replay any committed experiment
//! bit-exactly from its hash.
//!
//! ```text
//! scenario run    <spec.toml | preset> [--threads N] [--ledger DIR]
//!                 [--index PATH] [--note TEXT]
//! scenario list   [--ledger DIR] [--index PATH]
//! scenario show   <hash | name> [--ledger DIR] [--index PATH]
//! scenario diff   <hash | name> <hash | name> [--ledger DIR] [--index PATH]
//!                 [--threshold PCT]
//! scenario verify <hash | name> | --all [--ledger DIR] [--index PATH]
//! scenario presets
//! ```
//!
//! `run` executes the spec at 1 and 4 worker threads (plus the spec's
//! own thread budget), refuses to proceed unless every fingerprint
//! matches, then writes the content-addressed [`RunRecord`] into the
//! ledger directory (default `target/obs/ledger/`) and, with
//! `--index`, upserts the committed `LEDGER.json` entry. `verify`
//! replays a spec from the committed index (or the stored record) and
//! exits non-zero unless both the recomputed spec hash and the
//! re-measured fingerprints are bit-identical to what was recorded.
//! `diff` reuses the observatory's component-level triage, so a
//! cross-run comparison names the shifted component, not just the
//! moved number.

use anton_bench::scenario::run_scenario;
use anton_obs::DiffConfig;
use anton_scenario::{presets, LedgerEntry, LedgerIndex, RunRecord, ScenarioSpec};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: scenario run    <spec.toml | preset> [--threads N] [--ledger DIR]\n\
       \x20                     [--index PATH] [--note TEXT]\n\
       \x20      scenario list   [--ledger DIR] [--index PATH]\n\
       \x20      scenario show   <hash | name> [--ledger DIR] [--index PATH]\n\
       \x20      scenario diff   <A> <B> [--ledger DIR] [--index PATH] [--threshold PCT]\n\
       \x20      scenario verify <hash | name> | --all [--ledger DIR] [--index PATH]\n\
       \x20      scenario presets [--export DIR]"
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    operands: Vec<String>,
    threads: Option<usize>,
    ledger: PathBuf,
    index: Option<PathBuf>,
    note: String,
    threshold: f64,
    all: bool,
    export: Option<PathBuf>,
}

fn parse_args() -> Result<Args, ExitCode> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first().cloned() else {
        return Err(usage());
    };
    let mut args = Args {
        command,
        operands: Vec::new(),
        threads: None,
        ledger: PathBuf::from("target/obs/ledger"),
        index: None,
        note: String::new(),
        threshold: 10.0,
        all: false,
        export: None,
    };
    let mut it = argv.iter().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("scenario: {flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--threads" => {
                args.threads = Some(next("--threads")?.parse().map_err(|_| usage())?);
            }
            "--ledger" => args.ledger = PathBuf::from(next("--ledger")?),
            "--index" => args.index = Some(PathBuf::from(next("--index")?)),
            "--note" => args.note = next("--note")?,
            "--threshold" => {
                args.threshold = next("--threshold")?.parse().map_err(|_| usage())?;
            }
            "--all" => args.all = true,
            "--export" => args.export = Some(PathBuf::from(next("--export")?)),
            other if other.starts_with("--") => {
                eprintln!("scenario: unknown flag {other:?}");
                return Err(usage());
            }
            operand => args.operands.push(operand.to_owned()),
        }
    }
    Ok(args)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("scenario: {msg}");
    ExitCode::FAILURE
}

/// Resolve a `run` operand: an existing file parses as a spec; anything
/// else must name a preset.
fn load_spec(operand: &str) -> Result<(ScenarioSpec, String), ExitCode> {
    let path = Path::new(operand);
    if path.is_file() {
        let text = std::fs::read_to_string(path).map_err(|e| fail(format!("{operand}: {e}")))?;
        let spec =
            ScenarioSpec::from_toml_str(&text).map_err(|e| fail(format!("{operand}: {e}")))?;
        return Ok((spec, operand.to_owned()));
    }
    if let Some(spec) = presets::all().into_iter().find(|s| s.name == operand) {
        let source = format!("preset:{operand}");
        return Ok((spec, source));
    }
    Err(fail(format!(
        "{operand:?} is neither a spec file nor a preset (presets: {})",
        presets::all()
            .iter()
            .map(|s| s.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    )))
}

/// Execute a spec at the determinism-probe thread counts (1, 4, and the
/// spec's own budget), asserting fingerprint identity, and return the
/// fingerprint map plus the observatory report from the spec-budget run.
fn probe(
    spec: &ScenarioSpec,
    extra: Option<usize>,
) -> Result<(BTreeMap<String, String>, anton_obs::ObservatoryReport), ExitCode> {
    let mut counts = vec![1usize, 4, spec.threads as usize];
    if let Some(t) = extra {
        counts.push(t);
    }
    counts.sort_unstable();
    counts.dedup();

    let mut fingerprints = BTreeMap::new();
    let mut observatory = None;
    for &t in &counts {
        let out = run_scenario(spec, t);
        fingerprints.insert(format!("t{t}"), out.fingerprint);
        // Keep the spec-thread-count run's report (falling back to the
        // first run when the spec count never comes up in `counts`).
        if t == spec.threads as usize || observatory.is_none() {
            observatory = Some(out.observatory);
        }
    }
    let first = fingerprints.values().next().cloned().unwrap_or_default();
    for (k, v) in &fingerprints {
        if *v != first {
            return Err(fail(format!(
                "{}: fingerprint diverged across thread counts ({k} {v} vs {first}) — \
                 the engine's bit-determinism contract is broken",
                spec.name
            )));
        }
    }
    Ok((fingerprints, observatory.expect("at least one run")))
}

/// Load a stored record by hash/name/prefix, via the index when given.
fn resolve_record(
    key: &str,
    ledger: &Path,
    index: Option<&LedgerIndex>,
) -> Result<RunRecord, ExitCode> {
    let hash = index
        .and_then(|idx| idx.resolve(key))
        .map(|e| e.hash.clone())
        .unwrap_or_else(|| key.to_owned());
    RunRecord::load(ledger, &hash).map_err(|e| {
        let hint = match index {
            Some(idx) if !idx.entries.is_empty() => {
                format!(" (index names: {})", idx.names().join(", "))
            }
            _ => String::new(),
        };
        fail(format!("{key}: {e}{hint}"))
    })
}

fn load_index(args: &Args) -> Result<Option<LedgerIndex>, ExitCode> {
    match &args.index {
        None => Ok(None),
        Some(path) => LedgerIndex::load(path)
            .map(Some)
            .map_err(|e| fail(format!("{}: {e}", path.display()))),
    }
}

fn cmd_run(args: &Args) -> Result<ExitCode, ExitCode> {
    let [operand] = args.operands.as_slice() else {
        return Err(usage());
    };
    let (spec, source) = load_spec(operand)?;
    let hash = spec.hash_hex();
    println!("scenario: {} = {hash} (from {source})", spec.name);

    let (fingerprints, observatory) = probe(&spec, args.threads)?;
    let fingerprint = fingerprints.values().next().cloned().unwrap_or_default();
    for (k, v) in &fingerprints {
        println!("scenario:   {k}: {v}");
    }

    let record = RunRecord::new(&spec, fingerprints, observatory);
    let path = record
        .store(&args.ledger)
        .map_err(|e| fail(format!("store record: {e}")))?;
    println!("scenario: recorded {}", path.display());

    if let Some(index_path) = &args.index {
        let mut idx = LedgerIndex::load(index_path)
            .map_err(|e| fail(format!("{}: {e}", index_path.display())))?;
        idx.upsert(LedgerEntry {
            hash: hash.clone(),
            name: spec.name.clone(),
            spec_path: source,
            fingerprint,
            note: args.note.clone(),
        });
        idx.save(index_path)
            .map_err(|e| fail(format!("{}: {e}", index_path.display())))?;
        println!("scenario: indexed in {}", index_path.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(args: &Args) -> Result<ExitCode, ExitCode> {
    let index = load_index(args)?;
    if let Some(idx) = &index {
        println!("committed index:");
        for e in &idx.entries {
            println!(
                "  {}  {:24}  {}  {}",
                e.hash, e.name, e.fingerprint, e.spec_path
            );
        }
    }
    let mut hashes: Vec<String> = match std::fs::read_dir(&args.ledger) {
        Err(_) => Vec::new(),
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                e.file_name()
                    .to_str()
                    .and_then(|n| n.strip_suffix(".json"))
                    .map(str::to_owned)
            })
            .collect(),
    };
    hashes.sort_unstable();
    println!(
        "ledger {} ({} records):",
        args.ledger.display(),
        hashes.len()
    );
    for h in &hashes {
        match RunRecord::load(&args.ledger, h) {
            Ok(rec) => println!(
                "  {h}  {:24}  {}",
                rec.spec_name,
                rec.fingerprints
                    .values()
                    .next()
                    .map(String::as_str)
                    .unwrap_or("-")
            ),
            Err(e) => println!("  {h}  <unreadable: {e}>"),
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_show(args: &Args) -> Result<ExitCode, ExitCode> {
    let [key] = args.operands.as_slice() else {
        return Err(usage());
    };
    let index = load_index(args)?;
    let rec = resolve_record(key, &args.ledger, index.as_ref())?;
    println!("spec {} ({})", rec.spec_name, rec.spec_hash);
    println!("toolchain: {}", rec.toolchain);
    for (k, v) in &rec.fingerprints {
        println!("fingerprint {k}: {v}");
    }
    for (k, v) in &rec.env {
        println!("env {k}={v}");
    }
    println!("--- spec ---\n{}", rec.spec_toml);
    println!("--- observatory ---\n{}", rec.observatory.to_json());
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &Args) -> Result<ExitCode, ExitCode> {
    let [a, b] = args.operands.as_slice() else {
        return Err(usage());
    };
    let index = load_index(args)?;
    let base = resolve_record(a, &args.ledger, index.as_ref())?;
    let cur = resolve_record(b, &args.ledger, index.as_ref())?;
    let mut baseline = base.observatory.clone();
    baseline.label = format!("{} ({})", base.spec_name, base.spec_hash);
    let config = DiffConfig {
        metric_threshold_pct: args.threshold,
        share_threshold_pt: 2.0,
        value_threshold_pct: args.threshold,
    };
    let diff = cur.observatory.diff(&baseline, config).map_err(fail)?;
    print!("{}", diff.triage());
    if diff.has_regressions() {
        println!(
            "scenario: {} component shift(s) from {} to {}",
            diff.regression_count(),
            base.spec_hash,
            cur.spec_hash
        );
    } else {
        println!("scenario: no component shifts past thresholds");
    }
    Ok(ExitCode::SUCCESS)
}

/// Replay one committed entry and check hash + fingerprint identity.
fn verify_entry(key: &str, ledger: &Path, index: Option<&LedgerIndex>) -> Result<(), String> {
    // Prefer the committed spec file; fall back to the stored record's
    // embedded canonical spec.
    let entry = index.and_then(|idx| idx.resolve(key));
    let (spec_text, expect_hash, expect_fp, origin) = match entry {
        Some(e) => {
            let text = std::fs::read_to_string(&e.spec_path)
                .map_err(|err| format!("{}: {err}", e.spec_path))?;
            (
                text,
                e.hash.clone(),
                e.fingerprint.clone(),
                e.spec_path.clone(),
            )
        }
        None => {
            let rec = RunRecord::load(ledger, key)?;
            let fp = rec
                .fingerprints
                .values()
                .next()
                .cloned()
                .ok_or("record has no fingerprints")?;
            (
                rec.spec_toml,
                rec.spec_hash.clone(),
                fp,
                format!("ledger record {}", rec.spec_hash),
            )
        }
    };
    let spec = ScenarioSpec::from_toml_str(&spec_text).map_err(|e| format!("{origin}: {e}"))?;
    if spec.hash_hex() != expect_hash {
        return Err(format!(
            "{origin}: spec hashes to {} but the ledger says {expect_hash} — \
             the spec file changed without re-running `scenario run`",
            spec.hash_hex()
        ));
    }
    for threads in [1usize, 4] {
        let out = run_scenario(&spec, threads);
        if out.fingerprint != expect_fp {
            return Err(format!(
                "{}: fingerprint {} at {threads} thread(s), ledger says {expect_fp} — \
                 the engine no longer reproduces this run",
                spec.name, out.fingerprint
            ));
        }
    }
    println!(
        "scenario: verified {} ({expect_hash}) -> {expect_fp} at 1 and 4 threads",
        spec.name
    );
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<ExitCode, ExitCode> {
    let index = load_index(args)?;
    let keys: Vec<String> = if args.all {
        let Some(idx) = &index else {
            return Err(fail("verify --all needs --index PATH"));
        };
        idx.entries.iter().map(|e| e.hash.clone()).collect()
    } else {
        match args.operands.as_slice() {
            [key] => vec![key.clone()],
            _ => return Err(usage()),
        }
    };
    if keys.is_empty() {
        return Err(fail("verify --all: the index has no entries"));
    }
    let mut failures = 0usize;
    for key in &keys {
        if let Err(e) = verify_entry(key, &args.ledger, index.as_ref()) {
            eprintln!("scenario: FAIL {key}: {e}");
            failures += 1;
        }
    }
    if failures > 0 {
        Err(fail(format!(
            "{failures}/{} verification(s) failed",
            keys.len()
        )))
    } else {
        println!("scenario: {} verification(s) passed", keys.len());
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_presets(args: &Args) -> Result<ExitCode, ExitCode> {
    println!("{:16}  {:24}  workload", "hash", "name");
    for spec in presets::all() {
        println!(
            "{}  {:24}  {}",
            spec.hash_hex(),
            spec.name,
            spec.workload.kind()
        );
        if let Some(dir) = &args.export {
            std::fs::create_dir_all(dir).map_err(|e| fail(format!("{}: {e}", dir.display())))?;
            let path = dir.join(format!("{}.toml", spec.name));
            std::fs::write(&path, spec.to_toml())
                .map_err(|e| fail(format!("{}: {e}", path.display())))?;
            println!("{:18}exported {}", "", path.display());
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let result = match args.command.as_str() {
        "run" => cmd_run(&args),
        "list" => cmd_list(&args),
        "show" => cmd_show(&args),
        "diff" => cmd_diff(&args),
        "verify" => cmd_verify(&args),
        "presets" => cmd_presets(&args),
        _ => Err(usage()),
    };
    match result {
        Ok(code) => code,
        Err(code) => code,
    }
}
