//! Table 3: critical-path communication time and total time for the
//! DHFR benchmark (23,558 atoms) on the 512-node Anton machine vs. the
//! Desmond/InfiniBand cluster model. Communication is computed exactly
//! as the paper does: total minus critical-path arithmetic.
//!
//! Alongside the paper's analytic decomposition, a full step is
//! recorded and its *measured* event-graph critical path extracted —
//! the exact chain of sends, link crossings, and counter fires that
//! bounded the step — with per-stage blame that telescopes to the
//! step's measured makespan.

use anton_baseline::{DesmondModel, PAPER_TABLE3};
use anton_bench::report::{rel, section};
use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_obs::{Blame, CausalGraph};
use anton_topo::TorusDims;

/// Measured-vs-analytic agreement tolerance: the event-graph critical
/// path must span at least this fraction of the recorded step's
/// end-to-end makespan (the rest is pure compute before the first and
/// after the last packet of the step).
const PATH_COVERAGE_MIN: f64 = 0.5;

fn main() {
    eprintln!("building the DHFR-like system and bootstrapping the machine...");
    let sys = SystemBuilder::dhfr_like().build();
    let mut md = MdParams::new(9.5, [32; 3]);
    md.dt = 1.0; // flexible water needs ~1 fs (the paper's system used constraints)
    let config = AntonConfig::new(md);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::anton_512());

    // Run four steps: two range-limited, two long-range (with thermostat).
    let mut rl = Vec::new();
    let mut lr = Vec::new();
    for _ in 0..4 {
        let t = eng.step();
        eprintln!(
            "  step {}: total {:.1} us ({})",
            eng.steps(),
            t.total.as_us_f64(),
            if t.long_range {
                "long-range"
            } else {
                "range-limited"
            }
        );
        if t.long_range {
            lr.push(t);
        } else {
            rl.push(t);
        }
    }
    // Record every packet lifecycle of a fifth step and reconstruct the
    // causal event graph; its critical path is the *measured* bound on
    // the step, next to the paper-style analytic decomposition below.
    eprintln!("recording a full step for event-graph analysis...");
    let rec = eng.record_next_step();
    let t5 = eng.step();
    let timing = eng.timing();
    let graph = {
        let r = rec.borrow();
        eprintln!("  {} flight events recorded", r.len());
        CausalGraph::build(TorusDims::anton_512(), r.events(), |b| {
            timing.injection_occupancy(b)
        })
    };
    graph
        .check_consistency()
        .expect("recorded step graph is exact");

    let avg_us = |v: &[anton_core::StepTiming], f: fn(&anton_core::StepTiming) -> f64| {
        v.iter().map(f).sum::<f64>() / v.len() as f64
    };
    let rl_total = avg_us(&rl, |t| t.total.as_us_f64());
    let rl_comm = avg_us(&rl, |t| t.communication().as_us_f64());
    let lr_total = avg_us(&lr, |t| t.total.as_us_f64());
    let lr_comm = avg_us(&lr, |t| t.communication().as_us_f64());
    let avg_total = 0.5 * (rl_total + lr_total);
    let avg_comm = 0.5 * (rl_comm + lr_comm);
    let fft_overlapped = avg_us(&lr, |t| t.fft_span.as_us_f64());
    let reduce_span = avg_us(&lr, |t| t.reduce_span.as_us_f64());
    // Table 3's FFT row is the isolated convolution: measure it without
    // the concurrent range-limited traffic it overlaps inside a step.
    eprintln!("measuring the FFT convolution in isolation...");
    let fft_span = eng.measure_fft_convolution().as_us_f64();

    let desmond = DesmondModel::table3();
    let d_rl = desmond.range_limited_step();
    let d_lr = desmond.long_range_step();
    let d_avg = desmond.average_step();
    let d_fft = desmond.fft_convolution_us();
    let d_th = desmond.thermostat_comm_us();

    section("Table 3: critical-path communication and total time (us)");
    println!(
        "{:>26} {:>10} {:>10} {:>12} {:>12} | {:>10} {:>10}",
        "", "Anton sim", "paper", "Desmond mdl", "paper", "comm vs", "total vs"
    );
    let rows = [
        (
            "Average time step",
            avg_comm,
            avg_total,
            d_avg.communication_us,
            d_avg.total_us,
        ),
        (
            "Range-limited time step",
            rl_comm,
            rl_total,
            d_rl.communication_us,
            d_rl.total_us,
        ),
        (
            "Long-range time step",
            lr_comm,
            lr_total,
            d_lr.communication_us,
            d_lr.total_us,
        ),
        (
            "FFT-based convolution",
            fft_span,
            fft_span,
            d_fft,
            d_fft + 60.0,
        ),
        (
            "Thermostat",
            reduce_span,
            reduce_span + 0.4,
            d_th,
            d_th + 21.0,
        ),
    ];
    for ((label, a_comm, a_total, d_comm, d_total), &(_, pac, pat, pdc, pdt)) in
        rows.iter().zip(PAPER_TABLE3)
    {
        println!(
            "{label:>26} comm {a_comm:>6.1} {pac:>9.1} {d_comm:>12.0} {pdc:>12.0} | {:>10} {:>10}",
            rel(*a_comm, pac),
            rel(*d_comm, pdc),
        );
        println!(
            "{:>26} totl {a_total:>6.1} {pat:>9.1} {d_total:>12.0} {pdt:>12.0} |",
            ""
        );
    }

    section("Measured event-graph critical path (recorded step)");
    let path = graph.critical_path().expect("a recorded step has packets");
    let blame = Blame::from_path(&graph, &path);
    let span_us = path.span().as_us_f64();
    let total_us = t5.total.as_us_f64();
    println!(
        "graph: {} events -> {} nodes, {} edges; path {} hops long",
        rec.borrow().len(),
        graph.len(),
        graph.edges().len(),
        path.nodes.len()
    );
    println!(
        "recorded step: {:.1} us total ({}); measured critical path spans {:.1} us\n",
        total_us,
        if t5.long_range {
            "long-range"
        } else {
            "range-limited"
        },
        span_us
    );
    print!("{}", blame.table());

    // The blame buckets partition the path span exactly (the
    // telescoping invariant, property-tested in the obs crate).
    assert_eq!(
        blame.total().as_ps(),
        path.span().as_ps(),
        "blame must telescope to the path span"
    );
    // Agreement with the step measurement: the path is bounded by the
    // step makespan and must explain at least PATH_COVERAGE_MIN of it.
    assert!(
        span_us <= total_us + 1e-9,
        "critical path ({span_us:.2} us) cannot exceed the step ({total_us:.2} us)"
    );
    let coverage = span_us / total_us;
    println!(
        "\npath covers {:.0}% of the step makespan (tolerance floor: {:.0}%)",
        coverage * 100.0,
        PATH_COVERAGE_MIN * 100.0
    );
    assert!(
        coverage >= PATH_COVERAGE_MIN,
        "critical path covers only {:.0}% of the step",
        coverage * 100.0
    );

    let ratio = d_avg.communication_us / avg_comm;
    println!(
        "\nheadline: Anton's average critical-path communication is 1/{ratio:.0} of the\n\
         cluster's (paper: 1/27; \"less than 4%\")."
    );
    println!(
        "FFT convolution overlapped with the rest of the step spans {fft_overlapped:.1} us\n\
         of wall time; isolated it takes {fft_span:.1} us (paper's isolated row: 8.5 us;\n\
         [47] reports ~4 us for the bare 32^3 FFT)."
    );
    let s = eng.last_stats.as_ref().expect("stats recorded");
    let n = 512;
    println!(
        "traffic: average node sent ~{} and received ~{} packets in the last step\n\
         (paper: over 250 sent, over 500 received per average time step).",
        s.packets_sent / n,
        s.packets_delivered / n
    );
    assert!(
        ratio > 15.0,
        "Anton must beat the cluster by >15x, got {ratio:.1}"
    );
    assert!((5.0..20.0).contains(&avg_comm), "avg comm {avg_comm}");
}
