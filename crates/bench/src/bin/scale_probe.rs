//! Scale observatory probe: proves the streaming, bounded-memory
//! instrumentation of `anton_obs::stream` holds its accuracy and its
//! memory budget on runs two orders of magnitude past the paper's
//! 512-node machine.
//!
//! ```text
//! scale_probe [--quick] [--bench-out PATH]
//! ```
//!
//! Three phases:
//!
//! 1. **Reference accuracy (8×8×8, 512 nodes).** Runs the MD neighbor
//!    exchange once under the full flight recorder and once under the
//!    streaming observer and asserts the streamed fold is *exact* where
//!    it promises exactness (stage/end-to-end totals, fold census,
//!    heavy-hitter table below capacity, shard-merge bit-identity) and
//!    within one log-bucket where it approximates (sketch quantiles vs
//!    the offline histogram). Also asserts zero observer effect: the
//!    observed run is bit-identical to the unobserved one.
//! 2. **Streaming exporters.** Writes the reservoir sample through the
//!    chunked Chrome-trace / CSV writers to `target/obs/` and asserts
//!    byte-identity with the in-memory builders.
//! 3. **Scale runs.** A 16×16×16 (4,096-node) probe always, plus the
//!    24×24×24 (13,824-node) run unless `--quick`, each under streaming
//!    observability only, asserting the observer's peak heap stays
//!    under a fixed bytes-per-node budget. With the `obs-alloc` feature
//!    the instrumented global allocator cross-checks the logical
//!    accounting against real allocations per subsystem tag.
//!
//! Always writes `target/obs/scale_report.json`. `--bench-out` writes
//! the deterministic metric subset (reference + 16³ probe, so the file
//! is byte-identical in `--quick` and full modes) as a schema-v2
//! [`BenchReport`] — the committed `BENCH_pr8.json`.

use anton_core::{
    run_md_exchange, run_md_exchange_recorded, run_md_exchange_streamed,
    run_md_exchange_streamed_par, MdExchangeOutcome,
};
use anton_obs::stream::log2_bucket;
use anton_obs::{
    fold_lifecycles, BenchReport, BreakdownSummary, ChromeTraceBuilder, ChromeTraceWriter,
    CongestionMap, Direction, LifecycleCsvWriter, MemReport, MetricsRegistry, MetricsSnapshot,
    PacketLifecycle, StreamConfig, StreamSummary,
};
use anton_scenario::{presets, ScenarioSpec};
use std::io::Write as _;
use std::process::ExitCode;

#[cfg(feature = "obs-alloc")]
#[global_allocator]
static ALLOC: anton_obs::memory::ObsAlloc = anton_obs::memory::ObsAlloc;

/// Logical observer-heap budget, bytes per node (approx accounting).
const APPROX_BUDGET_BYTES_PER_NODE: u64 = 4 * 1024;
/// Real-allocation budget for the Obs tag, bytes per node (only
/// checked when the instrumented allocator is installed).
const ALLOC_BUDGET_BYTES_PER_NODE: i64 = 16 * 1024;

/// One scale probe: run the spec's MD exchange streamed, check
/// budgets, return the sections. The spec is one of the committed
/// `scale_md_*` scenarios, so its hash names this exact probe.
fn scale_run(
    label: &str,
    spec: &ScenarioSpec,
) -> (MdExchangeOutcome, StreamSummary, MetricsSnapshot) {
    let dims = spec.torus_dims();
    let params = spec.md_params().expect("scale presets are MD specs");
    let nodes = dims.node_count() as u64;
    anton_obs::memory::reset_peaks();
    let (out, summary, footprint) = run_md_exchange_streamed(dims, params, StreamConfig::default());
    let mem = MemReport::capture();

    let per_node = footprint.peak_bytes / nodes;
    println!(
        "[{label}] spec {} — {nodes} nodes: makespan {:.1} ns, {} events, \
         obs peak {} B ({} B/node, budget {} B/node), {} peak partials",
        spec.hash_hex(),
        out.makespan.as_ns_f64(),
        out.events,
        footprint.peak_bytes,
        per_node,
        APPROX_BUDGET_BYTES_PER_NODE,
        footprint.peak_partials,
    );
    assert!(
        per_node <= APPROX_BUDGET_BYTES_PER_NODE,
        "[{label}] observer heap {per_node} B/node exceeds the \
         {APPROX_BUDGET_BYTES_PER_NODE} B/node budget"
    );
    let expected = nodes * 6 * u64::from(params.steps);
    assert_eq!(
        summary.fold.complete, expected,
        "[{label}] every packet folds"
    );
    assert_eq!(summary.retransmits, 0, "[{label}] fault-free run");

    if anton_obs::memory::instrumented() {
        let obs_peak = mem.tag_peak(anton_obs::MemTag::Obs);
        let per_node_real = obs_peak / nodes as i64;
        println!(
            "[{label}] allocator: obs tag peak {obs_peak} B \
             ({per_node_real} B/node, budget {ALLOC_BUDGET_BYTES_PER_NODE} B/node)"
        );
        print!("{}", mem.table());
        assert!(
            per_node_real <= ALLOC_BUDGET_BYTES_PER_NODE,
            "[{label}] real obs allocations {per_node_real} B/node exceed the \
             {ALLOC_BUDGET_BYTES_PER_NODE} B/node budget"
        );
    }

    let mut reg = MetricsRegistry::new();
    summary.record_metrics(&mut reg);
    footprint.record_metrics(&mut reg, nodes);
    mem.record_metrics(&mut reg, nodes, out.events);
    reg.set_gauge("scale.nodes", nodes as f64);
    reg.set_gauge("scale.steps", f64::from(params.steps));
    reg.set_gauge("scale.events", out.events as f64);
    reg.set_gauge("scale.makespan_ns", out.makespan.as_ns_f64());
    (out, summary, reg.snapshot())
}

/// Phase 1: the streamed fold against ground truth on the paper machine.
fn reference_checks(report: &mut BenchReport) -> (StreamSummary, MetricsSnapshot) {
    let spec = presets::scale_md(8);
    let dims = spec.torus_dims();
    let params = spec.md_params().expect("scale presets are MD specs");
    let nodes = dims.node_count() as u64;
    let plain = run_md_exchange(dims, params);
    let (rec_out, events) = run_md_exchange_recorded(dims, params);
    let (str_out, summary, footprint) =
        run_md_exchange_streamed(dims, params, StreamConfig::default());

    // Zero observer effect: recording modes never move the simulation.
    for (mode, out) in [("flight", &rec_out), ("stream", &str_out)] {
        assert_eq!(out.makespan, plain.makespan, "{mode} observer effect");
        assert_eq!(out.checksums, plain.checksums, "{mode} observer effect");
        assert_eq!(out.events, plain.events, "{mode} observer effect");
    }

    // The streamed fold is exact: same stage totals, same census.
    let (lifecycles, stats) = fold_lifecycles(events.iter());
    let exact = BreakdownSummary::from_lifecycles(&lifecycles);
    assert_eq!(summary.breakdown(), exact, "streamed breakdown is exact");
    assert_eq!(summary.fold, stats, "streamed fold census is exact");

    // Sketch quantiles stay within one log-bucket of the offline
    // histogram built from the identical latency stream.
    let mut reg = MetricsRegistry::new();
    for lc in &lifecycles {
        reg.observe("e2e", lc.delivered.since(lc.issued));
    }
    let hist = reg.histogram("e2e").expect("observed");
    for q in [0.5, 0.9, 0.99] {
        let exact_ps = hist.quantile(q).expect("nonempty").as_ps();
        let sketch_ps = summary.e2e_sketch.quantile_ps(q).expect("nonempty");
        let (be, bs) = (log2_bucket(exact_ps), log2_bucket(sketch_ps));
        assert!(
            be.abs_diff(bs) <= 1,
            "q{q}: sketch {sketch_ps} ps vs exact {exact_ps} ps is more \
             than one log-bucket apart ({bs} vs {be})"
        );
    }

    // Below capacity (3,072 links < 4,096 slots) the heavy-hitter table
    // is exact: same links, same busy totals, zero error, same order.
    let congestion = CongestionMap::build(events.iter(), anton_des::SimDuration::from_ns(100));
    let want = congestion.hottest_links(16);
    let got = summary.hottest_links(16);
    assert_eq!(got.len(), want.len());
    for ((gk, ge), (wk, wd)) in got.iter().zip(&want) {
        assert_eq!(gk, wk, "heavy-hitter link order");
        assert_eq!(ge.count, wd.as_ps(), "heavy-hitter busy total");
        assert_eq!(ge.err, 0, "below capacity the table is exact");
    }

    // Shard-merged summaries are bit-identical to the sequential one.
    for threads in [2, 4] {
        let (_, par_summary) =
            run_md_exchange_streamed_par(dims, params, threads, StreamConfig::default());
        assert_eq!(
            par_summary, summary,
            "{threads}-thread merge is bit-identical"
        );
    }

    println!(
        "[reference] 512 nodes: breakdown exact, census exact, top-K exact, \
         sketch within one log-bucket, shard merges bit-identical"
    );

    report.set("scale_ref_complete", summary.fold.complete as f64);
    report.set_directed(
        "scale_ref_e2e_p50_ns",
        summary.e2e_sketch.quantile_ns(0.5),
        Direction::LowerIsBetter,
    );
    report.set_directed(
        "scale_ref_e2e_p99_ns",
        summary.e2e_sketch.quantile_ns(0.99),
        Direction::LowerIsBetter,
    );
    report.set_directed(
        "scale_ref_hot_link_busy_ns",
        got.first().map_or(0.0, |(_, e)| e.count as f64 / 1000.0),
        Direction::LowerIsBetter,
    );

    let mut reg = MetricsRegistry::new();
    summary.record_metrics(&mut reg);
    footprint.record_metrics(&mut reg, nodes);
    (summary, reg.snapshot())
}

/// Phase 2: chunked exporters equal the in-memory builders, byte for
/// byte, and land the reservoir sample on disk.
fn export_reservoir(summary: &StreamSummary) {
    let sample: Vec<&PacketLifecycle> = summary.reservoir.items().collect();

    let mut builder = ChromeTraceBuilder::new();
    let mut writer = ChromeTraceWriter::new(Vec::new()).expect("header");
    builder.name_process(0, "reservoir sample");
    writer.name_process(0, "reservoir sample").expect("write");
    for lc in &sample {
        builder.add_lifecycle(0, lc);
        writer.add_lifecycle(0, lc).expect("write");
    }
    let built = builder.finish();
    let streamed = writer.finish().expect("finish");
    assert_eq!(
        built.as_bytes(),
        streamed.as_slice(),
        "streaming Chrome-trace writer must be byte-identical to the builder"
    );
    std::fs::write("target/obs/scale_trace.json", &streamed).expect("write scale_trace.json");

    let mut csv = LifecycleCsvWriter::new(Vec::new()).expect("header");
    for lc in &sample {
        csv.write(lc).expect("write");
    }
    let csv = csv.finish().expect("finish");
    assert_eq!(
        anton_obs::lifecycles_csv(&sample.iter().map(|lc| (*lc).clone()).collect::<Vec<_>>())
            .as_bytes(),
        csv.as_slice(),
        "streaming CSV writer must be byte-identical to the builder"
    );
    std::fs::write("target/obs/scale_lifecycles.csv", &csv).expect("write scale_lifecycles.csv");

    println!(
        "[export] {} sampled lifecycles -> target/obs/scale_trace.json, \
         target/obs/scale_lifecycles.csv (writers byte-identical to builders)",
        sample.len()
    );
}

fn write_scale_report(sections: &[(String, MetricsSnapshot)]) {
    let mut out = String::from("{\n\"schema\": 1,\n\"sections\": {\n");
    for (i, (name, snap)) in sections.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "{}: {}",
            anton_obs::json::escape(name),
            snap.to_json()
        ));
    }
    out.push_str("}\n}\n");
    std::fs::write("target/obs/scale_report.json", out).expect("write scale_report.json");
}

fn main() -> ExitCode {
    let mut quick = false;
    let mut bench_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--bench-out" => match it.next() {
                Some(p) => bench_out = Some(p),
                None => {
                    eprintln!("scale_probe: --bench-out needs a value");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("usage: scale_probe [--quick] [--bench-out PATH] (got {other:?})");
                return ExitCode::from(2);
            }
        }
    }
    std::fs::create_dir_all("target/obs").expect("create target/obs");

    let mut report = BenchReport::new("scale_probe");
    let mut sections = Vec::new();

    let (ref_summary, ref_snap) = reference_checks(&mut report);
    sections.push(("reference_512".to_owned(), ref_snap));
    export_reservoir(&ref_summary);

    // 16³ always runs, so the committed bench metrics are identical in
    // quick and full modes.
    let (out16, _, snap16) = scale_run("scale 16^3", &presets::scale_md(16));
    report.set("scale16_events", out16.events as f64);
    report.set_directed(
        "scale16_makespan_ns",
        out16.makespan.as_ns_f64(),
        Direction::LowerIsBetter,
    );
    report.set_directed(
        "scale16_obs_peak_bytes_per_node",
        snap16.get("obs.stream.peak_bytes").unwrap_or(0.0) / 4096.0,
        Direction::LowerIsBetter,
    );
    report.set_directed(
        "scale16_e2e_p99_ns",
        snap16.get("obs.stream.e2e_p99_ns").unwrap_or(0.0),
        Direction::LowerIsBetter,
    );
    sections.push(("scale_4096".to_owned(), snap16));

    if !quick {
        let (_, _, snap24) = scale_run("scale 24^3", &presets::scale_md(24));
        sections.push(("scale_13824".to_owned(), snap24));
    }

    write_scale_report(&sections);
    println!(
        "[report] target/obs/scale_report.json ({} sections)",
        sections.len()
    );

    if let Some(path) = bench_out {
        std::fs::write(&path, report.to_json()).expect("write bench report");
        println!("[report] {path}");
    }
    let mut stdout = std::io::stdout();
    let _ = stdout.flush();
    ExitCode::SUCCESS
}
