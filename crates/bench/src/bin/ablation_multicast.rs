//! Ablation (§IV.B.1): multicast vs. repeated unicast for distributing
//! one atom's position to its NT import set ("positions are typically
//! broadcast to as many as 17 different HTIS units"; multicast
//! "significantly reduces both sender overhead and network bandwidth").

use anton_bench::multicast_vs_unicast;
use anton_bench::report::section;
use anton_core::Decomposition;
use anton_md::PeriodicBox;
use anton_topo::{Coord, TorusDims};

fn main() {
    let dims = TorusDims::anton_512();
    let decomp = Decomposition::new(dims, PeriodicBox::cubic(62.23), 11.0);
    let src = Coord::new(4, 4, 4);
    let dests = decomp.import_boxes(src);
    section(&format!(
        "Position fan-out to the NT import set ({} HTIS units)",
        dests.len()
    ));
    let (t_multi, t_uni, trav_multi, trav_uni) = multicast_vs_unicast(dims, src, &dests, 28);
    println!(
        "multicast: completion {:.0} ns, {} link traversals, 1 injection",
        t_multi.as_ns_f64(),
        trav_multi
    );
    println!(
        "unicast:   completion {:.0} ns, {} link traversals, {} injections",
        t_uni.as_ns_f64(),
        trav_uni,
        dests.len()
    );
    println!(
        "\nmulticast saves {:.0}% of link traversals and {:.0}% of completion time.",
        (1.0 - trav_multi as f64 / trav_uni as f64) * 100.0,
        (1.0 - t_multi.as_ns_f64() / t_uni.as_ns_f64()) * 100.0
    );
    assert!(trav_multi < trav_uni);
    assert!(t_multi <= t_uni);
}
