//! Figure 6: the component-by-component breakdown of the 162 ns
//! single-hop counted-remote-write latency — regenerated from *measured*
//! packet lifecycles captured by the flight recorder, then cross-checked
//! against the closed-form timing model.

use anton_bench::microbench::one_way_latency_timed;
use anton_bench::report::section;
use anton_obs::{fold_lifecycles, BreakdownSummary, Stage};
use anton_scenario::{presets, Workload};
use anton_topo::Coord;

fn main() {
    // The workload is the committed `fig6_pingpong` scenario: a
    // single-hop (+X) 0-byte unidirectional counted remote write on the
    // 512-node machine, so this figure's provenance is its spec hash.
    let spec = presets::fig6_pingpong();
    let t = spec.timing_table();
    section("Figure 6: single-hop (X) counted remote write latency breakdown");
    println!("(spec {} = {})", spec.name, spec.hash_hex());

    // Record a unidirectional single-hop ping-pong; every one-way
    // transfer is one packet lifecycle in the recorder.
    let Workload::PingPong {
        from,
        to,
        payload_bytes,
        bidirectional,
        reps,
    } = spec.workload
    else {
        unreachable!("fig6_pingpong is a ping-pong spec");
    };
    let (measured, rec) = one_way_latency_timed(
        spec.torus_dims(),
        Coord::new(from.0, from.1, from.2),
        Coord::new(to.0, to.1, to.2),
        payload_bytes,
        bidirectional,
        reps,
        t.clone(),
    );
    let rec = rec.borrow();
    let (lifecycles, fold) = fold_lifecycles(rec.events());
    let summary = BreakdownSummary::from_lifecycles(&lifecycles);

    // The paper's six rows, folded into the recorder's five stages.
    let analytic: [(Stage, &str, f64); 5] = [
        (
            Stage::SenderOverhead,
            "write packet send initiated in processing slice",
            t.send_setup_ns,
        ),
        (
            Stage::Injection,
            "2 send-side on-chip router hops",
            t.send_ring_ns,
        ),
        (
            Stage::RouterWire,
            "X+ and X- link adapters (incl. torus wire)",
            2.0 * t.adapter_ns,
        ),
        (
            Stage::Delivery,
            "3 receive-side router hops + delivery to memory + poll",
            t.recv_ring_ns + t.deliver_poll_ns,
        ),
        (Stage::Sync, "counter visibility past delivery", 0.0),
    ];

    println!(
        "{} packet lifecycles recorded ({} incomplete, {} multicast skipped)\n",
        summary.packets, fold.incomplete, fold.multicast
    );
    println!("{:>56}  {:>8}  {:>8}", "stage", "measured", "analytic");
    let mut total = 0.0;
    for (stage, label, ns) in analytic {
        let m = summary.mean_ns(stage);
        println!("{label:>56}: {m:>5.0} ns  {ns:>5.0} ns");
        total += ns;
        assert!(
            (m - ns).abs() <= 0.01 * ns.max(1.0),
            "stage '{}': measured {m} ns vs analytic {ns} ns",
            stage.name()
        );
    }
    let mean_e2e = summary.mean_end_to_end_ns();
    println!(
        "{:>56}: {mean_e2e:>5.0} ns  {total:>5.0} ns",
        "TOTAL (paper: 162 ns)"
    );

    // Measured-vs-analytic agreement, within 1% (acceptance criterion).
    let rel = (mean_e2e - total).abs() / total;
    assert!(
        rel < 0.01,
        "measured {mean_e2e} ns vs analytic {total} ns ({:.2}%)",
        rel * 100.0
    );
    assert_eq!(measured.as_ns_f64().round() as u64, total.round() as u64);

    println!(
        "\nend-to-end DES measurement of the same transfer: {:.0} ns",
        measured.as_ns_f64()
    );
    println!("bandwidth context: off-chip link {} Gbit/s raw ({} Gbit/s effective data), on-chip ring {} Gbit/s",
        anton_net::LINK_RAW_GBPS, anton_net::LINK_EFFECTIVE_GBPS, anton_net::RING_GBPS);
}
