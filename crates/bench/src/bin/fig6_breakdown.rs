//! Figure 6: the component-by-component breakdown of the 162 ns
//! single-hop counted-remote-write latency, cross-checked against the
//! end-to-end DES measurement.

use anton_bench::one_way_latency;
use anton_bench::report::section;
use anton_net::Timing;
use anton_topo::{Coord, TorusDims};

fn main() {
    let t = Timing::default();
    section("Figure 6: single-hop (X) counted remote write latency breakdown");
    let rows = [
        ("write packet send initiated in processing slice", t.send_setup_ns),
        ("2 send-side on-chip router hops", t.send_ring_ns),
        ("X+ link adapter (incl. torus wire)", t.adapter_ns),
        ("X- link adapter", t.adapter_ns),
        ("3 receive-side on-chip router hops", t.recv_ring_ns),
        ("delivery to slice memory + successful poll", t.deliver_poll_ns),
    ];
    let mut total = 0.0;
    for (label, ns) in rows {
        println!("{label:>48}: {ns:>5.0} ns");
        total += ns;
    }
    println!("{:>48}: {total:>5.0} ns", "TOTAL (paper: 162 ns)");

    let dims = TorusDims::anton_512();
    let measured = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 8);
    println!(
        "\nend-to-end DES measurement of the same transfer: {:.0} ns",
        measured.as_ns_f64()
    );
    assert_eq!(measured.as_ns_f64().round() as u64, total.round() as u64);
    println!("bandwidth context: off-chip link {} Gbit/s raw ({} Gbit/s effective data), on-chip ring {} Gbit/s",
        anton_net::LINK_RAW_GBPS, anton_net::LINK_EFFECTIVE_GBPS, anton_net::RING_GBPS);
}
