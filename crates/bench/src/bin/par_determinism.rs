//! Determinism cross-check for the parallel DES engine.
//!
//! Runs a fixed workload mix — an 8×8×8 dimension-ordered all-reduce,
//! an MD neighbor-exchange skeleton, and a flight-recorded token relay —
//! on the sharded parallel simulation with `ANTON_THREADS` workers, and
//! writes an FNV-1a fingerprint of every observable (latencies, bitwise
//! results, merged statistics, and the merged flight-event trace) to
//! `target/obs/par_fingerprint.txt`.
//!
//! The file's content is a pure function of the *simulation*, never of
//! the thread count: CI runs this binary under `ANTON_THREADS=1` and
//! `ANTON_THREADS=4` and fails on any byte of difference.

use anton_collectives::{random_inputs, run_all_reduce_par, Algorithm};
use anton_core::{run_md_exchange_par, MdExchangeParams};
use anton_des::SimTime;
use anton_net::{
    threads_from_env, ClientAddr, ClientKind, CounterId, Ctx, Fabric, FaultPlan, NodeProgram,
    Packet, ParSimulation, Payload, ProgEvent,
};
use anton_obs::Fingerprint;
use anton_topo::{NodeId, TorusDims};

const C_TOK: CounterId = CounterId(7);

/// Token relay: every node forwards to the next id, three rounds.
struct Relay {
    left: u32,
}

impl Relay {
    fn arm_and_send(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let me = ClientAddr::new(node, ClientKind::Slice(0));
        ctx.watch_counter(me, C_TOK, 1);
        let next = NodeId((node.0 + 1) % ctx.dims().node_count());
        let pkt = Packet::write(
            me,
            ClientAddr::new(next, ClientKind::Slice(0)),
            0x1000,
            Payload::F64s(vec![node.0 as f64]),
        )
        .with_payload_bytes(8)
        .with_counter(C_TOK);
        ctx.send(pkt);
    }
}

impl NodeProgram for Relay {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => self.arm_and_send(node, ctx),
            ProgEvent::CounterReached { .. } => {
                let me = ClientAddr::new(node, ClientKind::Slice(0));
                let _ = ctx.mem_take(me, 0x1000);
                ctx.reset_counter(me, C_TOK);
                self.left -= 1;
                if self.left > 0 {
                    self.arm_and_send(node, ctx);
                }
            }
            _ => unreachable!(),
        }
    }
}

fn main() {
    let threads = threads_from_env();
    let mut fp = Fingerprint::new();

    // 1. All-reduce on the speedup-bench machine.
    let dims = TorusDims::new(8, 8, 8);
    let inputs = random_inputs(dims, 4, 42);
    let out = run_all_reduce_par(
        dims,
        Algorithm::DimensionOrdered,
        Default::default(),
        &inputs,
        threads,
    );
    fp.update(&out.latency);
    fp.update(&out.results);
    fp.update(&out.packets_sent);
    fp.update(&out.link_traversals);

    // 2. MD neighbor-exchange skeleton.
    let md = run_md_exchange_par(
        TorusDims::new(4, 4, 4),
        MdExchangeParams {
            steps: 5,
            ..Default::default()
        },
        threads,
    );
    fp.update(&md.makespan);
    fp.update(&md.checksums);
    fp.update(&md.stats);
    fp.update(&md.events);

    // 3. Flight-recorded relay: the merged trace itself is hashed.
    let rdims = TorusDims::new(4, 4, 4);
    let mut sim = ParSimulation::new(
        threads,
        move || Fabric::with_faults(rdims, anton_net::Timing::default(), FaultPlan::none()),
        |_| Relay { left: 3 },
    );
    sim.attach_flight_recorders();
    assert!(sim
        .run_guarded(SimTime(u64::MAX / 2), 10_000_000)
        .is_completed());
    fp.update(&sim.now());
    fp.update(&sim.merged_stats());
    for ev in sim.merged_flight_events() {
        fp.update(&ev);
    }

    let hex = fp.hex();
    std::fs::create_dir_all("target/obs").expect("create target/obs");
    // No thread count in the file: its bytes must be identical at every
    // ANTON_THREADS setting.
    let content = format!(
        "workloads: allreduce-8x8x8-dimord, md-exchange-4x4x4, relay-4x4x4-recorded\n\
         fingerprint: {hex}\n"
    );
    std::fs::write("target/obs/par_fingerprint.txt", &content)
        .expect("write target/obs/par_fingerprint.txt");
    println!("par_determinism: threads={threads} fingerprint={hex}");
}
