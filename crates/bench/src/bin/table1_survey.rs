//! Table 1: survey of published inter-node software-to-software
//! (ping-pong) latencies, with Anton's value measured on the simulated
//! machine.

use anton_baseline::{ANTON_LATENCY_US, LATENCY_SURVEY};
use anton_bench::one_way_latency;
use anton_bench::report::section;
use anton_topo::{Coord, TorusDims};

fn main() {
    let dims = TorusDims::anton_512();
    let measured = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 8);
    let measured_us = measured.as_us_f64();

    section("Table 1: published software-to-software ping-pong latencies");
    println!(
        "{:>26} {:>12} {:>6} {:>6}",
        "machine", "latency (us)", "year", "ref"
    );
    println!(
        "{:>26} {:>12.3} {:>6} {:>6}   <- measured on this simulator",
        "Anton", measured_us, 2009, "here"
    );
    for e in LATENCY_SURVEY {
        println!(
            "{:>26} {:>12.2} {:>6} {:>6}",
            e.machine, e.latency_us, e.year, e.reference
        );
    }
    println!("\npaper value for Anton: {ANTON_LATENCY_US} us; simulator: {measured_us:.3} us");
    assert!((measured_us - ANTON_LATENCY_US).abs() < 0.001);
    let next_best = LATENCY_SURVEY[0];
    println!(
        "margin over the best published machine ({}): {:.1}x",
        next_best.machine,
        next_best.latency_us / measured_us
    );
}
