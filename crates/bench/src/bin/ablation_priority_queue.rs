//! Ablation (§IV.B.1): the HTIS high-priority buffer queue. With the
//! queue, box pairs whose force results must travel farthest are
//! processed first, hiding their return latency behind the remaining
//! computation; without it, pairs run in arrival order.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;

fn main() {
    println!("HTIS high-priority queue ablation (DHFR-like, 512 nodes)");
    let mut results = Vec::new();
    for priority in [true, false] {
        let sys = SystemBuilder::dhfr_like().build();
        let mut md = MdParams::new(9.5, [32; 3]);
        md.dt = 1.0; // flexible water needs ~1 fs (the paper's system used constraints)
        let mut config = AntonConfig::new(md);
        config.priority_queue = priority;
        let mut eng = AntonMdEngine::new(sys, config, TorusDims::anton_512());
        let t1 = eng.step(); // range-limited
        let t2 = eng.step(); // long-range
        println!(
            "priority {}: range-limited {:.2} us, long-range {:.2} us",
            if priority { "ON " } else { "OFF" },
            t1.total.as_us_f64(),
            t2.total.as_us_f64()
        );
        results.push((t1.total, t2.total));
    }
    let (on, off) = (results[0], results[1]);
    println!(
        "\nrange-limited benefit: {:.2} us ({:.1}%)",
        off.0.as_us_f64() - on.0.as_us_f64(),
        (off.0.as_us_f64() - on.0.as_us_f64()) / off.0.as_us_f64() * 100.0
    );
    assert!(
        on.0 <= off.0,
        "the priority queue must not slow the step down"
    );
}
