//! Chaos campaign: sweep fault intensity against the recovering
//! all-reduce and assert the recovery invariants on every single run.
//!
//! Every campaign cell is a content-addressed scenario: the spec for
//! `(seed, level)` comes from [`presets::chaos_cell`], which owns the
//! level table (drop rate × node deaths) and the seed-derived death
//! schedules. A cell's spec hash therefore names the exact fault plan,
//! recovery config, and victims this binary ran — `scenario run` on the
//! same preset ledgers the identical execution.
//!
//! Every cell runs the collective on the sequential engine, on the
//! 2-thread sharded engine, and (sequential only) a second time as a
//! replay, then asserts:
//!
//!   1. **No lost completions** — every node that stays alive holds a
//!      result, and that result is the bit-exact sum over the root's
//!      contributor set (which includes every live node).
//!   2. **Bounded degradation** — completion latency stays within
//!      [`RecoveringParams::completion_bound`] for the tree height.
//!   3. **Bit-identical replay** — the sequential run, its replay, and
//!      the parallel run all share one
//!      [`RecoveringOutcome::fingerprint`]; fault handling is a pure
//!      function of the seed, never of scheduling.
//!
//! Any violation panics, which fails CI. The per-level degradation
//! curve (latency, reinjections, verdicts, losses — all event-level
//! and deterministic, never wall clock) is written to `BENCH_pr6.json`,
//! which is committed and drift-gated by `scripts/ci.sh`.
//!
//! Knobs (all optional):
//!
//! - `--smoke`: 3 seeds × 2 fault levels, no report — the fast CI gate.
//! - `ANTON_CHAOS_SEED`: first seed of the block (default 1). The
//!   committed `BENCH_pr6.json` corresponds to the default.
//! - `ANTON_CHAOS_LEVEL`: highest chaos level swept (default 3).
//! - `ANTON_CHAOS_EXTENDED=1`: after the standard matrix, sweep 10
//!   extra seeds per level and add a 4-thread bit-identity check.

use anton_collectives::{random_inputs, run_all_reduce_recovering, run_all_reduce_recovering_par};
use anton_collectives::{RecoveringOutcome, RecoveringParams};
use anton_net::{chaos_level_from_env, chaos_seed_from_env};
use anton_obs::BenchReport;
use anton_scenario::{presets, ScenarioSpec, Workload};

/// Bit-exact expected value: inputs summed over `origins` in ascending
/// origin order, exactly as the root folds them.
fn sum_over(inputs: &[Vec<f64>], vlen: usize, origins: &[u32]) -> Vec<f64> {
    let mut out = vec![0.0; vlen];
    for &o in origins {
        for (s, x) in out.iter_mut().zip(&inputs[o as usize]) {
            *s += *x;
        }
    }
    out
}

/// Assert every recovery invariant on one outcome. Returns the latency
/// so callers can fold the degradation curve.
fn check_invariants(
    spec: &ScenarioSpec,
    out: &RecoveringOutcome,
    inputs: &[Vec<f64>],
    label: &str,
) -> f64 {
    assert!(out.completed, "{label}: simulation wedged");
    let vlen = match &spec.workload {
        Workload::Recovering { vlen, .. } => *vlen as usize,
        _ => unreachable!("chaos cells are recovering specs"),
    };
    let height = spec.torus_dims().node_count().ilog2();
    let bound = RecoveringParams::default().completion_bound(height);
    assert!(
        out.latency <= bound,
        "{label}: latency {:?} exceeds the documented bound {:?}",
        out.latency,
        bound
    );
    let expect = sum_over(inputs, vlen, &out.contributors);
    for (i, result) in out.results.iter().enumerate() {
        let died = out.deaths.iter().any(|(v, _)| v.index() == i);
        match result {
            Some(v) => assert_eq!(
                *v, expect,
                "{label}: node {i} holds a wrong sum over contributors {:?}",
                out.contributors
            ),
            None => assert!(died, "{label}: live node {i} lost its completion"),
        }
        if !died {
            assert!(
                out.contributors.contains(&(i as u32)),
                "{label}: live node {i} missing from the final sum"
            );
        }
    }
    out.latency.as_us_f64()
}

/// Run one campaign cell on every engine and assert bit-identity. The
/// cell's entire configuration — inputs seed, fault plan, death
/// schedule, recovery config — is read off its scenario spec.
fn run_cell(seed: u64, level: usize, extended: bool) -> (ScenarioSpec, RecoveringOutcome) {
    let spec = presets::chaos_cell(seed, level as u32);
    let dims = spec.torus_dims();
    let (vlen, in_seed) = match &spec.workload {
        Workload::Recovering { vlen, seed, .. } => (*vlen as usize, *seed),
        _ => unreachable!("chaos cells are recovering specs"),
    };
    let inputs = random_inputs(dims, vlen, in_seed);
    let deaths = spec.deaths();
    let fault = spec.fault_plan();
    let recovery = spec.recovery_config();
    let params = RecoveringParams::default();
    let label = format!("L{level}/seed{seed}");

    let seq = run_all_reduce_recovering(dims, &inputs, fault.clone(), &deaths, recovery, params);
    check_invariants(&spec, &seq, &inputs, &label);

    let replay = run_all_reduce_recovering(dims, &inputs, fault.clone(), &deaths, recovery, params);
    assert_eq!(
        seq.fingerprint(),
        replay.fingerprint(),
        "{label}: replay diverged"
    );

    let par =
        run_all_reduce_recovering_par(dims, &inputs, fault.clone(), &deaths, recovery, params, 2);
    assert_eq!(
        seq.fingerprint(),
        par.fingerprint(),
        "{label}: 2-thread run diverged"
    );

    if extended {
        let par4 =
            run_all_reduce_recovering_par(dims, &inputs, fault, &deaths, recovery, params, 4);
        assert_eq!(
            seq.fingerprint(),
            par4.fingerprint(),
            "{label}: 4-thread run diverged"
        );
    }
    (spec, seq)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let extended = std::env::var("ANTON_CHAOS_EXTENDED").is_ok_and(|v| v == "1");
    let base_seed = chaos_seed_from_env();
    let max_level = chaos_level_from_env() as usize;

    if smoke {
        // The fast gate: 3 seeds × 2 fault levels (the quiet baseline
        // and the hottest enabled level), every invariant asserted.
        let hot = max_level.min(presets::CHAOS_LEVEL_COUNT as usize - 1);
        for level in [0, hot] {
            for seed in base_seed..base_seed + 3 {
                let (spec, out) = run_cell(seed, level, false);
                println!(
                    "chaos smoke L{level}/seed{seed} ({}): latency {:.2} us, {} verdicts, ok",
                    spec.hash_hex(),
                    out.latency.as_us_f64(),
                    out.verdicts
                );
            }
        }
        println!("chaos_campaign --smoke: all invariants held");
        return;
    }

    let mut report = BenchReport::new("pr6 chaos campaign degradation curve");
    let seeds_per_level = 3u64;
    for (level, drop_rate) in presets::CHAOS_DROP_RATES
        .iter()
        .enumerate()
        .take(max_level + 1)
    {
        let mut latency_us = 0.0;
        let mut reinjections = 0u64;
        let mut verdicts = 0u64;
        let mut suppressed = 0u64;
        let mut unrecovered = 0u64;
        for seed in base_seed..base_seed + seeds_per_level {
            let (spec, out) = run_cell(seed, level, extended);
            let (vlen, in_seed) = match &spec.workload {
                Workload::Recovering { vlen, seed, .. } => (*vlen as usize, *seed),
                _ => unreachable!(),
            };
            latency_us += check_invariants(
                &spec,
                &out,
                &random_inputs(spec.torus_dims(), vlen, in_seed),
                &format!("L{level}/seed{seed}"),
            );
            reinjections += out.recovery.reinjections;
            verdicts += out.verdicts as u64;
            suppressed += out.recovery.duplicates_suppressed;
            unrecovered += out.recovery.packets_lost_unrecovered;
        }
        let mean_us = latency_us / seeds_per_level as f64;
        println!(
            "chaos L{level} (drop {:.0e}, {} deaths): mean latency {:.2} us, \
             {reinjections} reinjections, {verdicts} verdicts",
            drop_rate,
            presets::CHAOS_DEATHS[level],
            mean_us
        );
        report.set(&format!("l{level}_latency_us_mean"), mean_us);
        report.set(&format!("l{level}_reinjections"), reinjections as f64);
        report.set(&format!("l{level}_verdicts"), verdicts as f64);
        report.set(
            &format!("l{level}_duplicates_suppressed"),
            suppressed as f64,
        );
        report.set(
            &format!("l{level}_packets_lost_unrecovered"),
            unrecovered as f64,
        );
        report.set(&format!("l{level}_invariant_violations"), 0.0);
    }

    if extended {
        // Deeper sweep: ten extra seeds per level, invariants only (the
        // committed report always reflects the standard matrix).
        for level in 0..=max_level {
            for seed in base_seed + seeds_per_level..base_seed + seeds_per_level + 10 {
                run_cell(seed, level, true);
            }
            println!("chaos extended L{level}: 10 extra seeds ok");
        }
    }

    // Only the default seed block regenerates the committed baseline;
    // a shifted ANTON_CHAOS_SEED run is exploratory.
    if base_seed == anton_net::CHAOS_SEED_DEFAULT
        && max_level == presets::CHAOS_LEVEL_COUNT as usize - 1
    {
        std::fs::write("BENCH_pr6.json", report.to_json()).expect("write BENCH_pr6.json");
        println!("chaos_campaign: wrote BENCH_pr6.json");
    } else {
        println!("chaos_campaign: non-default seed/level, skipping BENCH_pr6.json");
    }
}
