//! Wall-clock speedup of the sharded parallel DES engine, plus the
//! adaptive-vs-global lookahead comparison.
//!
//! Every workload constant here comes from the committed scenario
//! presets (`anton_scenario::presets`), so the runs this binary gates
//! are the same content-addressed specs the run ledger records:
//! `allreduce_888` + `md_balanced` for the PR-4 speedup table, and the
//! `md_balanced`/`md_skewed` pair for the PR-9 lookahead A/B.
//!
//! Part one runs the PR-4 acceptance workload — an 8×8×8
//! dimension-ordered all-reduce batch plus an MD neighbor-exchange
//! skeleton — at 1, 2, and 8 worker threads, asserts the simulated
//! observables are bit-identical across thread counts (fingerprinted),
//! prints the wall-clock table, and emits the *simulated* metrics
//! (which are deterministic, unlike wall time) to `BENCH_pr4.json`.
//!
//! Part two is the PR-9 A/B gate: the same MD exchange under
//! **global** (uniform 54 ns) and **adaptive** (per-slab-pair matrix)
//! windows at 1, 2, 4, and 8 threads. Every run must fingerprint
//! identically to the sequential engine; adaptive must never need more
//! windows than global (a deterministic invariant, asserted
//! unconditionally); and on hosts with ≥ 8 cores the 8-thread adaptive
//! wall clock must not lose to global. Deterministic window/recovery
//! metrics go to `BENCH_pr9.json` (drift-gated in CI); wall clocks go
//! to `target/obs/par_speedup_wall.json`, never committed.
//!
//! The ≥2× speedup assertion at 8 threads only arms when the host
//! actually has ≥8 cores; otherwise it downgrades to a warning so CI
//! containers with small CPU quotas don't flake.

use anton_bench::scenario::md_fingerprint;
use anton_collectives::{random_inputs, run_all_reduce_par, AllReduceOutcome};
use anton_core::{
    run_md_exchange, run_md_exchange_par, run_md_exchange_par_mode_profiled, MdExchangeOutcome,
};
use anton_des::{LookaheadMode, ParProfile};
use anton_obs::{BenchReport, Fingerprint, RuntimeSummary};
use anton_scenario::{presets, ScenarioSpec, Workload};
use std::time::Instant;

struct RunResult {
    wall_s: f64,
    fingerprint: String,
    allreduce: AllReduceOutcome,
    md: MdExchangeOutcome,
}

/// The PR-4 workload, wired straight off the committed specs.
fn run_workload(threads: usize, ar: &ScenarioSpec, md_spec: &ScenarioSpec) -> RunResult {
    let Workload::AllReduce {
        algorithm,
        vlen,
        seed,
        reps,
    } = &ar.workload
    else {
        unreachable!("allreduce_888 is an all-reduce spec");
    };
    let inputs = random_inputs(ar.torus_dims(), *vlen as usize, *seed);
    let start = Instant::now();
    let mut allreduce = None;
    for _ in 0..*reps {
        allreduce = Some(run_all_reduce_par(
            ar.torus_dims(),
            algorithm.algorithm(),
            Default::default(),
            &inputs,
            threads,
        ));
    }
    let md = run_md_exchange_par(
        md_spec.torus_dims(),
        md_spec.md_params().expect("md spec"),
        threads,
    );
    let wall_s = start.elapsed().as_secs_f64();
    let allreduce = allreduce.expect("at least one rep");

    let mut fp = Fingerprint::new();
    fp.update(&allreduce.latency);
    fp.update(&allreduce.results);
    fp.update(&allreduce.packets_sent);
    fp.update(&allreduce.link_traversals);
    fp.update(&md.makespan);
    fp.update(&md.checksums);
    fp.update(&md.stats);
    fp.update(&md.events);
    RunResult {
        wall_s,
        fingerprint: fp.hex(),
        allreduce,
        md,
    }
}

struct ModeRun {
    threads: usize,
    mode: LookaheadMode,
    wall_s: f64,
    /// Fingerprint over the full sharded outcome (stats + events).
    full_fp: String,
    profile: ParProfile,
}

/// The PR-9 A/B: MD exchange under global vs adaptive windows at every
/// thread count, checked against the sequential engine's fingerprint.
/// The workload is `spec` (one of the committed MD presets), so the
/// sequential fingerprint printed here is exactly what `scenario run`
/// ledgers for that spec hash.
fn run_mode_comparison(
    cores: usize,
    label: &str,
    spec: &ScenarioSpec,
) -> (Vec<ModeRun>, ParProfile, ParProfile) {
    let dims = spec.torus_dims();
    let params = spec.md_params().expect("md spec");
    let seq = run_md_exchange(dims, params);
    let seq_fp = md_fingerprint(&seq);
    println!(
        "\npar_speedup: adaptive vs global lookahead, {}-step {label} MD exchange \
         (spec {}, sequential fingerprint {seq_fp})",
        params.steps,
        spec.hash_hex()
    );
    println!(
        "{:>8} {:>9} {:>10} {:>9} {:>11} {:>10}",
        "threads", "mode", "wall [s]", "windows", "ev/window", "recovered"
    );

    let mut runs = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        for mode in [LookaheadMode::Global, LookaheadMode::Adaptive] {
            let start = Instant::now();
            let (out, profile) = run_md_exchange_par_mode_profiled(dims, params, threads, mode);
            let wall_s = start.elapsed().as_secs_f64();
            assert_eq!(
                md_fingerprint(&out),
                seq_fp,
                "{mode} windows at {threads} threads diverged from the sequential engine"
            );
            let mut fp = Fingerprint::new();
            fp.update(&out.makespan);
            fp.update(&out.checksums);
            fp.update(&out.stats);
            fp.update(&out.events);
            let full_fp = fp.hex();
            println!(
                "{threads:>8} {:>9} {wall_s:>10.3} {:>9} {:>11.1} {:>10}",
                mode.to_string(),
                profile.windows,
                profile.events_per_window(),
                profile.recovered_events,
            );
            runs.push(ModeRun {
                threads,
                mode,
                wall_s,
                full_fp,
                profile,
            });
        }
    }

    // Among sharded runs, the *complete* outcome — merged stats and the
    // total event count included — is bit-identical across both modes
    // and every thread count.
    for r in &runs[1..] {
        assert_eq!(
            r.full_fp, runs[0].full_fp,
            "{} windows at {} threads changed the sharded outcome",
            r.mode, r.threads
        );
    }

    // Deterministic invariants, asserted on every host:
    // window partitions are a pure function of (workload, plan, mode),
    // so each mode's counts are thread-invariant ...
    for mode in [LookaheadMode::Global, LookaheadMode::Adaptive] {
        let of_mode: Vec<&ModeRun> = runs.iter().filter(|r| r.mode == mode).collect();
        for r in &of_mode[1..] {
            assert_eq!(
                r.profile.windows, of_mode[0].profile.windows,
                "{mode} window count changed with thread count"
            );
            assert_eq!(
                r.profile.recovered_events,
                of_mode[0].profile.recovered_events
            );
            assert_eq!(
                r.profile.extended_shard_windows,
                of_mode[0].profile.extended_shard_windows
            );
        }
    }
    let pg = runs
        .iter()
        .find(|r| r.mode == LookaheadMode::Global)
        .unwrap()
        .profile
        .clone();
    let pa = runs
        .iter()
        .find(|r| r.mode == LookaheadMode::Adaptive)
        .unwrap()
        .profile
        .clone();
    // ... adaptive windows are provably never narrower than global ones,
    // and the recovered accounting is zero under the global bound.
    assert!(
        pa.windows <= pg.windows,
        "adaptive needed more windows ({} vs {})",
        pa.windows,
        pg.windows
    );
    assert_eq!(
        pg.recovered_events, 0,
        "global windows cannot recover events"
    );
    assert_eq!(pg.extended_shard_windows, 0);

    // The wall-clock speedup gate: at 8 threads, adaptive must not lose
    // to global. Wall time is host-dependent, so the gate only arms on
    // hosts that can actually run 8 workers; 5% slack absorbs scheduler
    // noise on shared runners.
    let wall_of = |mode: LookaheadMode, threads: usize| {
        runs.iter()
            .find(|r| r.mode == mode && r.threads == threads)
            .map(|r| r.wall_s)
            .unwrap()
    };
    let adaptive8 = wall_of(LookaheadMode::Adaptive, 8);
    let global8 = wall_of(LookaheadMode::Global, 8);
    if cores >= 8 {
        assert!(
            adaptive8 <= global8 * 1.05,
            "adaptive lookahead lost to the global bound at 8 threads on the \
             {label} workload ({adaptive8:.3}s vs {global8:.3}s)"
        );
        println!(
            "par_speedup: {label} adaptive/global 8-thread wall ratio {:.2} (gate met)",
            adaptive8 / global8.max(1e-9)
        );
    } else {
        println!(
            "par_speedup: host has only {cores} cores; {label} adaptive/global \
             8-thread ratio {:.2} reported without asserting the gate",
            adaptive8 / global8.max(1e-9)
        );
    }
    (runs, pg, pa)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let ar_spec = presets::allreduce_888();
    let md_spec = presets::md_balanced();
    let md_skew_spec = presets::md_skewed();
    println!(
        "par_speedup: specs {} ({}) + {} ({}), {cores} host cores",
        ar_spec.name,
        ar_spec.hash_hex(),
        md_spec.name,
        md_spec.hash_hex()
    );
    println!(
        "{:>8} {:>10} {:>9}  fingerprint",
        "threads", "wall [s]", "speedup"
    );

    let mut results = Vec::new();
    for &threads in &[1usize, 2, 8] {
        let r = run_workload(threads, &ar_spec, &md_spec);
        let speedup = results
            .first()
            .map(|(_, base): &(usize, RunResult)| base.wall_s / r.wall_s)
            .unwrap_or(1.0);
        println!(
            "{threads:>8} {:>10.3} {speedup:>8.2}x  {}",
            r.wall_s, r.fingerprint
        );
        results.push((threads, r));
    }

    // Bit-identity across thread counts is non-negotiable.
    let base_fp = &results[0].1.fingerprint;
    for (threads, r) in &results {
        assert_eq!(
            &r.fingerprint, base_fp,
            "thread count {threads} changed the simulation"
        );
    }

    let speedup8 = results[0].1.wall_s / results[2].1.wall_s;
    if cores >= 8 {
        assert!(
            speedup8 >= 2.0,
            "8-thread speedup {speedup8:.2}x is below the 2x acceptance bar"
        );
        println!("par_speedup: 8-thread speedup {speedup8:.2}x (>= 2x bar met)");
    } else {
        println!(
            "par_speedup: host has only {cores} cores; 8-thread speedup \
             {speedup8:.2}x reported without asserting the 2x bar"
        );
    }

    // Simulated metrics only — deterministic, so the emitted report is
    // byte-stable and safe to commit next to the bench_regress baseline.
    let base = &results[0].1;
    let mut report = BenchReport::new("pr4 parallel-engine workload");
    report.set(
        "par_allreduce_888_dimord_us",
        base.allreduce.latency.as_us_f64(),
    );
    report.set("par_allreduce_packets", base.allreduce.packets_sent as f64);
    report.set(
        "par_md_exchange_makespan_us",
        (base.md.makespan - anton_des::SimTime::ZERO).as_us_f64(),
    );
    report.set("par_md_exchange_events", base.md.events as f64);
    std::fs::write("BENCH_pr4.json", report.to_json()).expect("write BENCH_pr4.json");
    println!("par_speedup: wrote BENCH_pr4.json");

    // Part two: the adaptive-vs-global A/B and its committed report.
    // On the balanced workload the two modes provably tie (symmetric
    // shard heads); on the skewed workload adaptive must strictly win
    // the deterministic window count — both facts are committed.
    let (runs, pg, pa) = run_mode_comparison(cores, "balanced", &md_spec);
    let (skew_runs, spg, spa) = run_mode_comparison(cores, "skewed", &md_skew_spec);
    assert!(
        spa.windows < spg.windows,
        "adaptive windows must strictly beat global on the skewed workload \
         ({} vs {})",
        spa.windows,
        spg.windows
    );
    assert!(
        spa.recovered_events > 0,
        "the skewed workload must recover events past the global bound"
    );
    let mut pr9 = BenchReport::new("pr9 adaptive lookahead vs global bound (MD exchange)");
    RuntimeSummary::from_profile(&pg).record_into(&mut pr9, "md_global");
    RuntimeSummary::from_profile(&pa).record_into(&mut pr9, "md_adaptive");
    RuntimeSummary::from_profile(&spg).record_into(&mut pr9, "mdskew_global");
    RuntimeSummary::from_profile(&spa).record_into(&mut pr9, "mdskew_adaptive");
    pr9.set_directed(
        "md_window_reduction_pct",
        100.0 * (1.0 - pa.windows as f64 / pg.windows as f64),
        anton_obs::Direction::HigherIsBetter,
    );
    pr9.set_directed(
        "mdskew_window_reduction_pct",
        100.0 * (1.0 - spa.windows as f64 / spg.windows as f64),
        anton_obs::Direction::HigherIsBetter,
    );
    std::fs::write("BENCH_pr9.json", pr9.to_json()).expect("write BENCH_pr9.json");
    println!("par_speedup: wrote BENCH_pr9.json");

    // Wall clocks are host noise, never committed: they land under
    // target/obs/ for CI artifact upload and local inspection.
    std::fs::create_dir_all("target/obs").expect("create target/obs");
    let mut wall = BenchReport::new("par_speedup wall clocks (host-dependent, uncommitted)");
    for (threads, r) in &results {
        wall.set(&format!("pr4_workload_t{threads}_wall_s"), r.wall_s);
    }
    for r in &runs {
        wall.set(
            &format!("md_{}_t{}_wall_s", r.profile_mode_key(), r.threads),
            r.wall_s,
        );
    }
    for r in &skew_runs {
        wall.set(
            &format!("mdskew_{}_t{}_wall_s", r.profile_mode_key(), r.threads),
            r.wall_s,
        );
    }
    std::fs::write("target/obs/par_speedup_wall.json", wall.to_json())
        .expect("write par_speedup_wall.json");
    println!("par_speedup: wrote target/obs/par_speedup_wall.json");
}

impl ModeRun {
    fn profile_mode_key(&self) -> &'static str {
        match self.mode {
            LookaheadMode::Global => "global",
            LookaheadMode::Adaptive => "adaptive",
        }
    }
}
