//! Wall-clock speedup of the sharded parallel DES engine.
//!
//! Runs the PR-4 acceptance workload — an 8×8×8 dimension-ordered
//! all-reduce batch plus an MD neighbor-exchange skeleton — at 1, 2,
//! and 8 worker threads, asserts the simulated observables are
//! bit-identical across thread counts (fingerprinted), prints the
//! wall-clock table, and emits the *simulated* metrics (which are
//! deterministic, unlike wall time) to `BENCH_pr4.json`.
//!
//! The ≥2× speedup assertion at 8 threads only arms when the host
//! actually has ≥8 cores; otherwise it downgrades to a warning so CI
//! containers with small CPU quotas don't flake.

use anton_collectives::{random_inputs, run_all_reduce_par, Algorithm, AllReduceOutcome};
use anton_core::{run_md_exchange_par, MdExchangeOutcome, MdExchangeParams};
use anton_obs::{BenchReport, Fingerprint};
use anton_topo::TorusDims;
use std::time::Instant;

const ALLREDUCE_REPS: u32 = 6;
const MD_STEPS: u32 = 30;

fn dims() -> TorusDims {
    TorusDims::new(8, 8, 8)
}

struct RunResult {
    wall_s: f64,
    fingerprint: String,
    allreduce: AllReduceOutcome,
    md: MdExchangeOutcome,
}

fn run_workload(threads: usize) -> RunResult {
    let inputs = random_inputs(dims(), 4, 42);
    let start = Instant::now();
    let mut allreduce = None;
    for _ in 0..ALLREDUCE_REPS {
        allreduce = Some(run_all_reduce_par(
            dims(),
            Algorithm::DimensionOrdered,
            Default::default(),
            &inputs,
            threads,
        ));
    }
    let md = run_md_exchange_par(
        dims(),
        MdExchangeParams {
            steps: MD_STEPS,
            ..Default::default()
        },
        threads,
    );
    let wall_s = start.elapsed().as_secs_f64();
    let allreduce = allreduce.expect("at least one rep");

    let mut fp = Fingerprint::new();
    fp.update(&allreduce.latency);
    fp.update(&allreduce.results);
    fp.update(&allreduce.packets_sent);
    fp.update(&allreduce.link_traversals);
    fp.update(&md.makespan);
    fp.update(&md.checksums);
    fp.update(&md.stats);
    fp.update(&md.events);
    RunResult {
        wall_s,
        fingerprint: fp.hex(),
        allreduce,
        md,
    }
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "par_speedup: 8x8x8 all-reduce x{ALLREDUCE_REPS} + {MD_STEPS}-step MD exchange \
         ({cores} host cores)"
    );
    println!(
        "{:>8} {:>10} {:>9}  fingerprint",
        "threads", "wall [s]", "speedup"
    );

    let mut results = Vec::new();
    for &threads in &[1usize, 2, 8] {
        let r = run_workload(threads);
        let speedup = results
            .first()
            .map(|(_, base): &(usize, RunResult)| base.wall_s / r.wall_s)
            .unwrap_or(1.0);
        println!(
            "{threads:>8} {:>10.3} {speedup:>8.2}x  {}",
            r.wall_s, r.fingerprint
        );
        results.push((threads, r));
    }

    // Bit-identity across thread counts is non-negotiable.
    let base_fp = &results[0].1.fingerprint;
    for (threads, r) in &results {
        assert_eq!(
            &r.fingerprint, base_fp,
            "thread count {threads} changed the simulation"
        );
    }

    let speedup8 = results[0].1.wall_s / results[2].1.wall_s;
    if cores >= 8 {
        assert!(
            speedup8 >= 2.0,
            "8-thread speedup {speedup8:.2}x is below the 2x acceptance bar"
        );
        println!("par_speedup: 8-thread speedup {speedup8:.2}x (>= 2x bar met)");
    } else {
        println!(
            "par_speedup: host has only {cores} cores; 8-thread speedup \
             {speedup8:.2}x reported without asserting the 2x bar"
        );
    }

    // Simulated metrics only — deterministic, so the emitted report is
    // byte-stable and safe to commit next to the bench_regress baseline.
    let base = &results[0].1;
    let mut report = BenchReport::new("pr4 parallel-engine workload");
    report.set(
        "par_allreduce_888_dimord_us",
        base.allreduce.latency.as_us_f64(),
    );
    report.set("par_allreduce_packets", base.allreduce.packets_sent as f64);
    report.set(
        "par_md_exchange_makespan_us",
        (base.md.makespan - anton_des::SimTime::ZERO).as_us_f64(),
    );
    report.set("par_md_exchange_events", base.md.events as f64);
    std::fs::write("BENCH_pr4.json", report.to_json()).expect("write BENCH_pr4.json");
    println!("par_speedup: wrote BENCH_pr4.json");
}
