//! Robustness ablation: sweep the link fault rate and measure how
//! gracefully the machine degrades. Anton's network is lossless to
//! software because a link-level CRC + retransmission protocol hides
//! transient faults; this experiment prices that protocol. Each rate r
//! injects drops at r and corruptions at r/2 per link traversal
//! (deterministic in the seed), with the default retransmit budget of 8.
//!
//! Three workloads, each against its fault-free baseline:
//! - ping-pong one-way latency (the paper's 162 ns headline),
//! - a 32-byte dimension-ordered all-reduce on 512 nodes (Table 2),
//! - one full DHFR-like MD time step on a 4x4x4 machine.

use anton_bench::one_way_latency_faulty;
use anton_collectives::{random_inputs, run_all_reduce_faulty, Algorithm};
use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_net::FaultPlan;
use anton_topo::{Coord, TorusDims};

const SEED: u64 = 2010;

fn plan(rate: f64) -> FaultPlan {
    FaultPlan::seeded(SEED)
        .with_drop_rate(rate)
        .with_corrupt_rate(rate / 2.0)
}

fn main() {
    let rates = [0.0f64, 1e-4, 1e-3, 1e-2, 5e-2, 0.1];
    println!("Fault-rate ablation (drop rate r, corrupt rate r/2, retry budget 8)");
    println!(
        "{:>8} {:>12} {:>8} {:>13} {:>8} {:>13} {:>8} {:>12}",
        "rate",
        "pingpong ns",
        "vs base",
        "allreduce us",
        "vs base",
        "md step us",
        "vs base",
        "retransmits"
    );

    let dims512 = TorusDims::anton_512();
    let ar_inputs = random_inputs(dims512, 4, 7);
    let md_dims = TorusDims::new(4, 4, 4);

    let mut base: Option<(f64, f64, f64)> = None;
    let mut prev_ping = 0.0;
    for rate in rates {
        let ping = one_way_latency_faulty(
            dims512,
            Coord::new(0, 0, 0),
            Coord::new(1, 0, 0),
            0,
            false,
            32,
            plan(rate),
        );
        let ar = run_all_reduce_faulty(
            dims512,
            Algorithm::DimensionOrdered,
            Default::default(),
            &ar_inputs,
            plan(rate),
        );

        let sys = SystemBuilder::dhfr_like().build();
        let mut md = MdParams::new(9.5, [32; 3]);
        md.dt = 1.0;
        let mut config = AntonConfig::new(md);
        config.fault = plan(rate);
        let mut eng = AntonMdEngine::new(sys, config, md_dims);
        // `stats_total` is cumulative over every DES run (the bootstrap
        // force evaluation included); diff against a snapshot so the
        // reported retransmits cover exactly the swept step.
        let after_bootstrap = eng.stats_total.clone();
        let (md_us, retransmits) = match eng.try_step() {
            Ok(t) => {
                let step_stats = eng.stats_total.diff(&after_bootstrap);
                (Some(t.total.as_us_f64()), step_stats.retransmits)
            }
            Err(stall) => {
                println!("  MD step stalled at rate {rate}:\n{stall}");
                (None, 0)
            }
        };

        let ping_ns = ping.map(|d| d.as_ns_f64());
        let ar_us = ar.as_ref().map(|o| o.latency.as_us_f64());
        if base.is_none() {
            base = Some((
                ping_ns.expect("fault-free ping-pong completes"),
                ar_us.expect("fault-free all-reduce completes"),
                md_us.expect("fault-free MD step completes"),
            ));
        }
        let (b_ping, b_ar, b_md) = base.unwrap();
        let fmt = |v: Option<f64>| {
            v.map(|x| format!("{x:.2}"))
                .unwrap_or_else(|| "stall".into())
        };
        let ratio = |v: Option<f64>, b: f64| {
            v.map(|x| format!("{:.3}x", x / b))
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>8} {:>12} {:>8} {:>13} {:>8} {:>13} {:>8} {:>12}",
            format!("{rate}"),
            fmt(ping_ns),
            ratio(ping_ns, b_ping),
            fmt(ar_us),
            ratio(ar_us, b_ar),
            fmt(md_us),
            ratio(md_us, b_md),
            retransmits,
        );

        // Degradation must be smooth: each workload completes at every
        // swept rate and latency never improves as faults increase.
        let p = ping_ns.expect("ping-pong completes at every swept rate");
        assert!(p + 1e-9 >= prev_ping, "latency must degrade monotonically");
        prev_ping = p;
        assert!(ar_us.is_some(), "all-reduce completes at every swept rate");
        assert!(md_us.is_some(), "MD step completes at every swept rate");
    }
    let (b_ping, _, _) = base.unwrap();
    assert!(
        (b_ping - 162.0).abs() < 1.0,
        "fault-free baseline must reproduce the 162 ns headline"
    );
    println!(
        "\nthe reliability sublayer degrades smoothly: at 10% drops the machine\n\
         still completes every workload, paying only retransmission latency —\n\
         the paper's losslessness guarantee priced under deliberate abuse."
    );
}
