//! §III.D's bandwidth claim: the message size at which a link achieves
//! 50% of its peak data bandwidth. The paper: 28 bytes on Anton vs.
//! 1.4 KB / 16 KB / 39 KB on Blue Gene/L, Red Storm, and ASC Purple.

use anton_baseline::{ANTON_HALF_BANDWIDTH_BYTES, HALF_BANDWIDTH_SURVEY};
use anton_bench::report::section;
use anton_bench::streaming_bandwidth_gbps;

fn main() {
    section("Streaming data bandwidth vs message size (one Anton link)");
    let payloads = [8u32, 16, 24, 28, 32, 48, 64, 96, 128, 192, 256];
    let peak = streaming_bandwidth_gbps(256, 512);
    println!("{:>10} {:>14} {:>10}", "bytes", "Gbit/s", "of peak");
    let mut half_point = None;
    let mut prev: Option<(u32, f64)> = None;
    for &p in &payloads {
        let bw = streaming_bandwidth_gbps(p, 512);
        let frac = bw / peak;
        println!("{:>10} {:>14.2} {:>9.0}%", p, bw, frac * 100.0);
        if half_point.is_none() && frac >= 0.5 {
            half_point = Some(match prev {
                // Linear interpolation to the 50% crossing.
                Some((p0, f0)) if frac > f0 => {
                    p0 as f64 + (p - p0) as f64 * (0.5 - f0) / (frac - f0)
                }
                _ => p as f64,
            });
        }
        prev = Some((p, frac));
    }
    let hp = half_point.expect("peak fraction crosses 50%");
    println!("\nAnton half-bandwidth message size (simulated): {hp:.0} bytes");
    println!("paper: {ANTON_HALF_BANDWIDTH_BYTES} bytes");
    assert!((20.0..40.0).contains(&hp), "half point {hp}");

    section("Published half-bandwidth sizes for comparison machines [25]");
    for e in HALF_BANDWIDTH_SURVEY {
        println!(
            "{:>14}: {:>7} bytes ({}x Anton)",
            e.machine,
            e.half_bandwidth_bytes,
            e.half_bandwidth_bytes / ANTON_HALF_BANDWIDTH_BYTES
        );
    }
}
