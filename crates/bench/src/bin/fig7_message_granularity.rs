//! Figure 7: total time to transfer 2 KB between nodes as a function of
//! the number of messages used — Anton at 1 and 4 hops vs. a DDR
//! InfiniBand cluster. Panel (a) absolute, panel (b) normalized to the
//! single-message transfer.

use anton_baseline::IbModel;
use anton_bench::report::section;
use anton_bench::split_transfer_time;
use anton_topo::TorusDims;

fn main() {
    let dims = TorusDims::anton_512();
    let ib = IbModel::default();
    let total = 2048u32;
    let ks = [1u32, 2, 4, 8, 16, 32, 64];

    let anton1: Vec<f64> = ks
        .iter()
        .map(|&k| split_transfer_time(dims, 1, total, k).as_us_f64())
        .collect();
    let anton4: Vec<f64> = ks
        .iter()
        .map(|&k| split_transfer_time(dims, 4, total, k).as_us_f64())
        .collect();
    let ib_t: Vec<f64> = ks
        .iter()
        .map(|&k| ib.split_transfer_us(total as u64, k))
        .collect();

    section("Figure 7(a): 2 KB transfer time (us) vs number of messages");
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "messages", "Anton 1hop", "Anton 4hop", "InfiniBand"
    );
    for (i, &k) in ks.iter().enumerate() {
        println!(
            "{:>9} {:>12.3} {:>12.3} {:>12.2}",
            k, anton1[i], anton4[i], ib_t[i]
        );
    }

    section("Figure 7(b): normalized to the single-message transfer");
    println!(
        "{:>9} {:>12} {:>12} {:>12}",
        "messages", "Anton 1hop", "Anton 4hop", "InfiniBand"
    );
    for (i, &k) in ks.iter().enumerate() {
        println!(
            "{:>9} {:>12.2} {:>12.2} {:>12.2}",
            k,
            anton1[i] / anton1[0],
            anton4[i] / anton4[0],
            ib_t[i] / ib_t[0]
        );
    }
    println!(
        "\npaper shape: Anton's curves stay nearly flat (<~1.6x at 64 messages);\n\
         the cluster interconnect grows several-fold — per-message overhead\n\
         dominates commodity networks."
    );
    assert!(anton1[6] / anton1[0] < 2.0, "Anton must stay nearly flat");
    assert!(ib_t[6] / ib_t[0] > 3.0, "IB must degrade steeply");
}
