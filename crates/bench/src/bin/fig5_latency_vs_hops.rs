//! Figure 5: one-way counted-remote-write latency vs. network hops on a
//! 512-node (8×8×8) machine — 0-byte and 256-byte payloads, uni- and
//! bidirectional ping-pong. Hops 1–4 run along X; 5–12 add Y and Z hops
//! (shortest-path routing along each dimension), exactly the paper's
//! sweep.

use anton_bench::one_way_latency;
use anton_bench::report::section;
use anton_topo::{Coord, TorusDims};

fn dest_for_hops(hops: u32) -> Coord {
    let hx = hops.min(4);
    let hy = hops.saturating_sub(4).min(4);
    let hz = hops.saturating_sub(8).min(4);
    Coord::new(hx, hy, hz)
}

fn main() {
    let dims = TorusDims::anton_512();
    let src = Coord::new(0, 0, 0);
    section("Figure 5: one-way latency (ns) vs network hops, 8x8x8 machine");
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>14}",
        "hops", "0B uni", "0B bidir", "256B uni", "256B bidir"
    );
    for hops in 0..=12u32 {
        let dst = if hops == 0 {
            Coord::new(0, 0, 0)
        } else {
            dest_for_hops(hops)
        };
        let mut row = Vec::new();
        for payload in [0u32, 256] {
            for bidir in [false, true] {
                let d = if hops == 0 {
                    // 0-hop: between slices on the same node; ping-pong
                    // over the on-chip ring.
                    anton_bench::one_way_latency_local(dims, src, payload, bidir, 8)
                } else {
                    one_way_latency(dims, src, dst, payload, bidir, 8)
                };
                row.push(d.as_ns_f64());
            }
        }
        println!(
            "{:>4} {:>12.0} {:>12.0} {:>14.0} {:>14.0}",
            hops, row[0], row[1], row[2], row[3]
        );
    }
    println!();
    println!("paper anchors: 1 hop (X) = 162 ns; +76 ns/hop in X; +54 ns/hop in Y/Z;");
    println!("12 hops is the 8x8x8 diameter (~5x the single-hop latency).");
    let d1 = one_way_latency(dims, src, Coord::new(1, 0, 0), 0, false, 8);
    let d12 = one_way_latency(dims, src, Coord::new(4, 4, 4), 0, false, 8);
    println!(
        "measured: 1 hop = {:.0} ns, 12 hops = {:.0} ns (ratio {:.2})",
        d1.as_ns_f64(),
        d12.as_ns_f64(),
        d12.as_ns_f64() / d1.as_ns_f64()
    );
}
