//! Perf-regression harness CLI: run the canonical suite into a
//! schema-versioned JSON report and diff reports against the committed
//! baseline with a percentage threshold.
//!
//! ```text
//! bench_regress emit [--full] [--out PATH]        run suite, write JSON
//! bench_regress diff BASELINE CURRENT [--threshold PCT]
//! bench_regress check BASELINE [--full] [--threshold PCT]
//! ```
//!
//! `diff`/`check` exit non-zero if any metric regressed past the
//! threshold (default 10%). All metrics are simulated time — lower is
//! better, and drift means a model change, not host noise.

use anton_bench::suite::run_suite;
use anton_obs::BenchReport;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_regress emit [--full] [--out PATH]\n\
       \x20      bench_regress diff BASELINE CURRENT [--threshold PCT]\n\
       \x20      bench_regress check BASELINE [--full] [--threshold PCT]"
    );
    ExitCode::from(2)
}

fn read_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    BenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn diff_reports(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> ExitCode {
    let diff = match current.diff(baseline, threshold) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_regress: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", diff.table());
    if diff.has_regressions() {
        eprintln!(
            "bench_regress: {} metric(s) regressed more than {threshold}%",
            diff.regression_count()
        );
        ExitCode::FAILURE
    } else {
        println!("bench_regress: no regressions past {threshold}%");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut out: Option<String> = None;
    let mut threshold = 10.0;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage(),
            },
            "--threshold" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => threshold = t,
                None => return usage(),
            },
            _ => positional.push(a.clone()),
        }
    }

    match positional.first().map(String::as_str) {
        Some("emit") if positional.len() == 1 => {
            let report = run_suite(full);
            let json = report.to_json();
            match out {
                Some(path) => {
                    if let Some(dir) = std::path::Path::new(&path).parent() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                    if let Err(e) = std::fs::write(&path, &json) {
                        eprintln!("bench_regress: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path}");
                }
                None => println!("{json}"),
            }
            ExitCode::SUCCESS
        }
        Some("diff") if positional.len() == 3 => {
            let (base, cur) = (&positional[1], &positional[2]);
            match (read_report(base), read_report(cur)) {
                (Ok(b), Ok(c)) => diff_reports(&b, &c, threshold),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("bench_regress: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check") if positional.len() == 2 => match read_report(&positional[1]) {
            Ok(baseline) => {
                let current = run_suite(full);
                diff_reports(&baseline, &current, threshold)
            }
            Err(e) => {
                eprintln!("bench_regress: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
