//! Perf-regression harness CLI: run the canonical suite into a
//! schema-versioned JSON report and diff reports against the committed
//! baseline with a percentage threshold.
//!
//! ```text
//! bench_regress emit [--full] [--out PATH]        run suite, write JSON
//! bench_regress diff BASELINE CURRENT [--threshold PCT]
//! bench_regress check BASELINE [--full] [--threshold PCT]
//! bench_regress check --baseline NAME [--index PATH] [--full] [--threshold PCT]
//! ```
//!
//! `diff`/`check` exit non-zero if any metric regressed past the
//! threshold (default 10%). Regressions are direction-aware: metrics
//! default to lower-is-better, and metrics tagged higher-is-better
//! (efficiencies) gate on drops instead. `check --baseline` resolves a
//! *named* baseline through the committed `BENCH_trajectory.json`
//! index instead of hard-coding a report path.

use anton_bench::suite::run_suite;
use anton_obs::{BenchReport, TrajectoryIndex};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_regress emit [--full] [--out PATH]\n\
       \x20      bench_regress diff BASELINE CURRENT [--threshold PCT]\n\
       \x20      bench_regress check BASELINE [--full] [--threshold PCT]\n\
       \x20      bench_regress check --baseline NAME [--index PATH] [--full] [--threshold PCT]"
    );
    ExitCode::from(2)
}

/// Resolve a named baseline through the trajectory index.
fn resolve_baseline(index_path: &str, name: &str) -> Result<String, String> {
    let index = TrajectoryIndex::load(std::path::Path::new(index_path))?;
    index.resolve(name).map(|e| e.path.clone()).ok_or_else(|| {
        format!(
            "baseline {name:?} not in {index_path} (have: {})",
            index.names().join(", ")
        )
    })
}

/// The "did you mean a *named* baseline?" suffix for a missing report
/// path — the common slip is passing an index name (`pr6`) where a
/// report path goes, or a stale path the trajectory no longer ships.
fn missing_report_hint(index_path: &str) -> String {
    match TrajectoryIndex::load(std::path::Path::new(index_path)) {
        Ok(index) if !index.entries.is_empty() => format!(
            " (named baselines in {index_path}: {}; use check --baseline NAME)",
            index.names().join(", ")
        ),
        _ => String::new(),
    }
}

fn read_report(path: &str, index_path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        let hint = if std::path::Path::new(path).exists() {
            String::new()
        } else {
            missing_report_hint(index_path)
        };
        format!("{path}: {e}{hint}")
    })?;
    BenchReport::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn diff_reports(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> ExitCode {
    let diff = match current.diff(baseline, threshold) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_regress: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", diff.table());
    if diff.has_regressions() {
        eprintln!(
            "bench_regress: {} metric(s) regressed more than {threshold}%",
            diff.regression_count()
        );
        ExitCode::FAILURE
    } else {
        println!("bench_regress: no regressions past {threshold}%");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut out: Option<String> = None;
    let mut threshold = 10.0;
    let mut baseline_name: Option<String> = None;
    let mut index_path = "BENCH_trajectory.json".to_owned();
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage(),
            },
            "--threshold" => match it.next().and_then(|t| t.parse().ok()) {
                Some(t) => threshold = t,
                None => return usage(),
            },
            "--baseline" => match it.next() {
                Some(n) => baseline_name = Some(n.clone()),
                None => return usage(),
            },
            "--index" => match it.next() {
                Some(p) => index_path = p.clone(),
                None => return usage(),
            },
            _ => positional.push(a.clone()),
        }
    }

    // A named baseline resolves to a report path through the index and
    // then flows through the ordinary positional-path check.
    if let Some(name) = baseline_name {
        if positional.as_slice() != ["check"] {
            return usage();
        }
        match resolve_baseline(&index_path, &name) {
            Ok(path) => {
                println!("bench_regress: baseline '{name}' -> {path}");
                positional.push(path);
            }
            Err(e) => {
                eprintln!("bench_regress: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match positional.first().map(String::as_str) {
        Some("emit") if positional.len() == 1 => {
            let report = run_suite(full);
            let json = report.to_json();
            match out {
                Some(path) => {
                    if let Some(dir) = std::path::Path::new(&path).parent() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                    if let Err(e) = std::fs::write(&path, &json) {
                        eprintln!("bench_regress: {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path}");
                }
                None => println!("{json}"),
            }
            ExitCode::SUCCESS
        }
        Some("diff") if positional.len() == 3 => {
            let (base, cur) = (&positional[1], &positional[2]);
            match (
                read_report(base, &index_path),
                read_report(cur, &index_path),
            ) {
                (Ok(b), Ok(c)) => diff_reports(&b, &c, threshold),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("bench_regress: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("check") if positional.len() == 2 => match read_report(&positional[1], &index_path) {
            Ok(baseline) => {
                let current = run_suite(full);
                diff_reports(&baseline, &current, threshold)
            }
            Err(e) => {
                eprintln!("bench_regress: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}
