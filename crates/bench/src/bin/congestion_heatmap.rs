//! Congestion telemetry demo: run a deterministic contended traffic
//! mix with both the flight recorder and the activity tracer installed,
//! build the time-binned per-link congestion map, and export it as a
//! CSV, Chrome-trace counter tracks, and an ASCII heatmap — all under
//! `target/obs/`. The map's per-direction busy totals are cross-checked
//! against the tracer's independently recorded link activity.

use anton_des::{SimDuration, SimTime, TrackId};
use anton_net::{
    ClientAddr, ClientKind, Ctx, Fabric, FaultPlan, NodeProgram, Packet, Payload, ProgEvent,
    Simulation, Timing,
};
use anton_obs::{validate_json, ChromeTraceBuilder, CongestionMap, FlightRecorder};
use anton_topo::{LinkDir, NodeId, TorusDims};
use std::rc::Rc;

/// Every node showers its +X/+Y neighbors and one far corner with
/// writes at start — enough cross-traffic to contend on links.
struct Shower {
    plan: Rc<Vec<(u32, u32, u32)>>,
}

impl NodeProgram for Shower {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        if !matches!(pe, ProgEvent::Start) {
            return;
        }
        for &(src, dst, bytes) in self.plan.iter() {
            if NodeId(src) != node {
                continue;
            }
            let pkt = Packet::write(
                ClientAddr::new(node, ClientKind::Slice(0)),
                ClientAddr::new(NodeId(dst), ClientKind::Slice(0)),
                0x40,
                Payload::Empty,
            )
            .with_payload_bytes(bytes);
            ctx.send(pkt);
        }
    }
}

/// Deterministic traffic plan: a full X+Y neighbor shower plus long
/// diagonal flows that pile onto the same X links.
fn make_plan(dims: TorusDims) -> Vec<(u32, u32, u32)> {
    let n = dims.node_count();
    let mut plan = Vec::new();
    for src in 0..n {
        let c = NodeId(src).coord(dims);
        for (dx, dy) in [(1, 0), (0, 1)] {
            let d = anton_topo::offset(c, [dx, dy, 0], dims);
            plan.push((src, d.node_id(dims).0, 64));
        }
        // Every fourth node also fires a large packet across the
        // machine diagonal — multi-hop flows that serialize on links.
        if src % 4 == 0 {
            let far = anton_topo::offset(c, [2, 2, 1], dims);
            plan.push((src, far.node_id(dims).0, 256));
        }
    }
    plan
}

fn main() {
    let dims = TorusDims::new(4, 4, 4);
    let plan = Rc::new(make_plan(dims));
    println!(
        "running {} planned writes across {} nodes...",
        plan.len(),
        dims.node_count()
    );

    let mut fabric = Fabric::with_faults(dims, Timing::default(), FaultPlan::none());
    fabric.enable_tracing();
    let rec = FlightRecorder::new().into_shared();
    fabric.set_recorder(Box::new(rec.clone()));
    let p2 = plan.clone();
    let mut sim = Simulation::new(fabric, move |_| Shower { plan: p2.clone() });
    assert!(sim
        .run_guarded(SimTime(u64::MAX / 2), 10_000_000)
        .is_completed());
    let end = sim.now();

    // ---- build the congestion map from the recorded lifecycles ----
    let bin = SimDuration::from_ns(50);
    let rec = rec.borrow();
    let map = CongestionMap::build(rec.events(), bin);
    println!(
        "{} links saw traffic over {} bins of {}; peak queue depth {}",
        map.links().count(),
        map.bins(),
        bin,
        map.max_queue_depth()
    );

    // ---- cross-check against the independent activity tracer ----
    let tracer = &sim.world.fabric.tracer;
    for (i, dir) in LinkDir::ALL.iter().enumerate() {
        let from_map = map.busy_for_direction(*dir);
        let from_tracer = tracer.busy_time(TrackId(i as u16), SimTime::ZERO, end);
        assert_eq!(
            from_map.as_ps(),
            from_tracer.as_ps(),
            "direction {dir}: congestion map and tracer must agree"
        );
    }
    println!("per-direction busy totals agree with the activity tracer");
    // The tracer's binned utilization series for the hottest direction.
    let (hottest, _) = LinkDir::ALL
        .iter()
        .enumerate()
        .map(|(i, d)| (*d, tracer.busy_time(TrackId(i as u16), SimTime::ZERO, end)))
        .max_by_key(|&(_, busy)| busy.as_ps())
        .expect("six directions");
    let series = tracer.utilization_bins(TrackId(hottest.index() as u16), SimTime::ZERO, end, 10);
    println!(
        "{hottest} utilization over 10 bins: [{}]",
        series
            .iter()
            .map(|u| format!("{:.2}", u))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // ---- exports ----
    let csv = map.to_csv();
    let mut trace = ChromeTraceBuilder::new();
    trace.name_process(1, "link congestion (4x4x4 shower)");
    map.counter_tracks(&mut trace, 1, 8);
    let trace_json = trace.finish();
    validate_json(&trace_json).expect("counter tracks are well-formed JSON");

    std::fs::create_dir_all("target/obs").expect("create target/obs");
    std::fs::write("target/obs/congestion.csv", &csv).expect("write congestion.csv");
    std::fs::write("target/obs/congestion_trace.json", &trace_json)
        .expect("write congestion_trace.json");

    println!("\nhottest links (busy time):");
    for ((node, dir), busy) in map.hottest_links(8) {
        println!("  node {:>3} {dir}: {busy}", node.0);
    }
    println!("\n{}", map.ascii_heatmap(12));
    println!("wrote target/obs/congestion.csv and target/obs/congestion_trace.json");
    println!("open congestion_trace.json at https://ui.perfetto.dev");
}
