//! # anton-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper (see DESIGN.md's
//! experiment index). Each `src/bin/` binary prints one table or figure
//! as the paper reports it, with paper-published values alongside for
//! comparison; the Criterion benches exercise the same code paths for
//! host-side performance tracking.

#![warn(missing_docs)]

pub mod microbench;
pub mod observatory;
pub mod report;
pub mod scenario;
pub mod suite;

pub use microbench::{
    multicast_vs_unicast, neighbor_exchange, one_way_latency, one_way_latency_faulty,
    one_way_latency_local, one_way_latency_recorded, one_way_latency_timed, split_transfer_time,
    streaming_bandwidth_gbps, ExchangeOutcome, ExchangeStyle,
};
