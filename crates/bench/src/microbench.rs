//! Low-level communication microbenchmarks on the simulated fabric —
//! the programs behind Figures 5, 7, and 8.

use anton_des::{SimDuration, SimTime};
use anton_net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, FaultPlan, NodeProgram, Packet, PatternId,
    Payload, ProgEvent, Simulation, MAX_PAYLOAD_BYTES,
};
use anton_topo::{Coord, MulticastPattern, NodeId, TorusDims};
use std::cell::RefCell;
use std::rc::Rc;

fn slice0(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Slice(0))
}

/// Ping-pong between two nodes: each "ping" is one message of
/// `payload_bytes`; the receiver's counter fire triggers the reply.
/// With `bidirectional`, both nodes run independent ping-pong streams
/// simultaneously (the paper's bidirectional test), which contends on
/// the Tensilica cores and runs slightly slower.
struct PingPong {
    peer_of: [(NodeId, NodeId); 2],
    payload_bytes: u32,
    bidirectional: bool,
    /// (stream, count) completed; finish time per stream.
    finished: Rc<RefCell<Vec<Option<SimTime>>>>,
    remaining: [u32; 2],
    /// Pings the responder still expects; it stops re-arming its watch
    /// after the last one so a finished run quiesces with no counter
    /// armed (the run guard reads a leftover watch as a stall).
    pings_to_answer: [u32; 2],
}

impl PingPong {
    fn send_ping(&self, stream: usize, from: NodeId, to: NodeId, ctx: &mut Ctx<'_, '_>) {
        let pkt = Packet::write(
            slice0(from),
            slice0(to),
            0x100 + stream as u64,
            Payload::Empty,
        )
        .with_payload_bytes(self.payload_bytes)
        .with_counter(CounterId(stream as u16))
        .with_tag(stream as u64);
        ctx.send(pkt);
    }
}

impl NodeProgram for PingPong {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                let streams: &[usize] = if self.bidirectional { &[0, 1] } else { &[0] };
                for &s in streams {
                    let (a, b) = self.peer_of[s];
                    if node == a || node == b {
                        ctx.watch_counter(slice0(node), CounterId(s as u16), 1);
                    }
                    if node == a {
                        self.send_ping(s, a, b, ctx);
                    }
                }
            }
            ProgEvent::CounterReached { counter, .. } => {
                let s = counter.0 as usize;
                let (a, b) = self.peer_of[s];
                let peer = if node == a { b } else { a };
                // Initiator counts completed rounds.
                if node == a {
                    self.remaining[s] -= 1;
                    if self.remaining[s] == 0 {
                        self.finished.borrow_mut()[s] = Some(ctx.now());
                        return;
                    }
                    ctx.reset_counter(slice0(node), counter);
                    ctx.watch_counter(slice0(node), counter, 1);
                } else {
                    self.pings_to_answer[s] -= 1;
                    ctx.reset_counter(slice0(node), counter);
                    if self.pings_to_answer[s] > 0 {
                        ctx.watch_counter(slice0(node), counter, 1);
                    }
                }
                self.send_ping(s, node, peer, ctx);
            }
            _ => unreachable!(),
        }
    }
}

/// Measured one-way latency between `src` and `dst` (averaged over
/// `iters` round trips).
pub fn one_way_latency(
    dims: TorusDims,
    src: Coord,
    dst: Coord,
    payload_bytes: u32,
    bidirectional: bool,
    iters: u32,
) -> SimDuration {
    one_way_latency_faulty(
        dims,
        src,
        dst,
        payload_bytes,
        bidirectional,
        iters,
        FaultPlan::none(),
    )
    .expect("fault-free ping-pong completes")
}

/// [`one_way_latency`] under a fault-injection plan: the measured mean
/// includes retransmission delays. Returns `None` if a ping was lost
/// beyond the retransmit budget (the ping-pong then stalls and is
/// diagnosed by the run guard rather than hanging).
#[allow(clippy::too_many_arguments)]
pub fn one_way_latency_faulty(
    dims: TorusDims,
    src: Coord,
    dst: Coord,
    payload_bytes: u32,
    bidirectional: bool,
    iters: u32,
    fault: FaultPlan,
) -> Option<SimDuration> {
    ping_pong_run(
        dims,
        src,
        dst,
        payload_bytes,
        bidirectional,
        iters,
        anton_net::Timing::default(),
        fault,
        None,
    )
}

/// [`one_way_latency`] with a packet flight recorder installed on the
/// fabric: returns the measured latency plus the recorder holding every
/// packet lifecycle of the run. Recording must not perturb timing — the
/// returned latency is bit-identical to the unrecorded run.
pub fn one_way_latency_recorded(
    dims: TorusDims,
    src: Coord,
    dst: Coord,
    payload_bytes: u32,
    bidirectional: bool,
    iters: u32,
) -> (SimDuration, anton_obs::SharedFlightRecorder) {
    one_way_latency_timed(
        dims,
        src,
        dst,
        payload_bytes,
        bidirectional,
        iters,
        anton_net::Timing::default(),
    )
}

/// [`one_way_latency_recorded`] under a caller-supplied [`Timing`]
/// model — the knob the causal what-if harness turns to compare a
/// retimed prediction against an actual perturbed re-run.
///
/// [`Timing`]: anton_net::Timing
#[allow(clippy::too_many_arguments)]
pub fn one_way_latency_timed(
    dims: TorusDims,
    src: Coord,
    dst: Coord,
    payload_bytes: u32,
    bidirectional: bool,
    iters: u32,
    timing: anton_net::Timing,
) -> (SimDuration, anton_obs::SharedFlightRecorder) {
    let rec = anton_obs::FlightRecorder::new().into_shared();
    let lat = ping_pong_run(
        dims,
        src,
        dst,
        payload_bytes,
        bidirectional,
        iters,
        timing,
        FaultPlan::none(),
        Some(Box::new(rec.clone())),
    )
    .expect("fault-free ping-pong completes");
    (lat, rec)
}

#[allow(clippy::too_many_arguments)]
fn ping_pong_run(
    dims: TorusDims,
    src: Coord,
    dst: Coord,
    payload_bytes: u32,
    bidirectional: bool,
    iters: u32,
    timing: anton_net::Timing,
    fault: FaultPlan,
    recorder: Option<Box<dyn anton_obs::Recorder + Send>>,
) -> Option<SimDuration> {
    assert!(iters >= 1);
    let finished = Rc::new(RefCell::new(vec![None; 2]));
    let f2 = finished.clone();
    let (a, b) = (src.node_id(dims), dst.node_id(dims));
    let mut fabric = Fabric::with_faults(dims, timing, fault);
    if let Some(rec) = recorder {
        fabric.set_recorder(rec);
    }
    let mut sim = Simulation::new(fabric, move |_| PingPong {
        peer_of: [(a, b), (b, a)],
        payload_bytes,
        bidirectional,
        finished: f2.clone(),
        remaining: [iters, iters],
        pings_to_answer: [iters, iters],
    });
    if !sim
        .run_guarded(SimTime(u64::MAX / 2), 100_000_000)
        .is_completed()
    {
        return None;
    }
    let done = finished.borrow();
    let t = done[0]?;
    // Each iteration is a full round trip: 2 one-way messages.
    Some(SimDuration::from_ps(
        (t - SimTime::ZERO).as_ps() / (2 * iters as u64),
    ))
}

/// The 0-hop case of Figure 5: ping-pong between two slices on the same
/// node (crosses only the on-chip ring).
pub fn one_way_latency_local(
    dims: TorusDims,
    node_coord: Coord,
    payload_bytes: u32,
    bidirectional: bool,
    iters: u32,
) -> SimDuration {
    struct LocalPing {
        node: NodeId,
        payload: u32,
        bidirectional: bool,
        remaining: [u32; 2],
        finished: Rc<RefCell<Vec<Option<SimTime>>>>,
    }
    impl LocalPing {
        fn send(&self, stream: usize, from: u8, to: u8, ctx: &mut Ctx<'_, '_>) {
            let pkt = Packet::write(
                ClientAddr::new(self.node, ClientKind::Slice(from)),
                ClientAddr::new(self.node, ClientKind::Slice(to)),
                0x10 + stream as u64,
                Payload::Empty,
            )
            .with_payload_bytes(self.payload)
            .with_counter(CounterId(stream as u16));
            ctx.send(pkt);
        }
    }
    impl NodeProgram for LocalPing {
        fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
            if node != self.node {
                return;
            }
            match pe {
                ProgEvent::Start => {
                    let streams: &[usize] = if self.bidirectional { &[0, 1] } else { &[0] };
                    for &s in streams {
                        let (a, b) = if s == 0 { (0u8, 1u8) } else { (1, 0) };
                        // Both ends arm their counters up front.
                        for sl in [a, b] {
                            ctx.watch_counter(
                                ClientAddr::new(node, ClientKind::Slice(sl)),
                                CounterId(s as u16),
                                1,
                            );
                        }
                        self.send(s, a, b, ctx);
                    }
                }
                ProgEvent::CounterReached { client, counter } => {
                    let s = counter.0 as usize;
                    let me = match client {
                        ClientKind::Slice(i) => i,
                        _ => unreachable!(),
                    };
                    let initiator = if s == 0 { 0u8 } else { 1 };
                    if me == initiator {
                        self.remaining[s] -= 1;
                        if self.remaining[s] == 0 {
                            self.finished.borrow_mut()[s] = Some(ctx.now());
                            return;
                        }
                    }
                    let mine = ClientAddr::new(node, ClientKind::Slice(me));
                    ctx.reset_counter(mine, counter);
                    ctx.watch_counter(mine, counter, 1);
                    let other = if me == 0 { 1 } else { 0 };
                    self.send(s, me, other, ctx);
                }
                _ => unreachable!(),
            }
        }
    }
    let finished = Rc::new(RefCell::new(vec![None; 2]));
    let f2 = finished.clone();
    let id = node_coord.node_id(dims);
    let mut sim = Simulation::new(Fabric::new(dims), move |_| LocalPing {
        node: id,
        payload: payload_bytes,
        bidirectional,
        remaining: [iters, iters],
        finished: f2.clone(),
    });
    sim.run();
    let t = finished.borrow()[0].expect("stream 0 completes");
    SimDuration::from_ps((t - SimTime::ZERO).as_ps() / (2 * iters as u64))
}

/// Split-transfer test of Figure 7: move `total_bytes` from one node to
/// another as `k` equal application messages (each becoming one or more
/// packets when above the 256-byte payload limit); returns total time.
struct SplitTransfer {
    src: NodeId,
    dst: NodeId,
    total_bytes: u32,
    k: u32,
    done: Rc<RefCell<Option<SimTime>>>,
}

/// Number of packets and their sizes for one application message.
fn packetize(bytes: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut left = bytes;
    while left > 0 {
        let take = left.min(MAX_PAYLOAD_BYTES);
        out.push(take);
        left -= take;
    }
    if out.is_empty() {
        out.push(0);
    }
    out
}

impl NodeProgram for SplitTransfer {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => {
                if node == self.dst {
                    let msg_bytes = self.total_bytes / self.k;
                    let packets: u64 = (0..self.k).map(|_| packetize(msg_bytes).len() as u64).sum();
                    ctx.watch_counter(slice0(self.dst), CounterId(0), packets);
                }
                if node == self.src {
                    let msg_bytes = self.total_bytes / self.k;
                    let mut addr = 0u64;
                    for _ in 0..self.k {
                        for p in packetize(msg_bytes) {
                            let pkt = Packet::write(
                                slice0(self.src),
                                slice0(self.dst),
                                addr,
                                Payload::Empty,
                            )
                            .with_payload_bytes(p)
                            .with_counter(CounterId(0));
                            ctx.send(pkt);
                            addr += 0x200;
                        }
                    }
                }
            }
            ProgEvent::CounterReached { .. } => {
                *self.done.borrow_mut() = Some(ctx.now());
            }
            _ => unreachable!(),
        }
    }
}

/// Total time to transfer `total_bytes` split into `k` messages over
/// `hops` X-dimension hops.
pub fn split_transfer_time(dims: TorusDims, hops: u32, total_bytes: u32, k: u32) -> SimDuration {
    let src = Coord::new(0, 0, 0);
    let dst = Coord::new(hops, 0, 0);
    let done = Rc::new(RefCell::new(None));
    let d2 = done.clone();
    let (s, d) = (src.node_id(dims), dst.node_id(dims));
    let mut sim = Simulation::new(Fabric::new(dims), move |_| SplitTransfer {
        src: s,
        dst: d,
        total_bytes,
        k,
        done: d2.clone(),
    });
    sim.run();
    let t = done.borrow().expect("transfer completes");
    t - SimTime::ZERO
}

/// All-neighbor exchange styles of Figure 8(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeStyle {
    /// One round: every node sends fine-grained packets directly to each
    /// of its 26 neighbors (Anton's preferred schedule).
    Direct,
    /// Three stages (X, then Y, then Z), data forwarded and aggregated
    /// between stages — 6 messages per node (the commodity-cluster
    /// pattern).
    Staged,
}

struct Exchange {
    style: ExchangeStyle,
    /// Payload bytes each node contributes (its "block").
    block_bytes: u32,
    done: Rc<RefCell<Vec<Option<SimTime>>>>,
    stage: usize,
    /// Application-level messages this node has sent (a message may span
    /// several packets).
    app_messages: Rc<RefCell<u64>>,
}

impl Exchange {
    fn send_block(
        &self,
        from: NodeId,
        to: Coord,
        bytes: u32,
        counter: CounterId,
        ctx: &mut Ctx<'_, '_>,
    ) {
        *self.app_messages.borrow_mut() += 1;
        let dims = ctx.dims();
        let mut addr = 0x4000 + from.0 as u64 * 0x40;
        for p in packetize(bytes) {
            let pkt = Packet::write(slice0(from), slice0(to.node_id(dims)), addr, Payload::Empty)
                .with_payload_bytes(p)
                .with_counter(counter);
            ctx.send(pkt);
            addr += 0x200;
        }
    }

    fn staged_targets(dims: TorusDims, me: Coord, stage: usize) -> Vec<Coord> {
        let dim = anton_topo::Dim::ALL[stage];
        let n = dims.len(dim);
        let mut out = Vec::new();
        for d in [-1i64, 1] {
            let c = anton_topo::offset(
                me,
                [
                    if dim.index() == 0 { d } else { 0 },
                    if dim.index() == 1 { d } else { 0 },
                    if dim.index() == 2 { d } else { 0 },
                ],
                dims,
            );
            if c != me && !out.contains(&c) {
                out.push(c);
            }
        }
        let _ = n;
        out
    }

    /// Bytes forwarded at a given stage: the accumulated slab grows 3×
    /// per stage (own + two neighbors).
    fn stage_bytes(&self, stage: usize) -> u32 {
        self.block_bytes * 3u32.pow(stage as u32)
    }
}

impl NodeProgram for Exchange {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        let dims = ctx.dims();
        let me = node.coord(dims);
        match pe {
            ProgEvent::Start => match self.style {
                ExchangeStyle::Direct => {
                    let neighbors = anton_topo::moore_neighbors(me, dims);
                    let packets_per_block = packetize(self.block_bytes).len() as u64;
                    ctx.watch_counter(
                        slice0(node),
                        CounterId(0),
                        neighbors.len() as u64 * packets_per_block,
                    );
                    for nb in neighbors {
                        self.send_block(node, nb, self.block_bytes, CounterId(0), ctx);
                    }
                }
                ExchangeStyle::Staged => {
                    let targets = Self::staged_targets(dims, me, 0);
                    let per = packetize(self.stage_bytes(0)).len() as u64;
                    ctx.watch_counter(slice0(node), CounterId(1), targets.len() as u64 * per);
                    for t in targets {
                        self.send_block(node, t, self.stage_bytes(0), CounterId(1), ctx);
                    }
                }
            },
            ProgEvent::CounterReached { counter, .. } => match self.style {
                ExchangeStyle::Direct => {
                    debug_assert_eq!(counter, CounterId(0));
                    self.done.borrow_mut()[node.index()] = Some(ctx.now());
                }
                ExchangeStyle::Staged => {
                    self.stage += 1;
                    if self.stage >= 3 {
                        self.done.borrow_mut()[node.index()] = Some(ctx.now());
                        return;
                    }
                    let targets = Self::staged_targets(dims, me, self.stage);
                    let bytes = self.stage_bytes(self.stage);
                    let per = packetize(bytes).len() as u64;
                    let c = CounterId(1 + self.stage as u16);
                    ctx.watch_counter(slice0(node), c, targets.len() as u64 * per);
                    for t in targets {
                        self.send_block(node, t, bytes, c, ctx);
                    }
                }
            },
            _ => unreachable!(),
        }
    }
}

/// Outcome of an all-neighbor exchange.
#[derive(Debug, Clone, Copy)]
pub struct ExchangeOutcome {
    /// Time until the last node holds all its neighbors' data.
    pub completion: SimDuration,
    /// Application-level messages sent per node.
    pub messages_per_node: f64,
}

/// Run an all-neighbor exchange machine-wide; completion is when the
/// last node has all its neighbors' data.
pub fn neighbor_exchange(
    dims: TorusDims,
    style: ExchangeStyle,
    block_bytes: u32,
) -> ExchangeOutcome {
    let n = dims.node_count() as usize;
    let done = Rc::new(RefCell::new(vec![None; n]));
    let app = Rc::new(RefCell::new(0u64));
    let (d2, a2) = (done.clone(), app.clone());
    let mut sim = Simulation::new(Fabric::new(dims), move |_| Exchange {
        style,
        block_bytes,
        done: d2.clone(),
        stage: 0,
        app_messages: a2.clone(),
    });
    sim.run();
    let latest = done
        .borrow()
        .iter()
        .map(|t| t.expect("all nodes complete"))
        .max()
        .expect("nonempty");
    let total_app = *app.borrow();
    ExchangeOutcome {
        completion: latest - SimTime::ZERO,
        messages_per_node: total_app as f64 / n as f64,
    }
}

/// Effective data bandwidth (Gbit/s) achieved streaming `count` packets
/// of `payload_bytes` across one link.
pub fn streaming_bandwidth_gbps(payload_bytes: u32, count: u64) -> f64 {
    let dims = TorusDims::new(4, 1, 1);
    let done = Rc::new(RefCell::new(None));
    let d2 = done.clone();
    let (s, d) = (
        Coord::new(0, 0, 0).node_id(dims),
        Coord::new(1, 0, 0).node_id(dims),
    );
    struct Stream {
        src: NodeId,
        dst: NodeId,
        payload: u32,
        count: u64,
        done: Rc<RefCell<Option<SimTime>>>,
    }
    impl NodeProgram for Stream {
        fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
            match pe {
                ProgEvent::Start => {
                    if node == self.dst {
                        ctx.watch_counter(slice0(self.dst), CounterId(0), self.count);
                    }
                    if node == self.src {
                        // Injected by the HTIS, which has hardware packet
                        // assembly (no Tensilica per-send cost): measures
                        // the wire, not the core.
                        for i in 0..self.count {
                            let pkt = Packet::write(
                                ClientAddr::new(self.src, ClientKind::Htis),
                                slice0(self.dst),
                                i * 0x200,
                                Payload::Empty,
                            )
                            .with_payload_bytes(self.payload)
                            .with_counter(CounterId(0));
                            ctx.send(pkt);
                        }
                    }
                }
                ProgEvent::CounterReached { .. } => {
                    *self.done.borrow_mut() = Some(ctx.now());
                }
                _ => unreachable!(),
            }
        }
    }
    let mut sim = Simulation::new(Fabric::new(dims), move |_| Stream {
        src: s,
        dst: d,
        payload: payload_bytes,
        count,
        done: d2.clone(),
    });
    sim.run();
    let t = done.borrow().expect("completes");
    let ns = (t - SimTime::ZERO).as_ns_f64();
    payload_bytes as f64 * count as f64 * 8.0 / ns
}

/// Multicast vs repeated unicast (the §IV.B.1 motivation): time and
/// sender packet count to deliver one position packet to every HTIS in
/// an import set.
pub fn multicast_vs_unicast(
    dims: TorusDims,
    src: Coord,
    dests: &[Coord],
    payload_bytes: u32,
) -> (SimDuration, SimDuration, u64, u64) {
    #[derive(Clone)]
    struct Fanout {
        src: NodeId,
        dests: Vec<NodeId>,
        payload: u32,
        multicast: bool,
        done: Rc<RefCell<Vec<Option<SimTime>>>>,
    }
    impl NodeProgram for Fanout {
        fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
            match pe {
                ProgEvent::Start => {
                    if self.dests.contains(&node) {
                        ctx.watch_counter(ClientAddr::new(node, ClientKind::Htis), CounterId(0), 1);
                    }
                    if node == self.src {
                        if self.multicast {
                            let pkt = Packet::write(
                                slice0(node),
                                ClientAddr::new(node, ClientKind::Htis),
                                0x10,
                                Payload::Empty,
                            )
                            .with_payload_bytes(self.payload)
                            .with_counter(CounterId(0))
                            .into_multicast(PatternId(0), ClientKind::Htis);
                            ctx.send(pkt);
                        } else {
                            for &d in &self.dests {
                                let pkt = Packet::write(
                                    slice0(node),
                                    ClientAddr::new(d, ClientKind::Htis),
                                    0x10,
                                    Payload::Empty,
                                )
                                .with_payload_bytes(self.payload)
                                .with_counter(CounterId(0));
                                ctx.send(pkt);
                            }
                        }
                    }
                }
                ProgEvent::CounterReached { .. } => {
                    let i = self
                        .dests
                        .iter()
                        .position(|&d| d == node)
                        .expect("a destination");
                    self.done.borrow_mut()[i] = Some(ctx.now());
                }
                _ => unreachable!(),
            }
        }
    }
    let run = |multicast: bool| -> (SimDuration, u64) {
        let mut fabric = Fabric::new(dims);
        if multicast {
            let p = MulticastPattern::build(src, dests, dims);
            fabric.register_pattern(PatternId(0), &p);
        }
        let done = Rc::new(RefCell::new(vec![None; dests.len()]));
        let d2 = done.clone();
        let dest_ids: Vec<NodeId> = dests.iter().map(|c| c.node_id(dims)).collect();
        let s = src.node_id(dims);
        let payload = payload_bytes;
        let mut sim = Simulation::new(fabric, move |_| Fanout {
            src: s,
            dests: dest_ids.clone(),
            payload,
            multicast,
            done: d2.clone(),
        });
        sim.run();
        let latest = done
            .borrow()
            .iter()
            .map(|t| t.expect("delivered"))
            .max()
            .expect("nonempty");
        (
            latest - SimTime::ZERO,
            sim.world.fabric.stats.link_traversals,
        )
    };
    let (t_multi, trav_multi) = run(true);
    let (t_uni, trav_uni) = run(false);
    (t_multi, t_uni, trav_multi, trav_uni)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_reproduces_162ns() {
        let dims = TorusDims::anton_512();
        let d = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 4);
        assert_eq!(d, SimDuration::from_ns(162));
    }

    #[test]
    fn recorder_does_not_perturb_timing() {
        // Observer effect guard: installing the flight recorder must not
        // change simulated time by a single picosecond, and the disabled
        // path must still reproduce the paper's 162 ns.
        let dims = TorusDims::anton_512();
        let plain = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 4);
        let (recorded, rec) =
            one_way_latency_recorded(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 4);
        assert_eq!(plain, recorded);
        assert_eq!(plain, SimDuration::from_ns(162));
        assert!(!rec.borrow().is_empty(), "recorder captured events");
    }

    #[test]
    fn bidirectional_is_slightly_slower() {
        let dims = TorusDims::anton_512();
        let uni = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(2, 0, 0), 0, false, 8);
        let bi = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(2, 0, 0), 0, true, 8);
        assert!(bi >= uni, "bi {bi} vs uni {uni}");
        assert!(
            bi.as_ns_f64() < uni.as_ns_f64() * 1.3,
            "bi {bi} vs uni {uni}"
        );
    }

    #[test]
    fn split_transfer_grows_mildly_with_message_count() {
        // Figure 7: Anton's curve is nearly flat.
        let dims = TorusDims::anton_512();
        let t1 = split_transfer_time(dims, 1, 2048, 1);
        let t64 = split_transfer_time(dims, 1, 2048, 64);
        let ratio = t64.as_ns_f64() / t1.as_ns_f64();
        assert!((1.0..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn direct_exchange_beats_staged_on_anton() {
        let dims = TorusDims::new(4, 4, 4);
        let direct = neighbor_exchange(dims, ExchangeStyle::Direct, 256);
        let staged = neighbor_exchange(dims, ExchangeStyle::Staged, 256);
        assert!(
            direct.completion < staged.completion,
            "direct {} vs staged {}",
            direct.completion,
            staged.completion
        );
        // And staged uses far fewer messages — the commodity trade-off.
        assert!(staged.messages_per_node < direct.messages_per_node);
    }

    #[test]
    fn streaming_bandwidth_has_a_half_point_near_28_bytes() {
        let full = streaming_bandwidth_gbps(256, 256);
        let half = streaming_bandwidth_gbps(28, 256);
        let frac = half / full;
        assert!((0.35..0.65).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn multicast_beats_unicast_fanout() {
        let dims = TorusDims::anton_512();
        let src = Coord::new(4, 4, 4);
        let dests: Vec<Coord> = anton_topo::moore_neighbors(src, dims)
            .into_iter()
            .take(17)
            .collect();
        let (t_multi, t_uni, trav_multi, trav_uni) = multicast_vs_unicast(dims, src, &dests, 28);
        assert!(t_multi <= t_uni, "{t_multi} vs {t_uni}");
        assert!(trav_multi < trav_uni, "{trav_multi} vs {trav_uni}");
    }
}
