//! The observatory collection pass: run the canonical suite plus the
//! attribution workloads and assemble one [`ObservatoryReport`].
//!
//! Four workloads feed the report, mirroring the repo's standing CI
//! gates so a component regression here always has a matching
//! first-class experiment to drill into:
//!
//! 1. **Canonical suite** ([`run_suite`]) — the headline latency and
//!    collective metrics (plus the DHFR step when not `quick`).
//! 2. **Causal blame** — the 512-node diameter one-way transfer,
//!    recorded, rebuilt as a causal DAG, and re-timed (optionally under
//!    a [`Perturbation`]) into per-stage critical-path blame shares.
//!    The shares land both as the gated `blame_pct` section and as
//!    `blame_*_pct` metrics, so the committed quick profile drift-gates
//!    them and the dashboard sparklines them.
//! 3. **Parallel runtime** — the 8×8×8 MD exchange skeleton profiled
//!    at 1 and 2 threads: the deterministic [`RuntimeSummary`] goes
//!    into the metrics, the wall-clock [`SpeedupAttribution`] shares
//!    into the informational (never gating) `attribution_pct` section.
//! 4. **Congestion + recovery** — the 4×4×4 neighbor shower's top-K
//!    hottest links, and one seeded chaos cell of the recovering
//!    all-reduce (drops + a node death) with its recovery counters.
//!
//! Everything gated is simulated/event-level and bit-deterministic;
//! only the speedup attribution touches the host clock, and it is
//! marked informational accordingly.

use anton_collectives::{random_inputs, run_all_reduce_recovering, RecoveringParams};
use anton_core::run_md_exchange_par_profiled;
use anton_des::{SimDuration, SimTime};
use anton_net::{
    ClientAddr, ClientKind, Ctx, Fabric, FaultPlan, NodeProgram, Packet, Payload, ProgEvent,
    Simulation, Timing,
};
use anton_obs::runtime::{RuntimeSummary, SpeedupAttribution};
use anton_obs::{
    retime_blamed, CausalGraph, CongestionMap, FlightRecorder, ObservatoryReport, Perturbation,
    Section, SEC_ATTRIBUTION, SEC_BLAME, SEC_CONGESTION, SEC_RECOVERY,
};
use anton_scenario::{presets, Workload};
use anton_topo::{Coord, NodeId, TorusDims};
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::microbench::one_way_latency_timed;
use crate::suite::run_suite;

/// Knobs for one collection pass.
#[derive(Debug, Clone)]
pub struct ObservatoryOptions {
    /// Skip the minute-scale DHFR suite entry. The committed
    /// `BENCH_pr7.json` quick profile is collected with this set, and
    /// every other workload is identical in both modes, so quick and
    /// full runs agree on every shared metric.
    pub quick: bool,
    /// Label stamped on the report and its embedded metrics.
    pub label: String,
}

impl Default for ObservatoryOptions {
    fn default() -> Self {
        ObservatoryOptions {
            quick: true,
            label: "anton observatory profile".to_owned(),
        }
    }
}

/// Run every observatory workload and assemble the report. `perturb`
/// re-times the causal workload under a what-if scenario (the blame
/// section, `blame_*_pct`, and `causal_critical_end_ns` move; the
/// physically simulated workloads do not) — the triage pipeline's
/// fault-injection hook.
pub fn collect(opts: &ObservatoryOptions, perturb: Option<&Perturbation>) -> ObservatoryReport {
    let mut obs = ObservatoryReport::new(&opts.label);
    obs.metrics = run_suite(!opts.quick);
    obs.metrics.label = opts.label.clone();

    causal_blame(&mut obs, perturb);
    parallel_runtime(&mut obs);
    congestion(&mut obs);
    recovery(&mut obs);
    obs
}

/// Workload 2: diameter one-way transfer → causal DAG → (re-timed)
/// critical-path blame.
fn causal_blame(obs: &mut ObservatoryReport, perturb: Option<&Perturbation>) {
    let spec = presets::causal_pingpong();
    let dims = spec.torus_dims();
    let timing = spec.timing_table();
    let Workload::PingPong {
        from,
        to,
        payload_bytes,
        bidirectional,
        reps,
    } = spec.workload
    else {
        unreachable!("causal_pingpong is a ping-pong spec");
    };
    let (_, rec) = one_way_latency_timed(
        dims,
        Coord::new(from.0, from.1, from.2),
        Coord::new(to.0, to.1, to.2),
        payload_bytes,
        bidirectional,
        reps,
        timing.clone(),
    );
    let g = {
        let rec = rec.borrow();
        CausalGraph::build(dims, rec.events(), |b| timing.injection_occupancy(b))
    };
    g.check_consistency()
        .expect("recorded causal graph is exact");
    let identity = Perturbation::none();
    let (rt, blame) = retime_blamed(&g, perturb.unwrap_or(&identity));
    obs.metrics.set(
        "causal_critical_end_ns",
        (rt.end - SimTime::ZERO).as_ns_f64(),
    );
    let shares = blame.shares_pct();
    for (k, v) in &shares {
        obs.metrics.set(&format!("blame_{k}_pct"), *v);
    }
    obs.set_section(SEC_BLAME, Section::shares(shares));
}

/// Workload 3: MD exchange at 1 vs 2 threads — deterministic runtime
/// summary into the metrics, wall-clock attribution shares into the
/// informational section.
fn parallel_runtime(obs: &mut ObservatoryReport) {
    let spec = presets::observatory_md();
    let dims = spec.torus_dims();
    let params = spec.md_params().expect("observatory_md is an MD spec");
    let (_, seq_prof) = run_md_exchange_par_profiled(dims, params, 1);
    let (_, par_prof) = run_md_exchange_par_profiled(dims, params, spec.threads as usize);
    RuntimeSummary::from_profile(&par_prof).record_into(&mut obs.metrics, "md");

    let attr = SpeedupAttribution::from_profile(seq_prof.wall_ns, &par_prof);
    let parts = [
        ("merge", attr.merge_ns),
        ("barrier", attr.barrier_ns),
        ("imbalance", attr.imbalance_ns),
        ("windowing", attr.windowing_ns),
        ("exec-excess", attr.exec_excess_ns),
    ];
    let total: f64 = parts.iter().map(|(_, v)| v.abs()).sum();
    if total > 0.0 {
        let shares: BTreeMap<String, f64> = parts
            .iter()
            .map(|(k, v)| (k.to_string(), 100.0 * v.abs() / total))
            .collect();
        obs.set_section(SEC_ATTRIBUTION, Section::shares(shares).informational());
    }
}

/// Every node showers its +X/+Y neighbors, and every fourth node fires
/// a large diagonal write — the same contended mix as the
/// `congestion_heatmap` experiment.
struct Shower {
    plan: Rc<Vec<(u32, u32, u32)>>,
}

impl NodeProgram for Shower {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        if !matches!(pe, ProgEvent::Start) {
            return;
        }
        for &(src, dst, bytes) in self.plan.iter() {
            if NodeId(src) != node {
                continue;
            }
            let pkt = Packet::write(
                ClientAddr::new(node, ClientKind::Slice(0)),
                ClientAddr::new(NodeId(dst), ClientKind::Slice(0)),
                0x40,
                Payload::Empty,
            )
            .with_payload_bytes(bytes);
            ctx.send(pkt);
        }
    }
}

/// Workload 4a: the 4×4×4 shower's congestion map, reduced to the
/// top-K hottest-link busy times (rank-keyed so the k-th hottest link
/// gates even when the hot set shifts) plus queue telemetry.
fn congestion(obs: &mut ObservatoryReport) {
    let dims = TorusDims::new(4, 4, 4);
    let n = dims.node_count();
    let mut plan = Vec::new();
    for src in 0..n {
        let c = NodeId(src).coord(dims);
        for (dx, dy) in [(1, 0), (0, 1)] {
            let d = anton_topo::offset(c, [dx, dy, 0], dims);
            plan.push((src, d.node_id(dims).0, 64));
        }
        if src % 4 == 0 {
            let far = anton_topo::offset(c, [2, 2, 1], dims);
            plan.push((src, far.node_id(dims).0, 256));
        }
    }
    let plan = Rc::new(plan);

    let mut fabric = Fabric::with_faults(dims, Timing::default(), FaultPlan::none());
    let rec = FlightRecorder::new().into_shared();
    fabric.set_recorder(Box::new(rec.clone()));
    let p2 = plan.clone();
    let mut sim = Simulation::new(fabric, move |_| Shower { plan: p2.clone() });
    assert!(sim
        .run_guarded(SimTime(u64::MAX / 2), 10_000_000)
        .is_completed());

    let rec = rec.borrow();
    let map = CongestionMap::build(rec.events(), SimDuration::from_ns(50));
    let mut values = BTreeMap::new();
    for (i, ((_, _), busy)) in map.hottest_links(5).into_iter().enumerate() {
        values.insert(format!("hot{i}_busy_ns"), busy.as_ns_f64());
    }
    values.insert("max_queue_depth".to_owned(), map.max_queue_depth() as f64);
    values.insert("active_links".to_owned(), map.links().count() as f64);
    obs.set_section(SEC_CONGESTION, Section::values(values));
}

/// Workload 4b: one seeded chaos cell of the recovering all-reduce —
/// 0.1% transient drops plus one mid-collective node death on 4×4×4 —
/// and its deterministic recovery counters.
fn recovery(obs: &mut ObservatoryReport) {
    let spec = presets::observatory_recovery();
    let dims = spec.torus_dims();
    let (vlen, seed) = match &spec.workload {
        Workload::Recovering { vlen, seed, .. } => (*vlen as usize, *seed),
        _ => unreachable!("observatory_recovery is a recovering spec"),
    };
    let inputs = random_inputs(dims, vlen, seed);
    let out = run_all_reduce_recovering(
        dims,
        &inputs,
        spec.fault_plan(),
        &spec.deaths(),
        spec.recovery_config(),
        RecoveringParams::default(),
    );
    assert!(out.completed, "recovery cell wedged");
    let mut values = BTreeMap::new();
    values.insert("latency_us".to_owned(), out.latency.as_us_f64());
    values.insert("verdicts".to_owned(), out.verdicts as f64);
    values.insert("reinjections".to_owned(), out.recovery.reinjections as f64);
    values.insert(
        "duplicates_suppressed".to_owned(),
        out.recovery.duplicates_suppressed as f64,
    );
    values.insert(
        "packets_lost_unrecovered".to_owned(),
        out.recovery.packets_lost_unrecovered as f64,
    );
    obs.set_section(SEC_RECOVERY, Section::values(values));
}
