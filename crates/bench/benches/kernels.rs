//! Criterion benches of the computational substrates: the FFT, the
//! range-limited pair kernel, and the fixed-point codec — the hot loops
//! of the physics layer.

use anton_fft::{fft3d, Complex, Direction, Fft1d};
use anton_md::pair::{range_limited_forces, PairParams};
use anton_md::{SystemBuilder, Vec3};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(20);

    group.bench_function("fft1d_32", |b| {
        let plan = Fft1d::new(32);
        let mut data: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        b.iter(|| {
            plan.transform(std::hint::black_box(&mut data), Direction::Forward);
        });
    });

    group.bench_function("fft3d_32cubed", |b| {
        let mut data: Vec<Complex> = (0..32 * 32 * 32)
            .map(|i| Complex::real((i % 97) as f64 / 97.0))
            .collect();
        b.iter(|| {
            fft3d(
                std::hint::black_box(&mut data),
                32,
                32,
                32,
                Direction::Forward,
            );
        });
    });

    group.bench_function("range_limited_600atoms", |b| {
        let sys = SystemBuilder::tiny(600, 27.0, 5).build();
        let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
        let params = PairParams::with_cutoff(7.0);
        b.iter(|| {
            let mut forces = vec![Vec3::ZERO; positions.len()];
            range_limited_forces(&sys, &positions, params, &mut forces)
        });
    });

    group.bench_function("fixed_point_codec", |b| {
        let forces: Vec<Vec3> = (0..1000)
            .map(|i| Vec3::new(i as f64 * 0.37, -(i as f64) * 0.11, 42.0))
            .collect();
        b.iter(|| {
            forces
                .iter()
                .map(|&f| anton_md::fixed::decode_force(anton_md::fixed::encode_force(f)))
                .fold(Vec3::ZERO, |a, b| a + b)
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
