//! Criterion bench over the Figure 5 microbenchmark: simulated one-way
//! counted-remote-write latency at increasing hop counts. The *measured
//! quantity* here is host time to run the simulation; the *simulated*
//! latencies are asserted against the paper's anchors so a regression in
//! either the model or its performance is caught.

use anton_bench::one_way_latency;
use anton_des::SimDuration;
use anton_topo::{Coord, TorusDims};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let dims = TorusDims::anton_512();
    let src = Coord::new(0, 0, 0);
    let mut group = c.benchmark_group("fig5_latency_vs_hops");
    group.sample_size(20);
    for (hops, dst, expect_ns) in [
        (1u32, Coord::new(1, 0, 0), 162),
        (4, Coord::new(4, 0, 0), 390),
        (12, Coord::new(4, 4, 4), 822),
    ] {
        // Correctness gate before timing.
        assert_eq!(
            one_way_latency(dims, src, dst, 0, false, 4),
            SimDuration::from_ns(expect_ns)
        );
        group.bench_with_input(BenchmarkId::from_parameter(hops), &dst, |b, &dst| {
            b.iter(|| one_way_latency(dims, src, std::hint::black_box(dst), 0, false, 4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
