//! Criterion bench over the Figure 8 ablation: staged vs direct
//! all-neighbor exchange.

use anton_bench::{neighbor_exchange, ExchangeStyle};
use anton_topo::TorusDims;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let dims = TorusDims::new(4, 4, 4);
    let direct = neighbor_exchange(dims, ExchangeStyle::Direct, 1472);
    let staged = neighbor_exchange(dims, ExchangeStyle::Staged, 1472);
    assert!(
        direct.completion < staged.completion,
        "direct wins on Anton"
    );

    let mut group = c.benchmark_group("fig8_neighbor_exchange");
    group.sample_size(10);
    group.bench_function("direct", |b| {
        b.iter(|| neighbor_exchange(dims, ExchangeStyle::Direct, 1472));
    });
    group.bench_function("staged", |b| {
        b.iter(|| neighbor_exchange(dims, ExchangeStyle::Staged, 1472));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
