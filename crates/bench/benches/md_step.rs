//! Criterion bench of a full simulated MD time step (Table 3's unit of
//! work) at test scale: a 240-atom box on a 2×2×2 machine — every
//! phase of the paper's Figure 2 dataflow exercised per iteration.

use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("md_step");
    group.sample_size(10);
    group.bench_function("step_2x2x2_240atoms", |b| {
        let sys = SystemBuilder::tiny(240, 22.0, 3).build();
        let mut md = MdParams::new(4.5, [16; 3]);
        md.dt = 0.5;
        let config = AntonConfig::new(md);
        let mut eng = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));
        b.iter(|| eng.step());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
