//! Criterion bench over the Figure 7 microbenchmark: splitting a 2 KB
//! transfer into k messages. Asserts the paper's shape (near-flat on
//! Anton) before timing the simulator.

use anton_bench::split_transfer_time;
use anton_topo::TorusDims;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let dims = TorusDims::anton_512();
    let t1 = split_transfer_time(dims, 1, 2048, 1);
    let t64 = split_transfer_time(dims, 1, 2048, 64);
    assert!(
        t64.as_ns_f64() / t1.as_ns_f64() < 2.0,
        "Anton must stay near-flat"
    );

    let mut group = c.benchmark_group("fig7_split_transfer");
    group.sample_size(20);
    for k in [1u32, 8, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| split_transfer_time(dims, 1, 2048, std::hint::black_box(k)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
