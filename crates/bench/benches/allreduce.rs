//! Criterion bench over the Table 2 collective: dimension-ordered and
//! butterfly all-reduce across machine sizes, with the simulated
//! latencies gated against the paper's bands.

use anton_collectives::{random_inputs, run_all_reduce, Algorithm};
use anton_topo::TorusDims;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    // Correctness gates: the 512-node 32-byte reduction lands near the
    // paper's 1.77 µs, and dimension-ordered beats butterfly.
    let dims = TorusDims::anton_512();
    let inputs = random_inputs(dims, 4, 42);
    let d = run_all_reduce(
        dims,
        Algorithm::DimensionOrdered,
        Default::default(),
        &inputs,
    );
    let b = run_all_reduce(dims, Algorithm::Butterfly, Default::default(), &inputs);
    let us = d.latency.as_us_f64();
    assert!((1.2..2.3).contains(&us), "{us}");
    assert!(d.latency < b.latency);

    let mut group = c.benchmark_group("table2_allreduce");
    group.sample_size(10);
    for dims in [TorusDims::new(4, 4, 4), TorusDims::new(8, 8, 8)] {
        let inputs = random_inputs(dims, 4, 7);
        group.bench_with_input(
            BenchmarkId::new("dimension_ordered", dims.node_count()),
            &inputs,
            |bch, inputs| {
                bch.iter(|| {
                    run_all_reduce(
                        dims,
                        Algorithm::DimensionOrdered,
                        Default::default(),
                        inputs,
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("butterfly", dims.node_count()),
            &inputs,
            |bch, inputs| {
                bch.iter(|| run_all_reduce(dims, Algorithm::Butterfly, Default::default(), inputs));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
