//! §VI generality demo: counted remote writes beyond molecular dynamics.
//!
//! "Counted remote writes provide a natural way to represent data
//! dependencies in applications parallelized using domain decomposition,
//! where a processor associated with a subdomain must wait to receive
//! data from other processors associated with neighboring subdomains
//! before it can begin a given phase of computation."
//!
//! This example solves the 3D Laplace equation by Jacobi iteration on
//! the simulated machine: each node owns a subdomain brick, pushes its
//! boundary faces to the six face neighbors as counted remote writes,
//! and sweeps as soon as its halo counter fires — no barriers, no
//! receiver-side handshakes, exactly the paper's recipe. The numerics
//! are real; the solve converges and matches a serial reference.
//!
//! ```sh
//! cargo run --release --example stencil_jacobi
//! ```

use anton::des::{SimDuration, SimTime};
use anton::net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, NodeProgram, Packet, Payload, ProgEvent,
    Simulation,
};
use anton::topo::{face_neighbors, LinkDir, NodeId, TorusDims};
use std::cell::RefCell;
use std::rc::Rc;

/// Subdomain edge (points per node per axis).
const B: usize = 8;
/// Jacobi sweeps.
const SWEEPS: u32 = 30;
/// Per-point update cost on a geometry core (ns) — same scale as the MD
/// cost model's per-element arithmetic.
const UPDATE_NS: f64 = 0.5;

/// Global grid: machine dims × B, with fixed boundary values on the
/// global z=0 plane (hot) and z=max (cold); periodic in x, y is replaced
/// by fixed cold walls for a well-posed Dirichlet problem, so the torus
/// wrap links simply carry the wall values.
struct JacobiNode {
    grid: Rc<RefCell<Shared>>,
}

struct Shared {
    /// Per node: current subdomain values, (B+2)³ with halo.
    cells: Vec<Vec<f64>>,
    /// Per node: sweep counter.
    sweep: Vec<u32>,
    /// Completion times.
    done: Vec<Option<SimTime>>,
}

fn idx(x: usize, y: usize, z: usize) -> usize {
    x + (B + 2) * (y + (B + 2) * z)
}

fn slice0(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Slice(0))
}

/// Global boundary value beyond a z wall: hot floor below, cold
/// ceiling above.
fn wall_value(gz: i64, _nz_points: i64) -> f64 {
    if gz < 0 {
        100.0 // hot floor
    } else {
        0.0 // cold ceiling
    }
}

impl JacobiNode {
    fn face_payload(&self, node: NodeId, link: LinkDir) -> Vec<f64> {
        // The face of our interior adjacent to `link`, row-major.
        let g = self.grid.borrow();
        let cells = &g.cells[node.index()];
        let mut out = Vec::with_capacity(B * B);
        let fixed = |d: anton::topo::Dir| match d {
            anton::topo::Dir::Minus => 1,
            anton::topo::Dir::Plus => B,
        };
        for b in 0..B {
            for a in 0..B {
                let (x, y, z) = match link.dim {
                    anton::topo::Dim::X => (fixed(link.dir), a + 1, b + 1),
                    anton::topo::Dim::Y => (a + 1, fixed(link.dir), b + 1),
                    anton::topo::Dim::Z => (a + 1, b + 1, fixed(link.dir)),
                };
                out.push(cells[idx(x, y, z)]);
            }
        }
        out
    }

    /// Push all six faces (counted remote writes; B²=64 values → 512 B →
    /// two packets per face), then arm the halo counter.
    fn exchange(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dims = ctx.dims();
        let me = node.coord(dims);
        let neighbors = face_neighbors(me, dims);
        let sweep = self.grid.borrow().sweep[node.index()];
        let counter = CounterId((sweep % 2) as u16);
        // Expect 2 packets per adjacent neighbor face.
        let expected: u64 = neighbors.len() as u64 * 2;
        ctx.watch_counter(slice0(node), counter, expected);
        for (link, nb) in neighbors {
            let face = self.face_payload(node, link);
            // The receiver stores it under the direction it arrives from.
            let from = link.reverse();
            for (half, chunk) in face.chunks(B * B / 2).enumerate() {
                let pkt = Packet::write(
                    slice0(node),
                    slice0(nb.node_id(dims)),
                    0x1000
                        + (sweep % 2) as u64 * 0x800
                        + from.index() as u64 * 0x100
                        + half as u64 * 0x80,
                    Payload::F64s(chunk.to_vec()),
                )
                .with_counter(counter);
                ctx.send(pkt);
            }
        }
    }

    /// Halo complete: load neighbor faces, run one Jacobi sweep over the
    /// interior, then either exchange again or finish.
    fn sweep(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dims = ctx.dims();
        let me = node.coord(dims);
        let sweep_no = self.grid.borrow().sweep[node.index()];
        // 1. Install received halos. The +X neighbor addressed its face
        //    to our X+ halo slot (it sent with its own X− link and tagged
        //    the slot with that link's reverse), so we read slot `link`.
        for (link, _) in face_neighbors(me, dims) {
            let from = link;
            let mut face = Vec::with_capacity(B * B);
            for half in 0..2u64 {
                let addr = 0x1000
                    + (sweep_no % 2) as u64 * 0x800
                    + from.index() as u64 * 0x100
                    + half * 0x80;
                match ctx.mem_read(slice0(node), addr) {
                    Some(Payload::F64s(v)) => face.extend_from_slice(v),
                    other => panic!("missing halo face: {other:?}"),
                }
            }
            let mut g = self.grid.borrow_mut();
            let cells = &mut g.cells[node.index()];
            // `link` points toward the neighbor; its face lands in our
            // halo layer on that side.
            let side = match link.dir {
                anton::topo::Dir::Plus => B + 1,
                anton::topo::Dir::Minus => 0,
            };
            let mut it = face.into_iter();
            for b in 0..B {
                for a in 0..B {
                    let (x, y, z) = match link.dim {
                        anton::topo::Dim::X => (side, a + 1, b + 1),
                        anton::topo::Dim::Y => (a + 1, side, b + 1),
                        anton::topo::Dim::Z => (a + 1, b + 1, side),
                    };
                    cells[idx(x, y, z)] = it.next().expect("face size");
                }
            }
        }
        // 2. Overwrite wrap-link halos on the global z walls with the
        //    Dirichlet values (the global problem is a slab).
        {
            let mut g = self.grid.borrow_mut();
            let nz_points = (dims.nz as usize * B) as i64;
            let cells = &mut g.cells[node.index()];
            if me.z == 0 {
                for y in 0..B + 2 {
                    for x in 0..B + 2 {
                        cells[idx(x, y, 0)] = wall_value(-1, nz_points);
                    }
                }
            }
            if me.z == dims.nz - 1 {
                for y in 0..B + 2 {
                    for x in 0..B + 2 {
                        cells[idx(x, y, B + 1)] = wall_value(nz_points, nz_points);
                    }
                }
            }
        }
        // 3. Jacobi sweep (real arithmetic) + modeled compute time.
        {
            let mut g = self.grid.borrow_mut();
            let old = g.cells[node.index()].clone();
            let cells = &mut g.cells[node.index()];
            for z in 1..=B {
                for y in 1..=B {
                    for x in 1..=B {
                        cells[idx(x, y, z)] = (old[idx(x - 1, y, z)]
                            + old[idx(x + 1, y, z)]
                            + old[idx(x, y - 1, z)]
                            + old[idx(x, y + 1, z)]
                            + old[idx(x, y, z - 1)]
                            + old[idx(x, y, z + 1)])
                            / 6.0;
                    }
                }
            }
            g.sweep[node.index()] += 1;
        }
        let cost = SimDuration::from_ns_f64(UPDATE_NS * (B * B * B) as f64);
        ctx.compute(
            node,
            ClientKind::Slice(0),
            anton::core::TRACK_GC,
            cost,
            1,
            "jacobi",
        );
    }
}

impl NodeProgram for JacobiNode {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => self.exchange(node, ctx),
            ProgEvent::CounterReached { counter, .. } => {
                // Re-arm happens in exchange(); counters alternate by
                // sweep parity so in-flight faces of sweep k+1 can't
                // trip sweep k's counter.
                let mine = slice0(node);
                ctx.reset_counter(mine, counter);
                self.sweep(node, ctx);
            }
            ProgEvent::Timer { .. } => {
                let (done, sweeps) = {
                    let g = self.grid.borrow();
                    (g.sweep[node.index()] >= SWEEPS, g.sweep[node.index()])
                };
                let _ = sweeps;
                if done {
                    self.grid.borrow_mut().done[node.index()] = Some(ctx.now());
                } else {
                    self.exchange(node, ctx);
                }
            }
            _ => unreachable!(),
        }
    }
}

fn main() {
    let dims = TorusDims::new(4, 4, 4);
    let n = dims.node_count() as usize;
    let shared = Rc::new(RefCell::new(Shared {
        cells: vec![vec![0.0; (B + 2) * (B + 2) * (B + 2)]; n],
        sweep: vec![0; n],
        done: vec![None; n],
    }));
    let s2 = shared.clone();
    let mut sim = Simulation::new(Fabric::new(dims), move |_| JacobiNode { grid: s2.clone() });
    sim.run();

    let g = shared.borrow();
    let finish = g
        .done
        .iter()
        .map(|t| t.expect("all nodes finish"))
        .max()
        .expect("nonempty");
    println!(
        "3D Jacobi on a {}x{}x{} machine ({} points/node): {} sweeps in {:.2} us",
        dims.nx,
        dims.ny,
        dims.nz,
        B * B * B,
        SWEEPS,
        (finish - SimTime::ZERO).as_us_f64()
    );
    println!(
        "  = {:.0} ns per sweep including the halo exchange — the counted-\n\
         remote-write pattern of the paper's Discussion (§VI), no barriers.",
        (finish - SimTime::ZERO).as_ns_f64() / SWEEPS as f64
    );

    // Verify against a serial Jacobi of the same global slab problem.
    let serial = serial_reference(dims);
    let mut worst = 0.0f64;
    for c in dims.iter_coords() {
        let cells = &g.cells[c.node_id(dims).index()];
        for z in 1..=B {
            for y in 1..=B {
                for x in 1..=B {
                    let gx = c.x as usize * B + x - 1;
                    let gy = c.y as usize * B + y - 1;
                    let gz = c.z as usize * B + z - 1;
                    let s = serial[gx + dims.nx as usize * B * (gy + dims.ny as usize * B * gz)];
                    worst = worst.max((cells[idx(x, y, z)] - s).abs());
                }
            }
        }
    }
    println!("  max |distributed - serial| after {SWEEPS} sweeps: {worst:.2e}");
    assert!(
        worst < 1e-9,
        "distributed Jacobi must match the serial solve"
    );
    println!("  distributed result matches the serial reference. ✓");
}

/// Serial Jacobi on the equivalent global grid (periodic x/y, Dirichlet
/// z walls).
fn serial_reference(dims: TorusDims) -> Vec<f64> {
    let (nx, ny, nz) = (
        dims.nx as usize * B,
        dims.ny as usize * B,
        dims.nz as usize * B,
    );
    let at = |v: &Vec<f64>, x: i64, y: i64, z: i64| -> f64 {
        if z < 0 {
            return 100.0;
        }
        if z >= nz as i64 {
            return 0.0;
        }
        let xw = x.rem_euclid(nx as i64) as usize;
        let yw = y.rem_euclid(ny as i64) as usize;
        v[xw + nx * (yw + ny * z as usize)]
    };
    let mut cur = vec![0.0; nx * ny * nz];
    for _ in 0..SWEEPS {
        let mut next = vec![0.0; nx * ny * nz];
        for z in 0..nz as i64 {
            for y in 0..ny as i64 {
                for x in 0..nx as i64 {
                    next[x as usize + nx * (y as usize + ny * z as usize)] =
                        (at(&cur, x - 1, y, z)
                            + at(&cur, x + 1, y, z)
                            + at(&cur, x, y - 1, z)
                            + at(&cur, x, y + 1, z)
                            + at(&cur, x, y, z - 1)
                            + at(&cur, x, y, z + 1))
                            / 6.0;
                }
            }
        }
        cur = next;
    }
    cur
}
