//! Domain example: explore the communication fabric directly — latency
//! vs. distance and payload, collective operations across machine sizes,
//! and the fine-grained-message behavior that distinguishes Anton from
//! commodity interconnects.
//!
//! ```sh
//! cargo run --release --example latency_explorer
//! ```

use anton_baseline::IbModel;
use anton_bench::{one_way_latency, split_transfer_time};
use anton_collectives::{random_inputs, run_all_reduce, Algorithm};
use anton_topo::{Coord, TorusDims};

fn main() {
    let dims = TorusDims::anton_512();

    println!("latency vs distance (0-byte counted remote writes, 8x8x8):");
    for (label, dst) in [
        ("1 hop  (X)", Coord::new(1, 0, 0)),
        ("4 hops (X)", Coord::new(4, 0, 0)),
        ("8 hops (X+Y)", Coord::new(4, 4, 0)),
        ("12 hops (diameter)", Coord::new(4, 4, 4)),
    ] {
        let d = one_way_latency(dims, Coord::new(0, 0, 0), dst, 0, false, 4);
        println!("  {label:>20}: {d}");
    }

    println!("\nfine-grained messaging (2 KB, 1 hop) — Anton vs InfiniBand model:");
    let ib = IbModel::default();
    for k in [1u32, 8, 64] {
        let anton = split_transfer_time(dims, 1, 2048, k);
        println!(
            "  {k:>3} messages: Anton {:>8.3} us   InfiniBand {:>6.2} us",
            anton.as_us_f64(),
            ib.split_transfer_us(2048, k)
        );
    }

    println!("\nglobal 32-byte all-reduce across machine sizes:");
    for dims in [
        TorusDims::new(4, 4, 4),
        TorusDims::new(8, 8, 4),
        TorusDims::new(8, 8, 8),
        TorusDims::new(8, 8, 16),
    ] {
        let out = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &random_inputs(dims, 4, 1),
        );
        println!(
            "  {:>4} nodes ({}x{}x{}): {:.2} us, {} packets",
            dims.node_count(),
            dims.nx,
            dims.ny,
            dims.nz,
            out.latency.as_us_f64(),
            out.packets_sent
        );
    }
    println!("\n(the cluster measurement the paper quotes for 512 nodes: 35.5 us)");
}
