//! Physics sanity demo: equilibrate a small water box with the
//! reference engine and show the oxygen–oxygen radial distribution
//! function developing liquid-water structure (first peak near 2.8 Å) —
//! evidence that the MD substrate under the Anton mapping is the real
//! thing, not a traffic generator.
//!
//! ```sh
//! cargo run --release --example water_structure
//! ```

use anton::md::observables::Rdf;
use anton::md::{MdParams, ReferenceEngine, SystemBuilder, Thermostat, Vec3};

fn main() {
    let sys = SystemBuilder::tiny(375, 23.0, 4242).build(); // 125 waters
    let mut params = MdParams::new(6.0, [16; 3]);
    params.dt = 0.5;
    params.thermostat = Some(Thermostat {
        target: 300.0,
        tau: 25.0,
        interval: 1,
    });
    let mut eng = ReferenceEngine::new(sys, params);

    println!("equilibrating 125 flexible waters at 300 K...");
    for step in 0..600 {
        eng.step();
        if step % 150 == 149 {
            println!("  step {:>4}: T = {:>5.0} K", step + 1, eng.temperature());
        }
    }

    // Accumulate the O–O RDF over a short production window.
    let mut rdf = Rdf::new(8.0, 64);
    for _ in 0..40 {
        for _ in 0..5 {
            eng.step();
        }
        let oxygens: Vec<Vec3> = eng
            .sys
            .atoms
            .iter()
            .filter(|a| a.mass > 10.0) // oxygens (waters' heavy site)
            .map(|a| a.pos)
            .collect();
        rdf.accumulate(&oxygens, &eng.sys.pbox);
    }

    println!("\nO-O radial distribution function:");
    let g = rdf.normalized();
    let mut peak_r = 0.0;
    let mut peak_g = 0.0;
    for (i, &(r, v)) in g.iter().enumerate() {
        if r > 2.0 && r < 3.5 && v > peak_g {
            peak_g = v;
            peak_r = r;
        }
        if r > 2.2 && i % 4 == 0 {
            let bar = "#".repeat((v * 12.0).min(60.0) as usize);
            println!("  r = {r:>5.2} A  g = {v:>5.2}  {bar}");
        }
    }
    println!("\nfirst O-O peak: g({peak_r:.2} A) = {peak_g:.2}  (liquid water: ~2.8 A, g ~ 2-3)");
    assert!((2.4..3.4).contains(&peak_r), "first peak location {peak_r}");
    assert!(peak_g > 1.3, "peak height {peak_g}");
}
