//! Quickstart: stand up a simulated 512-node Anton machine, measure the
//! headline 162 ns counted-remote-write latency, and run a few MD time
//! steps end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use anton_bench::one_way_latency;
use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_topo::{Coord, TorusDims};

fn main() {
    // 1. The headline measurement: a counted remote write between
    //    neighboring nodes of an 8×8×8 machine.
    let dims = TorusDims::anton_512();
    let latency = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 8);
    println!("one-hop counted remote write: {latency}  (paper: 162 ns)");

    // 2. A small solvated system on a 2×2×2 machine: every force travels
    //    through simulated counted remote writes, multicast trees, and
    //    accumulation memories — and the physics is real.
    let sys = SystemBuilder::tiny(240, 22.0, 7).build();
    let mut md = MdParams::new(4.5, [16; 3]);
    md.dt = 0.5;
    let config = AntonConfig::new(md);
    let mut engine = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));

    println!("\nrunning 3 MD steps of a 240-atom water box on a 2x2x2 machine:");
    for _ in 0..3 {
        let t = engine.step();
        println!(
            "  step {}: {:>9.3} us total, {:>8.3} us communication, T = {:.0} K{}",
            engine.steps(),
            t.total.as_us_f64(),
            t.communication().as_us_f64(),
            engine.temperature(),
            if t.long_range {
                "  [long-range step]"
            } else {
                ""
            },
        );
    }
    let e = engine.last_energies;
    println!(
        "\nenergy components (kcal/mol): bonded {:.1}, LJ {:.1}, coulomb {:.1}, long-range {:.1}",
        e.bonded, e.lj, e.coulomb_real, e.long_range
    );
    println!("total potential: {:.1} kcal/mol", e.potential());
}
