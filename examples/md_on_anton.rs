//! Domain example: simulate a solvated protein-like system on the
//! full 512-node machine and watch where every microsecond of a time
//! step goes — the workload the paper's introduction motivates.
//!
//! ```sh
//! cargo run --release --example md_on_anton            # small run
//! MD_FULL=1 cargo run --release --example md_on_anton  # DHFR scale
//! ```

use anton_core::{AntonConfig, AntonMdEngine};
use anton_md::{MdParams, SystemBuilder};
use anton_topo::TorusDims;

fn main() {
    let full = std::env::var("MD_FULL").is_ok();
    let (builder, dims) = if full {
        (SystemBuilder::dhfr_like(), TorusDims::anton_512())
    } else {
        (SystemBuilder::tiny(1500, 36.0, 11), TorusDims::new(4, 4, 4))
    };
    println!(
        "system: {} atoms on a {}x{}x{} machine",
        builder.total_atoms, dims.nx, dims.ny, dims.nz
    );
    let mut md = MdParams::new(
        if full { 9.5 } else { 6.0 },
        if full { [32; 3] } else { [16; 3] },
    );
    md.dt = 1.0;
    let config = AntonConfig::new(md);
    let sys = builder.build();
    let mut engine = AntonMdEngine::new(sys, config, TorusDims::new(dims.nx, dims.ny, dims.nz));

    println!(
        "\n{:>5} {:>10} {:>10} {:>10} {:>8} {:>14} {:>9}",
        "step", "total us", "comm us", "compute", "T (K)", "kind", "migrated"
    );
    for _ in 0..8 {
        let t = engine.step();
        let kind = match (t.long_range, t.migration) {
            (true, true) => "LR + migrate",
            (true, false) => "long-range",
            (false, true) => "RL + migrate",
            (false, false) => "range-limited",
        };
        println!(
            "{:>5} {:>10.2} {:>10.2} {:>10.2} {:>8.0} {:>14} {:>9}",
            engine.steps(),
            t.total.as_us_f64(),
            t.communication().as_us_f64(),
            t.critical_compute().as_us_f64(),
            engine.temperature(),
            kind,
            engine.state.borrow().last_migrated,
        );
    }

    let stats = engine.last_stats.as_ref().expect("stats available");
    let n = engine.state.borrow().decomp.dims.node_count() as u64;
    println!(
        "\nlast step's traffic: {} packets sent machine-wide (~{} per node),\n\
         {} deliveries (~{} per node), {} link traversals",
        stats.packets_sent,
        stats.packets_sent / n,
        stats.packets_delivered,
        stats.packets_delivered / n,
        stats.link_traversals
    );
    println!(
        "bond program staleness: {:.3} mean hops to term nodes",
        engine.bond_staleness_hops()
    );
}
