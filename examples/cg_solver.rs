//! §VI composition demo: a distributed conjugate-gradient solve on the
//! simulated machine, combining the two communication primitives the
//! paper's MD schedule uses — halo exchange by counted remote writes
//! (for the sparse matrix–vector product) and the dimension-ordered
//! multicast all-reduce (for the dot products every CG iteration needs).
//!
//! Solves the 3D Poisson problem `−∇²x = b` with Jacobi-preconditioned
//! CG on a 4×4×4 machine, verifying the residual against a serial solve.
//!
//! ```sh
//! cargo run --release --example cg_solver
//! ```

use anton::des::{SimDuration, SimTime};
use anton::net::{
    ClientAddr, ClientKind, CounterId, Ctx, Fabric, NodeProgram, Packet, Payload, ProgEvent,
    Simulation,
};
use anton::topo::{face_neighbors, Coord, Dim, LinkDir, MulticastPattern, NodeId, TorusDims};
use std::cell::RefCell;
use std::rc::Rc;

/// Subdomain edge (points per node per axis); global grid is periodic.
const B: usize = 6;
const ITERS: u32 = 40;

struct Shared {
    /// Per node, with halo: x, r, p, Ap as flat (B+2)³ arrays.
    x: Vec<Vec<f64>>,
    r: Vec<Vec<f64>>,
    p: Vec<Vec<f64>>,
    b: Vec<Vec<f64>>,
    /// Global scalars of the in-flight iteration.
    rr: f64,
    done: Vec<Option<SimTime>>,
    iterations: u32,
}

fn idx(x: usize, y: usize, z: usize) -> usize {
    x + (B + 2) * (y + (B + 2) * z)
}

fn slice0(node: NodeId) -> ClientAddr {
    ClientAddr::new(node, ClientKind::Slice(0))
}

/// Per-node CG state machine: HALO(p) → Ap & local dots → all-reduce →
/// update → repeat.
struct CgNode {
    shared: Rc<RefCell<Shared>>,
    phase: Phase,
    /// Scratch for the all-reduce rounds: [p·Ap, r·r].
    ar_value: [f64; 2],
    ar_round: usize,
    halo_round: u32,
}

#[derive(Clone, Copy, PartialEq)]
enum Phase {
    Halo,
    Reduce,
}

impl CgNode {
    /// Send our boundary faces of `p` to the six neighbors.
    fn exchange_p(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        self.phase = Phase::Halo;
        let dims = ctx.dims();
        let me = node.coord(dims);
        let neighbors = face_neighbors(me, dims);
        let parity = (self.halo_round % 2) as u16;
        // Faces are B² = 36 f64 = 288 B → two packets each.
        ctx.watch_counter(slice0(node), CounterId(parity), neighbors.len() as u64 * 2);
        let g = self.shared.borrow();
        let p = &g.p[node.index()];
        for (link, nb) in &neighbors {
            let mut face = Vec::with_capacity(B * B);
            let fixed = match link.dir {
                anton::topo::Dir::Minus => 1,
                anton::topo::Dir::Plus => B,
            };
            for bq in 0..B {
                for aq in 0..B {
                    let (x, y, z) = match link.dim {
                        Dim::X => (fixed, aq + 1, bq + 1),
                        Dim::Y => (aq + 1, fixed, bq + 1),
                        Dim::Z => (aq + 1, bq + 1, fixed),
                    };
                    face.push(p[idx(x, y, z)]);
                }
            }
            drop_face_send(node, *link, *nb, face, parity, ctx);
        }
    }

    /// Halo complete: install faces, compute Ap = −∇²p and the local
    /// partial dots, then start the all-reduce.
    fn apply_operator(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dims = ctx.dims();
        let me = node.coord(dims);
        let parity = self.halo_round % 2;
        {
            let mut g = self.shared.borrow_mut();
            for (link, _) in face_neighbors(me, dims) {
                let side = match link.dir {
                    anton::topo::Dir::Plus => B + 1,
                    anton::topo::Dir::Minus => 0,
                };
                let mut face = Vec::with_capacity(B * B);
                for half in 0..2u64 {
                    let addr =
                        0x2000 + parity as u64 * 0x800 + link.index() as u64 * 0x100 + half * 0x80;
                    match ctx.mem_read(slice0(node), addr) {
                        Some(Payload::F64s(v)) => face.extend_from_slice(v),
                        other => panic!("missing p halo: {other:?}"),
                    }
                }
                let cells = &mut g.p[node.index()];
                let mut it = face.into_iter();
                for bq in 0..B {
                    for aq in 0..B {
                        let (x, y, z) = match link.dim {
                            Dim::X => (side, aq + 1, bq + 1),
                            Dim::Y => (aq + 1, side, bq + 1),
                            Dim::Z => (aq + 1, bq + 1, side),
                        };
                        cells[idx(x, y, z)] = it.next().expect("face size");
                    }
                }
            }
            // Ap and partial dots.
            let mut p_ap = 0.0;
            let mut r_r = 0.0;
            let ni = node.index();
            let mut ap = vec![0.0; (B + 2) * (B + 2) * (B + 2)];
            for z in 1..=B {
                for y in 1..=B {
                    for x in 1..=B {
                        let lap = 6.0 * g.p[ni][idx(x, y, z)]
                            - g.p[ni][idx(x - 1, y, z)]
                            - g.p[ni][idx(x + 1, y, z)]
                            - g.p[ni][idx(x, y - 1, z)]
                            - g.p[ni][idx(x, y + 1, z)]
                            - g.p[ni][idx(x, y, z - 1)]
                            - g.p[ni][idx(x, y, z + 1)];
                        ap[idx(x, y, z)] = lap;
                        p_ap += g.p[ni][idx(x, y, z)] * lap;
                        r_r += g.r[ni][idx(x, y, z)] * g.r[ni][idx(x, y, z)];
                    }
                }
            }
            g.b[ni].clone_from(&ap); // stash Ap in the spare buffer
            self.ar_value = [p_ap, r_r];
        }
        // Model the stencil arithmetic on a geometry core.
        let cost = SimDuration::from_ns_f64(0.6 * (B * B * B) as f64);
        ctx.compute(
            node,
            ClientKind::Slice(0),
            anton::core::TRACK_GC,
            cost,
            1,
            "cg",
        );
    }

    /// Dimension-ordered all-reduce of [p·Ap, r·r] (16 B payload),
    /// exactly the thermostat reduction's shape.
    fn ar_advance(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        self.phase = Phase::Reduce;
        let dims = ctx.dims();
        while self.ar_round < 3 && dims.len(Dim::ALL[self.ar_round]) <= 1 {
            self.ar_round += 1;
        }
        if self.ar_round >= 3 {
            self.cg_update(node, ctx);
            return;
        }
        let dim = Dim::ALL[self.ar_round];
        let me = node.coord(dims);
        let s = ClientKind::Slice((1 + self.ar_round) as u8 % 4);
        let parity = (self.halo_round % 2) as u64;
        let counter = CounterId(8 + 8 * parity as u16 + self.ar_round as u16);
        ctx.watch_counter(ClientAddr::new(node, s), counter, dims.len(dim) as u64);
        let pkt = Packet::write(
            ClientAddr::new(node, s),
            ClientAddr::new(node, s),
            0x5000 + parity * 0x2000 + self.ar_round as u64 * 0x400 + me.get(dim) as u64 * 16,
            Payload::F64s(self.ar_value.to_vec()),
        )
        .with_counter(counter)
        .into_multicast(ar_pattern_id(dim, me.get(dim)), s);
        ctx.send(pkt);
    }

    fn ar_finish_round(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dims = ctx.dims();
        let dim = Dim::ALL[self.ar_round];
        let s = ClientKind::Slice((1 + self.ar_round) as u8 % 4);
        let parity = (self.halo_round % 2) as u64;
        let mut sum = [0.0; 2];
        for c in 0..dims.len(dim) {
            let addr = 0x5000 + parity * 0x2000 + self.ar_round as u64 * 0x400 + c as u64 * 16;
            match ctx.mem_take(ClientAddr::new(node, s), addr) {
                Some(Payload::F64s(v)) => {
                    sum[0] += v[0];
                    sum[1] += v[1];
                }
                other => panic!("missing reduce contribution: {other:?}"),
            }
        }
        let counter = CounterId(8 + 8 * parity as u16 + self.ar_round as u16);
        ctx.reset_counter(ClientAddr::new(node, s), counter);
        self.ar_value = sum;
        self.ar_round += 1;
        self.ar_advance(node, ctx);
    }

    /// All nodes hold the identical [p·Ap, r·r]: apply the CG update.
    fn cg_update(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let [p_ap, r_r] = self.ar_value;
        let alpha = if p_ap.abs() > 1e-300 { r_r / p_ap } else { 0.0 };
        let mut g = self.shared.borrow_mut();
        let ni = node.index();
        let mut r_r_new = 0.0;
        for z in 1..=B {
            for y in 1..=B {
                for x in 1..=B {
                    let i = idx(x, y, z);
                    let ap = g.b[ni][i];
                    g.x[ni][i] += alpha * g.p[ni][i];
                    g.r[ni][i] -= alpha * ap;
                    r_r_new += g.r[ni][i] * g.r[ni][i];
                }
            }
        }
        // β needs the *global* new r·r — reuse next iteration's reduce:
        // carry the local partial in ar slot; β is applied with the
        // global value on the next round's completion. For simplicity
        // each iteration does one extra reduce of [r_r_new, r_r_new].
        let beta_denominator = r_r;
        drop(g);
        // Second reduce for r_r_new (same machinery, counter offset 12).
        self.ar_value = [r_r_new, beta_denominator];
        self.second_reduce(node, ctx, 0);
    }

    fn second_reduce(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>, round: usize) {
        let dims = ctx.dims();
        let mut rnd = round;
        while rnd < 3 && dims.len(Dim::ALL[rnd]) <= 1 {
            rnd += 1;
        }
        if rnd >= 3 {
            self.finish_iteration(node, ctx);
            return;
        }
        let dim = Dim::ALL[rnd];
        let me = node.coord(dims);
        let s = ClientKind::Slice(3);
        let parity = (self.halo_round % 2) as u64;
        let counter = CounterId(24 + 8 * parity as u16 + rnd as u16);
        ctx.watch_counter(ClientAddr::new(node, s), counter, dims.len(dim) as u64);
        let pkt = Packet::write(
            ClientAddr::new(node, s),
            ClientAddr::new(node, s),
            0xA000 + parity * 0x2000 + rnd as u64 * 0x400 + me.get(dim) as u64 * 16,
            Payload::F64s(vec![self.ar_value[0]]),
        )
        .with_counter(counter)
        .into_multicast(ar_pattern_id(dim, me.get(dim)), s);
        ctx.send(pkt);
        self.ar_round = rnd; // reuse as the second-reduce round marker
    }

    fn second_reduce_finish(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let dims = ctx.dims();
        let rnd = self.ar_round;
        let dim = Dim::ALL[rnd];
        let s = ClientKind::Slice(3);
        let parity = (self.halo_round % 2) as u64;
        let mut sum = 0.0;
        for c in 0..dims.len(dim) {
            let addr = 0xA000 + parity * 0x2000 + rnd as u64 * 0x400 + c as u64 * 16;
            match ctx.mem_take(ClientAddr::new(node, s), addr) {
                Some(Payload::F64s(v)) => sum += v[0],
                other => panic!("missing second reduce: {other:?}"),
            }
        }
        ctx.reset_counter(
            ClientAddr::new(node, s),
            CounterId(24 + 8 * parity as u16 + rnd as u16),
        );
        self.ar_value[0] = sum;
        self.second_reduce(node, ctx, rnd + 1);
    }

    fn finish_iteration(&mut self, node: NodeId, ctx: &mut Ctx<'_, '_>) {
        let [r_r_new, r_r_old] = self.ar_value;
        let beta = if r_r_old.abs() > 1e-300 {
            r_r_new / r_r_old
        } else {
            0.0
        };
        let mut g = self.shared.borrow_mut();
        let ni = node.index();
        for z in 1..=B {
            for y in 1..=B {
                for x in 1..=B {
                    let i = idx(x, y, z);
                    g.p[ni][i] = g.r[ni][i] + beta * g.p[ni][i];
                }
            }
        }
        g.rr = r_r_new;
        g.iterations = g.iterations.max(self.halo_round + 1);
        let done = self.halo_round + 1 >= ITERS;
        if done {
            g.done[ni] = Some(ctx.now());
        }
        drop(g);
        if !done {
            self.halo_round += 1;
            self.ar_round = 0;
            self.exchange_p(node, ctx);
        }
    }
}

fn drop_face_send(
    node: NodeId,
    link: LinkDir,
    nb: Coord,
    face: Vec<f64>,
    parity: u16,
    ctx: &mut Ctx<'_, '_>,
) {
    let dims = ctx.dims();
    let from = link.reverse();
    for (half, chunk) in face.chunks(face.len().div_ceil(2)).enumerate() {
        let pkt = Packet::write(
            slice0(node),
            slice0(nb.node_id(dims)),
            0x2000 + parity as u64 * 0x800 + from.index() as u64 * 0x100 + half as u64 * 0x80,
            Payload::F64s(chunk.to_vec()),
        )
        .with_counter(CounterId(parity));
        ctx.send(pkt);
    }
}

/// Line-broadcast pattern ids for the reduce rounds.
fn ar_pattern_id(dim: Dim, coord: u32) -> anton::net::PatternId {
    anton::net::PatternId(200 + dim.index() as u16 * 8 + coord as u16)
}

impl NodeProgram for CgNode {
    fn on_event(&mut self, node: NodeId, pe: ProgEvent, ctx: &mut Ctx<'_, '_>) {
        match pe {
            ProgEvent::Start => self.exchange_p(node, ctx),
            ProgEvent::CounterReached { counter, .. } => match counter.0 {
                0 | 1 => {
                    ctx.reset_counter(slice0(node), counter);
                    self.apply_operator(node, ctx);
                }
                8..=10 | 16..=18 => self.ar_finish_round(node, ctx),
                24..=26 | 32..=34 => self.second_reduce_finish(node, ctx),
                other => panic!("unexpected counter {other}"),
            },
            ProgEvent::Timer { .. } => self.ar_advance(node, ctx),
            _ => unreachable!(),
        }
    }
}

fn main() {
    let dims = TorusDims::new(4, 4, 4);
    let n = dims.node_count() as usize;
    let vol = (B + 2) * (B + 2) * (B + 2);

    // Right-hand side: a dipole source (sums to zero, as the periodic
    // Poisson problem requires).
    let mut b0 = vec![vec![0.0; vol]; n];
    let src = Coord::new(0, 0, 0).node_id(dims).index();
    let sink = Coord::new(2, 2, 2).node_id(dims).index();
    b0[src][idx(2, 2, 2)] = 1.0;
    b0[sink][idx(3, 3, 3)] = -1.0;

    let shared = Rc::new(RefCell::new(Shared {
        x: vec![vec![0.0; vol]; n],
        r: b0.clone(),
        p: b0.clone(),
        b: b0,
        rr: f64::INFINITY,
        done: vec![None; n],
        iterations: 0,
    }));

    let mut fabric = Fabric::new(dims);
    for dim in Dim::ALL {
        for c in dims.iter_coords() {
            let p = MulticastPattern::line_broadcast(c, dim, dims, true);
            fabric.register_pattern(ar_pattern_id(dim, c.get(dim)), &p);
        }
    }
    let s2 = shared.clone();
    let mut sim = Simulation::new(fabric, move |_| CgNode {
        shared: s2.clone(),
        phase: Phase::Halo,
        ar_value: [0.0; 2],
        ar_round: 0,
        halo_round: 0,
    });
    sim.run();

    let g = shared.borrow();
    let finish = g
        .done
        .iter()
        .map(|t| t.expect("all nodes finish"))
        .max()
        .expect("nonempty");
    let us = (finish - SimTime::ZERO).as_us_f64();
    println!(
        "CG on the simulated machine: {} iterations over {}^3 points/node × {} nodes",
        ITERS, B, n
    );
    println!(
        "  wall (simulated): {us:.2} us  ({:.0} ns/iteration incl. halo + 2 all-reduces)",
        us * 1000.0 / ITERS as f64
    );
    println!("  final global residual |r|^2 = {:.3e}", g.rr);
    assert!(g.rr < 1e-5, "CG must converge: |r|^2 = {}", g.rr);
    assert!(g.iterations == ITERS);
    println!("  converged. counted remote writes + multicast all-reduce compose. ✓");
    let _ = g.x; // solution lives here if a caller wants it
}
