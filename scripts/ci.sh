#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps -p anton-obs

# Observability smoke: the trace exporter must produce well-formed,
# Perfetto-loadable JSON (it validates its own output before writing).
cargo run -q --release -p anton-bench --bin trace_export
test -s target/obs/trace.json
test -s target/obs/summary.csv
test -s target/obs/metrics.json

# Congestion telemetry smoke: exports must materialize and the map must
# agree with the activity tracer (asserted inside the binary).
cargo run -q --release -p anton-bench --bin congestion_heatmap > /dev/null
test -s target/obs/congestion.csv
test -s target/obs/congestion_trace.json

# Parallel-engine determinism cross-check: the same workload mix run
# sequentially and with 4 worker threads must fingerprint identically,
# byte for byte.
ANTON_THREADS=1 cargo run -q --release -p anton-bench --bin par_determinism
cp target/obs/par_fingerprint.txt target/obs/par_fingerprint_t1.txt
ANTON_THREADS=4 cargo run -q --release -p anton-bench --bin par_determinism
if ! diff -u target/obs/par_fingerprint_t1.txt target/obs/par_fingerprint.txt; then
  echo "ci: parallel engine is not thread-count deterministic" >&2
  exit 1
fi

# Speedup harness smoke: asserts bit-identity at 1/2/8 threads inside
# the binary (the 2x wall-clock bar only arms on >= 8-core hosts) and
# regenerates BENCH_pr4.json, which must match the committed copy.
cargo run -q --release -p anton-bench --bin par_speedup
git diff --exit-code BENCH_pr4.json || {
  echo "ci: BENCH_pr4.json drifted from the committed copy" >&2
  exit 1
}

# Runtime-observatory smoke: profiling must be invisible (fingerprints
# bit-identical on/off and across 1 vs 4 threads, asserted inside the
# binary), the speedup attribution must telescope, and the regenerated
# BENCH_pr5.json — deterministic event-level metrics only, never wall
# clock — must match the committed copy.
cargo run -q --release -p anton-bench --bin par_profile
test -s target/obs/par_runtime_trace.json
git diff --exit-code BENCH_pr5.json || {
  echo "ci: BENCH_pr5.json drifted from the committed copy" >&2
  exit 1
}

# Chaos smoke: 3 seeds x 2 fault levels of the recovering all-reduce,
# every recovery invariant asserted inside the binary (no lost
# completions, bounded degradation, bit-identical replay across
# engines). Then the full campaign regenerates BENCH_pr6.json — the
# degradation curve — which must match the committed copy.
cargo run -q --release -p anton-bench --bin chaos_campaign -- --smoke
cargo run -q --release -p anton-bench --bin chaos_campaign
git diff --exit-code BENCH_pr6.json || {
  echo "ci: BENCH_pr6.json drifted from the committed copy" >&2
  exit 1
}

# Observatory gate: the attribution-aware check runs the quick profile,
# triages it component-by-component against the named 'pr3' baseline
# from BENCH_trajectory.json, regenerates the committed quick profile
# (BENCH_pr7.json, deterministic event-level metrics only), and renders
# the trajectory dashboard — all of which CI archives on every run.
cargo run -q --release -p anton-bench --bin bench_observatory -- \
  check --quick --bench-out BENCH_pr7.json
test -s target/obs/dashboard.html
test -s target/obs/trajectory/anton_observatory_profile.json
git diff --exit-code BENCH_pr7.json || {
  echo "ci: BENCH_pr7.json drifted from the committed copy" >&2
  exit 1
}

# Scale-observatory gate: the streaming bounded-memory probe proves the
# streamed fold exact on the 512-node reference (breakdown, census,
# heavy hitters, shard-merge bit-identity; sketch quantiles within one
# log-bucket), then runs the 4,096-node probe under the instrumented
# allocator asserting the per-node observer-memory budget — all inside
# the binary. Regenerates BENCH_pr8.json (reference + 16^3 metrics,
# byte-identical in quick and full modes), which must match the
# committed copy.
cargo run -q --release -p anton-bench --features obs-alloc --bin scale_probe -- \
  --quick --bench-out BENCH_pr8.json
test -s target/obs/scale_report.json
test -s target/obs/scale_trace.json
test -s target/obs/scale_lifecycles.csv
git diff --exit-code BENCH_pr8.json || {
  echo "ci: BENCH_pr8.json drifted from the committed copy" >&2
  exit 1
}

# Perf-regression gate: the quick canonical suite must stay within 10%
# of the committed baseline (named 'pr3' in BENCH_trajectory.json).
scripts/bench_regress.sh
