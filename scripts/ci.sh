#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps -p anton-obs

# Observability smoke: the trace exporter must produce well-formed,
# Perfetto-loadable JSON (it validates its own output before writing).
cargo run -q --release -p anton-bench --bin trace_export
test -s target/obs/trace.json
test -s target/obs/summary.csv
test -s target/obs/metrics.json

# Congestion telemetry smoke: exports must materialize and the map must
# agree with the activity tracer (asserted inside the binary).
cargo run -q --release -p anton-bench --bin congestion_heatmap > /dev/null
test -s target/obs/congestion.csv
test -s target/obs/congestion_trace.json

# Perf-regression gate: the quick canonical suite must stay within 10%
# of the committed baseline (fails the build otherwise).
scripts/bench_regress.sh
