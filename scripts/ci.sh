#!/usr/bin/env bash
# CI gates, split into stages so the PR fast-gate stays under ~10 min:
#
#   scripts/ci.sh fast     # fmt, build, tests, clippy, doc warnings
#   scripts/ci.sh full     # smokes + determinism + bench drift gates
#   scripts/ci.sh nightly  # extended chaos sweep + 24^3 scale probe
#   scripts/ci.sh          # fast + full (the complete tier-1 gate)
#
# The GitHub workflow runs `fast` and `full` as separate jobs with
# per-job caches on every PR, and `nightly` on a schedule.
set -euo pipefail
cd "$(dirname "$0")/.."

fast_gate() {
  cargo fmt --all -- --check
  cargo build --release
  cargo test -q
  cargo clippy --workspace -- -D warnings
  RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps -p anton-obs
}

full_gate() {
  # Observability smoke: the trace exporter must produce well-formed,
  # Perfetto-loadable JSON (it validates its own output before writing).
  cargo run -q --release -p anton-bench --bin trace_export
  test -s target/obs/trace.json
  test -s target/obs/summary.csv
  test -s target/obs/metrics.json

  # Congestion telemetry smoke: exports must materialize and the map must
  # agree with the activity tracer (asserted inside the binary).
  cargo run -q --release -p anton-bench --bin congestion_heatmap > /dev/null
  test -s target/obs/congestion.csv
  test -s target/obs/congestion_trace.json

  # Parallel-engine determinism cross-check: the same workload mix run
  # sequentially and with 4 worker threads must fingerprint identically,
  # byte for byte — and the adaptive per-pair lookahead must fingerprint
  # identically to the uniform global bound.
  ANTON_THREADS=1 cargo run -q --release -p anton-bench --bin par_determinism
  cp target/obs/par_fingerprint.txt target/obs/par_fingerprint_t1.txt
  ANTON_THREADS=4 cargo run -q --release -p anton-bench --bin par_determinism
  if ! diff -u target/obs/par_fingerprint_t1.txt target/obs/par_fingerprint.txt; then
    echo "ci: parallel engine is not thread-count deterministic" >&2
    exit 1
  fi
  ANTON_THREADS=4 ANTON_LOOKAHEAD=global \
    cargo run -q --release -p anton-bench --bin par_determinism
  if ! diff -u target/obs/par_fingerprint_t1.txt target/obs/par_fingerprint.txt; then
    echo "ci: adaptive lookahead changed the simulation vs the global bound" >&2
    exit 1
  fi

  # Speedup harness: asserts bit-identity at 1/2/4/8 threads plus the
  # adaptive-vs-global A/B inside the binary (adaptive may never need
  # more windows than the global bound and must strictly win on the
  # skewed workload; wall-clock bars only arm on >= 8-core hosts), and
  # regenerates BENCH_pr4.json and BENCH_pr9.json — deterministic
  # event-level metrics only — which must match the committed copies.
  cargo run -q --release -p anton-bench --bin par_speedup
  git diff --exit-code BENCH_pr4.json || {
    echo "ci: BENCH_pr4.json drifted from the committed copy" >&2
    exit 1
  }
  git diff --exit-code BENCH_pr9.json || {
    echo "ci: BENCH_pr9.json drifted from the committed copy" >&2
    exit 1
  }

  # Runtime-observatory smoke: profiling must be invisible (fingerprints
  # bit-identical on/off and across 1 vs 4 threads, asserted inside the
  # binary), the speedup attribution must telescope, and the regenerated
  # BENCH_pr5.json — deterministic event-level metrics only, never wall
  # clock — must match the committed copy.
  cargo run -q --release -p anton-bench --bin par_profile
  test -s target/obs/par_runtime_trace.json
  git diff --exit-code BENCH_pr5.json || {
    echo "ci: BENCH_pr5.json drifted from the committed copy" >&2
    exit 1
  }

  # Chaos smoke: 3 seeds x 2 fault levels of the recovering all-reduce,
  # every recovery invariant asserted inside the binary (no lost
  # completions, bounded degradation, bit-identical replay across
  # engines). Then the full campaign regenerates BENCH_pr6.json — the
  # degradation curve — which must match the committed copy.
  cargo run -q --release -p anton-bench --bin chaos_campaign -- --smoke
  cargo run -q --release -p anton-bench --bin chaos_campaign
  git diff --exit-code BENCH_pr6.json || {
    echo "ci: BENCH_pr6.json drifted from the committed copy" >&2
    exit 1
  }

  # Observatory gate: the attribution-aware check runs the quick profile,
  # triages it component-by-component against the named 'pr3' baseline
  # from BENCH_trajectory.json, regenerates the committed quick profile
  # (BENCH_pr7.json, deterministic event-level metrics only), and renders
  # the trajectory dashboard — all of which CI archives on every run.
  cargo run -q --release -p anton-bench --bin bench_observatory -- \
    check --quick --bench-out BENCH_pr7.json
  test -s target/obs/dashboard.html
  test -s target/obs/trajectory/anton_observatory_profile.json
  git diff --exit-code BENCH_pr7.json || {
    echo "ci: BENCH_pr7.json drifted from the committed copy" >&2
    exit 1
  }

  # Scale-observatory gate: the streaming bounded-memory probe proves the
  # streamed fold exact on the 512-node reference (breakdown, census,
  # heavy hitters, shard-merge bit-identity; sketch quantiles within one
  # log-bucket), then runs the 4,096-node probe under the instrumented
  # allocator asserting the per-node observer-memory budget — all inside
  # the binary. Regenerates BENCH_pr8.json (reference + 16^3 metrics,
  # byte-identical in quick and full modes), which must match the
  # committed copy.
  cargo run -q --release -p anton-bench --features obs-alloc --bin scale_probe -- \
    --quick --bench-out BENCH_pr8.json
  test -s target/obs/scale_report.json
  test -s target/obs/scale_trace.json
  test -s target/obs/scale_lifecycles.csv
  git diff --exit-code BENCH_pr8.json || {
    echo "ci: BENCH_pr8.json drifted from the committed copy" >&2
    exit 1
  }

  # Perf-regression gate: the quick canonical suite must stay within 10%
  # of the committed baseline (named 'pr3' in BENCH_trajectory.json).
  scripts/bench_regress.sh

  # Scenario-provenance gate: re-run both committed specs through the
  # scenario CLI (each executes at 1 and 4 threads and refuses to ledger
  # on any fingerprint divergence), replay-verify every LEDGER.json
  # entry from its committed spec file, and prove the cross-run diff
  # still names the shifted component. The committed LEDGER.json and
  # specs/ must not drift: a spec edit without a `scenario run` (or a
  # run that changed a fingerprint) fails here.
  cargo run -q --release -p anton-bench --bin scenario -- \
    run specs/md_balanced.toml --index LEDGER.json --note "baseline MD exchange"
  cargo run -q --release -p anton-bench --bin scenario -- \
    run specs/md_skewed.toml --index LEDGER.json --note "40ns compute skew variant"
  cargo run -q --release -p anton-bench --bin scenario -- \
    verify --all --index LEDGER.json
  cargo run -q --release -p anton-bench --bin scenario -- \
    diff md_balanced md_skewed --index LEDGER.json > target/obs/scenario_diff.txt
  grep -q "critical path moved\|leader moved" target/obs/scenario_diff.txt || {
    echo "ci: scenario diff lost its component attribution" >&2
    exit 1
  }
  git diff --exit-code LEDGER.json specs/ || {
    echo "ci: LEDGER.json or specs/ drifted from the committed copies" >&2
    exit 1
  }
}

nightly_gate() {
  # Deep chaos sweep: 10 extra seeds per fault level plus a 4-thread
  # bit-identity check per cell.
  ANTON_CHAOS_EXTENDED=1 cargo run -q --release -p anton-bench --bin chaos_campaign

  # The 24^3 (13,824-node) scale probe under the instrumented allocator
  # (the --quick PR gate stops at 16^3). BENCH_pr8.json records only the
  # reference + 16^3 metrics and is byte-identical in quick and full
  # modes, so the drift gate stays meaningful here too.
  cargo run -q --release -p anton-bench --features obs-alloc --bin scale_probe -- \
    --bench-out BENCH_pr8.json
  git diff --exit-code BENCH_pr8.json || {
    echo "ci: BENCH_pr8.json drifted during the nightly full-scale probe" >&2
    exit 1
  }
}

case "${1:-all}" in
  fast) fast_gate ;;
  full) full_gate ;;
  nightly) nightly_gate ;;
  all)
    fast_gate
    full_gate
    ;;
  *)
    echo "usage: scripts/ci.sh [fast|full|nightly]" >&2
    exit 2
    ;;
esac
