#!/usr/bin/env bash
# Perf-regression harness: run the canonical bench suite and diff it
# against a *named* baseline resolved through the committed trajectory
# index (BENCH_trajectory.json). All metrics are *simulated* durations
# — bit-deterministic, so any drift is a model change, not host noise.
# Exits non-zero on a regression past the threshold.
#
# Usage:
#   scripts/bench_regress.sh             # quick suite vs baseline 'pr3'
#   BASELINE=pr7 scripts/bench_regress.sh  # diff against another entry
#   FULL=1 scripts/bench_regress.sh      # adds the DHFR step (~minutes)
#   THRESHOLD=5 scripts/bench_regress.sh # tighten the gate to 5%
#
# To refresh a baseline after an intentional model change, re-emit the
# report at the path BENCH_trajectory.json maps the name to, e.g.:
#   cargo run --release -p anton-bench --bin bench_regress -- \
#     emit --full --out BENCH_pr3.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-pr3}
THRESHOLD=${THRESHOLD:-10}

FLAGS=()
if [[ "${FULL:-0}" != 0 ]]; then
  FLAGS+=(--full)
fi

# Build first, with an explicit status check: a compile failure must
# fail the gate loudly rather than being swallowed (pipefail alone does
# not cover `cargo run` invoked through wrappers that eat the status).
if ! cargo build -q --release -p anton-bench --bin bench_regress; then
  echo "bench_regress: failed to build the harness binary" >&2
  exit 1
fi

if ! cargo run -q --release -p anton-bench --bin bench_regress -- \
  check --baseline "$BASELINE" --index BENCH_trajectory.json \
  "${FLAGS[@]+"${FLAGS[@]}"}" --threshold "$THRESHOLD"; then
  echo "bench_regress: regression gate failed" >&2
  exit 1
fi
