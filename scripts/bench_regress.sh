#!/usr/bin/env bash
# Perf-regression harness: run the canonical bench suite and diff it
# against the committed baseline (BENCH_pr3.json). All metrics are
# *simulated* durations — bit-deterministic, so any drift is a model
# change, not host noise. Exits non-zero on a regression past the
# threshold.
#
# Usage:
#   scripts/bench_regress.sh             # quick suite vs baseline
#   FULL=1 scripts/bench_regress.sh      # adds the DHFR step (~minutes)
#   THRESHOLD=5 scripts/bench_regress.sh # tighten the gate to 5%
#
# To refresh the baseline after an intentional model change:
#   cargo run --release -p anton-bench --bin bench_regress -- \
#     emit --full --out BENCH_pr3.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-BENCH_pr3.json}
THRESHOLD=${THRESHOLD:-10}
CURRENT=target/obs/BENCH_current.json

FLAGS=()
if [[ "${FULL:-0}" != 0 ]]; then
  FLAGS+=(--full)
fi

cargo run -q --release -p anton-bench --bin bench_regress -- \
  emit "${FLAGS[@]+"${FLAGS[@]}"}" --out "$CURRENT"
cargo run -q --release -p anton-bench --bin bench_regress -- \
  diff "$BASELINE" "$CURRENT" --threshold "$THRESHOLD"
