#!/usr/bin/env bash
# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
# Fast ones first; the MD-at-scale runs take minutes each.
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=(
  fig5_latency_vs_hops
  fig6_breakdown
  fig7_message_granularity
  fig8_staged_vs_direct
  table1_survey
  table2_allreduce
  bandwidth_half_point
  ablation_sync_mechanism
  ablation_multicast
  accuracy_sweep
)
SLOW=(
  table3_critical_path
  ablation_priority_queue
  ablation_latency_sensitivity
  scaling_sweep
  fig13_activity_trace
  fig12_migration_interval
  fig11_bond_regen
)

mkdir -p target/experiments
for bin in "${FAST[@]}" "${SLOW[@]}"; do
  echo "==> $bin"
  cargo run --release -q -p anton-bench --bin "$bin" \
    | tee "target/experiments/$bin.txt"
done
echo "all outputs in target/experiments/"
