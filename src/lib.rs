//! # anton — umbrella crate for the Anton SC10 reproduction
//!
//! Re-exports the full workspace: a deterministic packet-level simulator
//! of the Anton machine's communication architecture (Dror et al.,
//! "Exploiting 162-Nanosecond End-to-End Communication Latency on
//! Anton", SC 2010), the molecular-dynamics application mapped onto it,
//! the comparison-platform models, and the experiment harness that
//! regenerates every table and figure in the paper.
//!
//! Start with [`core::AntonMdEngine`] (the machine + MD schedule),
//! [`net::Fabric`] (the communication fabric), or the runnable examples:
//!
//! ```sh
//! cargo run --release --example quickstart
//! cargo run --release --example md_on_anton
//! cargo run --release --example latency_explorer
//! ```

pub use anton_baseline as baseline;
pub use anton_bench as bench;
pub use anton_collectives as collectives;
pub use anton_core as core;
pub use anton_des as des;
pub use anton_fft as fft;
pub use anton_md as md;
pub use anton_net as net;
pub use anton_obs as obs;
pub use anton_topo as topo;
