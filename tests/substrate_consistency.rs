//! Cross-crate consistency: the distributed substrates must agree with
//! their serial references when composed through the full stack.

use anton::fft::{distributed_fft3d, fft3d, Complex, Direction, GridMap};
use anton::md::longrange::{long_range_forces, LongRangeParams};
use anton::md::{PeriodicBox, SystemBuilder, Vec3};
use anton::topo::TorusDims;

/// The FFT the Anton engine runs per-node, pass by pass, equals the
/// serial 3D FFT — on the paper's 32³/8×8×8 configuration.
#[test]
fn distributed_fft_matches_serial_at_paper_scale() {
    let map = GridMap::new([32, 32, 32], TorusDims::anton_512());
    let n = 32 * 32 * 32;
    let data: Vec<Complex> = (0..n)
        .map(|i| Complex::new((i as f64 * 0.0137).sin(), 0.0))
        .collect();
    let mut serial = data.clone();
    fft3d(&mut serial, 32, 32, 32, Direction::Forward);
    let mut dist = data.clone();
    distributed_fft3d(&map, &mut dist, Direction::Forward);
    for (a, b) in dist.iter().zip(&serial) {
        assert!((*a - *b).abs() < 1e-9);
    }
}

/// The long-range solver is translation-invariant (up to grid snapping):
/// shifting all atoms by one full grid cell shifts nothing physical.
#[test]
fn long_range_energy_is_translation_invariant() {
    let sys = SystemBuilder::tiny(90, 16.0, 55).build();
    let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
    let params = LongRangeParams::new([32; 3], 1.6);
    let mut f1 = vec![Vec3::ZERO; positions.len()];
    let e1 = long_range_forces(&sys, &positions, &params, &mut f1).energy;
    // Shift by exactly one grid cell (16/32 = 0.5 Å) in each axis.
    let shifted: Vec<Vec3> = positions
        .iter()
        .map(|&p| sys.pbox.wrap(p + Vec3::splat(0.5)))
        .collect();
    let mut f2 = vec![Vec3::ZERO; positions.len()];
    let e2 = long_range_forces(&sys, &shifted, &params, &mut f2).energy;
    assert!(
        (e1 - e2).abs() < 1e-6 * e1.abs().max(1.0),
        "e1={e1} e2={e2}"
    );
    for (a, b) in f1.iter().zip(&f2) {
        assert!((*a - *b).norm() < 1e-6 * (b.norm() + 1.0));
    }
}

/// NT decomposition coverage at paper scale composes with the periodic
/// box: the machine-wide pair count over home boxes equals the serial
/// cell-list pair count.
#[test]
fn nt_pair_counts_match_serial_cell_list() {
    use anton::core::Decomposition;
    let sys = SystemBuilder::tiny(600, 31.0, 77).build();
    let dims = TorusDims::new(4, 4, 4);
    let cutoff = 6.0;
    let decomp = Decomposition::new(dims, PeriodicBox::cubic(31.0), cutoff);
    let positions: Vec<Vec3> = sys.atoms.iter().map(|a| a.pos).collect();
    let owners = decomp.assign_atoms(&positions);

    // Serial count of within-cutoff pairs.
    let mut serial = 0u64;
    for i in 0..positions.len() {
        for j in (i + 1)..positions.len() {
            if sys.pbox.distance(positions[i], positions[j]) < cutoff {
                serial += 1;
            }
        }
    }
    // Distributed count: each node counts pairs of its assigned box
    // pairs.
    let mut atoms_of = vec![Vec::new(); dims.node_count() as usize];
    for (i, &o) in owners.iter().enumerate() {
        atoms_of[o.index()].push(i);
    }
    let mut distributed = 0u64;
    for c in dims.iter_coords() {
        for (a, b) in decomp.task_pairs(c) {
            let la = &atoms_of[a.node_id(dims).index()];
            let lb = &atoms_of[b.node_id(dims).index()];
            if a == b {
                for x in 0..la.len() {
                    for y in (x + 1)..la.len() {
                        if sys.pbox.distance(positions[la[x]], positions[la[y]]) < cutoff {
                            distributed += 1;
                        }
                    }
                }
            } else {
                for &x in la {
                    for &y in lb {
                        if sys.pbox.distance(positions[x], positions[y]) < cutoff {
                            distributed += 1;
                        }
                    }
                }
            }
        }
    }
    assert_eq!(distributed, serial);
}
