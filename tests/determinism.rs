//! Cross-crate determinism: the entire stack — system generation, the
//! DES, the MD schedule, fixed-point accumulation — must reproduce
//! bit-identically run over run. This is the property the paper's
//! machine gets from hardware fixed-point accumulation, and the property
//! this reproduction needs for its figures to regenerate exactly.

use anton::core::{AntonConfig, AntonMdEngine};
use anton::md::{MdParams, SystemBuilder};
use anton::topo::TorusDims;

fn run_once() -> (Vec<(f64, f64, f64)>, Vec<u64>, f64) {
    let sys = SystemBuilder::tiny(300, 24.0, 123).build();
    let mut md = MdParams::new(5.0, [16; 3]);
    md.dt = 0.5;
    let mut config = AntonConfig::new(md);
    config.migration_interval = 2;
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));
    let mut step_ps = Vec::new();
    for _ in 0..5 {
        let t = eng.step();
        step_ps.push(t.total.as_ps());
    }
    let positions = eng
        .system()
        .atoms
        .iter()
        .map(|a| (a.pos.x, a.pos.y, a.pos.z))
        .collect();
    (positions, step_ps, eng.last_energies.potential())
}

#[test]
fn full_stack_is_bit_deterministic() {
    let (p1, t1, e1) = run_once();
    let (p2, t2, e2) = run_once();
    assert_eq!(t1, t2, "step timings must be identical");
    assert_eq!(e1.to_bits(), e2.to_bits(), "energies must be bit-identical");
    for (a, b) in p1.iter().zip(&p2) {
        assert_eq!(a.0.to_bits(), b.0.to_bits());
        assert_eq!(a.1.to_bits(), b.1.to_bits());
        assert_eq!(a.2.to_bits(), b.2.to_bits());
    }
}

/// Accumulation-memory determinism at the system level: two engines
/// stepping the same system produce identical decoded forces even
/// though packet arrival order inside a step is timing-dependent —
/// the fixed-point accumulate makes order irrelevant (§III.B).
#[test]
fn forces_are_arrival_order_independent() {
    let (_, _, e1) = run_once();
    // Perturbing only the *cost model* changes packet arrival order but
    // must not change the physics.
    let sys = SystemBuilder::tiny(300, 24.0, 123).build();
    let mut md = MdParams::new(5.0, [16; 3]);
    md.dt = 0.5;
    let mut config = AntonConfig::new(md);
    config.migration_interval = 2;
    config.cost.htis_pairs_per_ns = 8.0; // 4x slower HTIS
    config.cost.bonded_ns_per_term = 50.0;
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::new(2, 2, 2));
    for _ in 0..5 {
        eng.step();
    }
    let e2 = eng.last_energies.potential();
    assert_eq!(
        e1.to_bits(),
        e2.to_bits(),
        "physics must not depend on machine timing: {e1} vs {e2}"
    );
}
