//! Workspace-level integration tests: the paper's headline claims,
//! asserted end-to-end across crates through the umbrella API.

use anton::baseline::{ANTON_LATENCY_US, LATENCY_SURVEY, MEASURED_IB_ALLREDUCE_512_US};
use anton::bench::{one_way_latency, split_transfer_time, streaming_bandwidth_gbps};
use anton::collectives::{random_inputs, run_all_reduce, Algorithm};
use anton::des::SimDuration;
use anton::topo::{Coord, TorusDims};

/// §III.D / Table 1: 162 ns software-to-software latency, significantly
/// lower than any surveyed machine.
#[test]
fn headline_162ns_and_survey_margin() {
    let dims = TorusDims::anton_512();
    let lat = one_way_latency(dims, Coord::new(0, 0, 0), Coord::new(1, 0, 0), 0, false, 8);
    assert_eq!(lat, SimDuration::from_ns(162));
    let us = lat.as_us_f64();
    assert!((us - ANTON_LATENCY_US).abs() < 1e-6);
    for entry in LATENCY_SURVEY {
        assert!(
            entry.latency_us / us > 7.0,
            "{} should be ≥7x slower",
            entry.machine
        );
    }
}

/// Figure 5: latency grows 76 ns per X hop and 54 ns per Y/Z hop, making
/// the 12-hop diameter about five times the single-hop latency.
#[test]
fn figure5_per_hop_slopes() {
    let dims = TorusDims::anton_512();
    let src = Coord::new(0, 0, 0);
    let at = |dst: Coord| one_way_latency(dims, src, dst, 0, false, 4).as_ns_f64();
    assert_eq!(at(Coord::new(2, 0, 0)) - at(Coord::new(1, 0, 0)), 76.0);
    assert_eq!(at(Coord::new(4, 1, 0)) - at(Coord::new(4, 0, 0)), 54.0);
    assert_eq!(at(Coord::new(4, 4, 1)) - at(Coord::new(4, 4, 0)), 54.0);
    let ratio = at(Coord::new(4, 4, 4)) / at(Coord::new(1, 0, 0));
    assert!((4.5..5.5).contains(&ratio), "diameter/1-hop = {ratio}");
}

/// Figure 7: fine-grained messaging is nearly free on Anton — splitting
/// a 2 KB transfer into 64 messages costs well under 2x, where the
/// paper's InfiniBand comparison degrades several-fold.
#[test]
fn figure7_fine_grained_messages_nearly_free() {
    let dims = TorusDims::anton_512();
    for hops in [1u32, 4] {
        let t1 = split_transfer_time(dims, hops, 2048, 1);
        let t64 = split_transfer_time(dims, hops, 2048, 64);
        let ratio = t64.as_ns_f64() / t1.as_ns_f64();
        assert!(ratio < 2.0, "hops={hops}: ratio {ratio}");
    }
    let ib = anton::baseline::IbModel::default();
    let ib_ratio = ib.split_transfer_us(2048, 64) / ib.split_transfer_us(2048, 1);
    assert!(ib_ratio > 3.0, "cluster ratio {ib_ratio}");
}

/// §III.D: half of peak data bandwidth is reached by ~28-byte messages.
#[test]
fn half_bandwidth_point_near_28_bytes() {
    let peak = streaming_bandwidth_gbps(256, 256);
    let at_28 = streaming_bandwidth_gbps(28, 256);
    let frac = at_28 / peak;
    assert!(
        (0.40..0.62).contains(&frac),
        "28-byte messages reach {frac:.2} of peak"
    );
}

/// Table 2 + §IV.B.4: the 512-node 32-byte all-reduce lands near the
/// paper's 1.77 µs, about twenty times faster than the measured
/// InfiniBand cluster, and scales gently with machine size.
#[test]
fn table2_allreduce_scaling_and_cluster_margin() {
    let mut last = SimDuration::ZERO;
    for dims in [
        TorusDims::new(4, 4, 4),
        TorusDims::new(8, 8, 4),
        TorusDims::new(8, 8, 8),
        TorusDims::new(8, 8, 16),
    ] {
        let out = run_all_reduce(
            dims,
            Algorithm::DimensionOrdered,
            Default::default(),
            &random_inputs(dims, 4, 9),
        );
        assert!(out.latency >= last, "monotone in machine size");
        last = out.latency;
        if dims.node_count() == 512 {
            let us = out.latency.as_us_f64();
            assert!((1.2..2.3).contains(&us), "512-node: {us} µs");
            let speedup = MEASURED_IB_ALLREDUCE_512_US / us;
            assert!(speedup > 15.0, "speedup {speedup}");
        }
    }
}

/// Table 3's headline, end to end: Anton's critical-path communication
/// for an average DHFR-scale time step is a small fraction of the
/// Desmond cluster model's. (Moderate machine size to keep CI fast; the
/// full 512-node run lives in the `table3_critical_path` bench binary.)
#[test]
fn critical_path_communication_is_a_tiny_fraction_of_the_cluster() {
    use anton::core::{AntonConfig, AntonMdEngine};
    use anton::md::{MdParams, SystemBuilder};
    let sys = SystemBuilder::tiny(1500, 36.0, 4).build();
    let mut md = MdParams::new(6.0, [16; 3]);
    md.dt = 1.0;
    let config = AntonConfig::new(md);
    let mut eng = AntonMdEngine::new(sys, config, TorusDims::new(4, 4, 4));
    let t1 = eng.step();
    let t2 = eng.step();
    let avg_comm = 0.5 * (t1.communication() + t2.communication()).as_us_f64();
    let cluster = anton::baseline::DesmondModel::table3().average_step();
    assert!(
        avg_comm * 10.0 < cluster.communication_us,
        "anton {avg_comm} µs vs cluster {} µs",
        cluster.communication_us
    );
}
